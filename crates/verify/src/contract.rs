//! Per-stage transpiler contracts (`QC1xx`).
//!
//! [`PassContract`] wraps a transpile run over one logical circuit and
//! checks each stage boundary: the initial layout, the routed circuit, the
//! basis-lowered circuit, the optimized circuit, and the compacted output.
//! Stage checks are pure functions of the stage inputs/outputs, so a
//! pipeline can call them between passes without holding extra state.

use crate::diag::{Diagnostic, Location, Rule, VerifyReport};
use crate::rules::{
    sample_input, sample_train, verify_basis, verify_coupling, verify_measurement_map, IBM_BASIS,
};
use qns_circuit::{Circuit, GateKind};
use qns_noise::Device;
use qns_sim::{run, ExecMode};

/// How much verification a transpile run performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VerifyLevel {
    /// No checks; verification adds zero work.
    #[default]
    Off,
    /// Structural per-stage contracts: layout validity, routing legality and
    /// mapping consistency, basis conformance, parameter preservation,
    /// measurement-map validity.
    Contracts,
    /// [`VerifyLevel::Contracts`] plus a unitary-equivalence spot check
    /// (logical vs. compiled Z expectations at sample parameters) for
    /// circuits of at most [`EQUIV_MAX_QUBITS`] qubits.
    Full,
}

impl VerifyLevel {
    /// Whether any checking is enabled.
    pub fn enabled(self) -> bool {
        self != VerifyLevel::Off
    }
}

/// Largest circuit width the equivalence spot check simulates.
pub const EQUIV_MAX_QUBITS: usize = 6;

/// Tolerance of the equivalence spot check on per-qubit Z expectations.
const EQUIV_TOL: f64 = 1e-6;

/// Contract checker for one transpile run.
pub struct PassContract<'a> {
    logical: &'a Circuit,
    device: &'a Device,
    level: VerifyLevel,
}

impl<'a> PassContract<'a> {
    /// A checker for transpiling `logical` onto `device` at `level`.
    pub fn new(logical: &'a Circuit, device: &'a Device, level: VerifyLevel) -> Self {
        PassContract {
            logical,
            device,
            level,
        }
    }

    /// The configured verification level.
    pub fn level(&self) -> VerifyLevel {
        self.level
    }

    /// Stage 0 (`QC101`): the initial layout maps every logical qubit to a
    /// distinct in-range physical qubit.
    pub fn check_layout(&self, phys_of: &[usize]) -> VerifyReport {
        let mut report = VerifyReport::clean();
        if !self.level.enabled() {
            return report;
        }
        if phys_of.len() != self.logical.num_qubits() {
            report.push(
                Diagnostic::error(
                    Rule::ContractInvalidLayout,
                    format!(
                        "layout maps {} logical qubits, circuit has {}",
                        phys_of.len(),
                        self.logical.num_qubits()
                    ),
                    Location::default(),
                )
                .at_stage("layout"),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for (l, &p) in phys_of.iter().enumerate() {
            if p >= self.device.num_qubits() {
                report.push(
                    Diagnostic::error(
                        Rule::ContractInvalidLayout,
                        format!(
                            "logical qubit {l} maps to physical {p}, device {} has {} qubits",
                            self.device.name(),
                            self.device.num_qubits()
                        ),
                        Location {
                            op_index: None,
                            qubit: Some(l),
                        },
                    )
                    .at_stage("layout"),
                );
            }
            if !seen.insert(p) {
                report.push(
                    Diagnostic::error(
                        Rule::ContractInvalidLayout,
                        format!("physical qubit {p} is claimed by two logical qubits"),
                        Location {
                            op_index: None,
                            qubit: Some(l),
                        },
                    )
                    .at_stage("layout"),
                );
            }
        }
        report
    }

    /// Stage 1: the routed circuit executes the logical gate sequence.
    ///
    /// Replays the router's SWAPs from `layout` and checks that every
    /// non-SWAP gate matches the next logical gate under the tracked
    /// mapping (`QC102`), that two-qubit gates stay on coupled pairs
    /// (`QV007`), and that `final_phys_of` equals the replayed mapping
    /// (`QC102`). A dropped or misplaced SWAP breaks the replay and is
    /// caught here without simulation.
    pub fn check_routed(
        &self,
        layout: &[usize],
        routed: &Circuit,
        final_phys_of: &[usize],
    ) -> VerifyReport {
        let mut report = VerifyReport::clean();
        if !self.level.enabled() {
            return report;
        }
        report.merge(verify_coupling(routed, self.device, None).stage_tagged("route"));

        let mut l2p: Vec<usize> = layout.to_vec();
        let logical_ops: Vec<_> = self.logical.iter().collect();
        let mut next = 0usize;
        for (i, op) in routed.iter().enumerate() {
            // Is this the next logical op, mapped through l2p?
            let matches_logical = next < logical_ops.len() && {
                let lop = logical_ops[next];
                let nq = lop.num_qubits();
                lop.kind == op.kind
                    && lop.params == op.params
                    && (0..nq).all(|k| l2p.get(lop.qubits[k]).copied() == Some(op.qubits[k]))
            };
            if matches_logical {
                next += 1;
                continue;
            }
            if op.kind == GateKind::Swap {
                // Router-inserted SWAP: logical qubits on its operands move.
                let (x, y) = (op.qubits[0], op.qubits[1]);
                for p in l2p.iter_mut() {
                    if *p == x {
                        *p = y;
                    } else if *p == y {
                        *p = x;
                    }
                }
                continue;
            }
            report.push(
                Diagnostic::error(
                    Rule::ContractGateLoss,
                    format!(
                        "routed gate {} {:?} does not continue the logical sequence \
                         (expected logical op {next})",
                        op.kind,
                        &op.qubits[..op.num_qubits()]
                    ),
                    Location::op(i),
                )
                .at_stage("route"),
            );
            return report;
        }
        if next != logical_ops.len() {
            report.push(
                Diagnostic::error(
                    Rule::ContractGateLoss,
                    format!(
                        "routing dropped logical ops: executed {next} of {}",
                        logical_ops.len()
                    ),
                    Location::default(),
                )
                .at_stage("route"),
            );
        }
        if final_phys_of != l2p.as_slice() {
            report.push(
                Diagnostic::error(
                    Rule::ContractGateLoss,
                    format!(
                        "reported final mapping {final_phys_of:?} disagrees with \
                         replayed SWAPs {l2p:?}"
                    ),
                    Location::default(),
                )
                .at_stage("route"),
            );
        }
        report.merge(self.check_params("route", routed));
        report
    }

    /// Stage 2: basis lowering emits only IBM-basis gates (`QV008`), keeps
    /// two-qubit gates on coupled pairs (`QV007`), and preserves symbolic
    /// parameters (`QC103`).
    pub fn check_lowered(&self, lowered: &Circuit) -> VerifyReport {
        let mut report = VerifyReport::clean();
        if !self.level.enabled() {
            return report;
        }
        report.merge(verify_basis(lowered, IBM_BASIS).stage_tagged("basis"));
        report.merge(verify_coupling(lowered, self.device, None).stage_tagged("basis"));
        report.merge(self.check_params("basis", lowered));
        report
    }

    /// Stage 3: optimization stays in basis, stays routed, and never
    /// *invents* parameter dependencies (cancellation may legitimately drop
    /// a trainable gate pair, so the referenced set may shrink).
    pub fn check_optimized(&self, optimized: &Circuit) -> VerifyReport {
        let mut report = VerifyReport::clean();
        if !self.level.enabled() {
            return report;
        }
        report.merge(verify_basis(optimized, IBM_BASIS).stage_tagged("optimize"));
        report.merge(verify_coupling(optimized, self.device, None).stage_tagged("optimize"));
        report.merge(self.check_no_invented_params("optimize", optimized));
        report
    }

    /// Output stage: the compacted circuit sits on coupled physical pairs
    /// through `phys_of` (`QV007`), the measurement map is valid (`QV009`),
    /// and — at [`VerifyLevel::Full`] on circuits of at most
    /// [`EQUIV_MAX_QUBITS`] qubits — logical and compiled Z expectations
    /// agree at sample parameters (`QC104`).
    pub fn check_output(
        &self,
        dense: &Circuit,
        phys_of: &[usize],
        dense_of_logical: &[usize],
    ) -> VerifyReport {
        let mut report = VerifyReport::clean();
        if !self.level.enabled() {
            return report;
        }
        report.merge(verify_coupling(dense, self.device, Some(phys_of)).stage_tagged("output"));
        report.merge(
            verify_measurement_map(dense_of_logical, dense.num_qubits()).stage_tagged("output"),
        );
        // Optimization runs before compaction and may legitimately cancel a
        // symbolic gate pair, so the output gets the no-invented-indices
        // check, not strict preservation.
        report.merge(self.check_no_invented_params("output", dense));

        if self.level == VerifyLevel::Full
            && self.logical.num_qubits() <= EQUIV_MAX_QUBITS
            && dense.num_qubits() <= EQUIV_MAX_QUBITS
            && !report.has_errors()
        {
            report.merge(self.check_equivalence(dense, dense_of_logical));
        }
        report
    }

    /// The `QC104` spot check: simulate both circuits at deterministic
    /// sample parameters and compare per-logical-qubit Z expectations.
    fn check_equivalence(&self, dense: &Circuit, dense_of_logical: &[usize]) -> VerifyReport {
        let mut report = VerifyReport::clean();
        let n_train = self
            .logical
            .num_train_params()
            .max(dense.num_train_params());
        let n_input = self.logical.num_inputs().max(dense.num_inputs());
        let train = sample_train(n_train);
        let input = sample_input(n_input);
        let ideal = run(self.logical, &train, &input, ExecMode::Dynamic);
        let compiled = run(dense, &train, &input, ExecMode::Dynamic);
        for l in 0..self.logical.num_qubits() {
            let Some(&d) = dense_of_logical.get(l) else {
                continue; // QV009 already reported the hole.
            };
            let a = ideal.expect_z(l);
            let b = compiled.expect_z(d);
            if (a - b).abs() > EQUIV_TOL {
                report.push(
                    Diagnostic::error(
                        Rule::ContractEquivalence,
                        format!("logical qubit {l}: ideal <Z> = {a:.9}, compiled <Z> = {b:.9}"),
                        Location {
                            op_index: None,
                            qubit: Some(l),
                        },
                    )
                    .at_stage("output"),
                );
            }
        }
        report
    }

    /// `QC103`: symbolic parameter slots referenced by the logical circuit
    /// are still referenced after `stage` (routing and lowering preserve
    /// them exactly; losing one silently freezes a trainable weight).
    fn check_params(&self, stage: &'static str, after: &Circuit) -> VerifyReport {
        let mut report = VerifyReport::clean();
        let before = self.logical.referenced_train_indices();
        let got: std::collections::HashSet<usize> =
            after.referenced_train_indices().into_iter().collect();
        for i in before {
            if !got.contains(&i) {
                report.push(
                    Diagnostic::error(
                        Rule::ContractParamLoss,
                        format!("trainable parameter {i} is no longer referenced"),
                        Location::default(),
                    )
                    .at_stage(stage),
                );
            }
        }
        if after.num_inputs() < self.logical.num_inputs() {
            report.push(
                Diagnostic::error(
                    Rule::ContractParamLoss,
                    format!(
                        "input width shrank from {} to {}",
                        self.logical.num_inputs(),
                        after.num_inputs()
                    ),
                    Location::default(),
                )
                .at_stage(stage),
            );
        }
        report
    }

    /// `QC103`, post-optimization flavor: `after` may reference *fewer*
    /// trainable indices than the logical circuit (cancellation), but never
    /// one the logical circuit does not reference.
    fn check_no_invented_params(&self, stage: &'static str, after: &Circuit) -> VerifyReport {
        let mut report = VerifyReport::clean();
        let logical: std::collections::HashSet<usize> = self
            .logical
            .referenced_train_indices()
            .into_iter()
            .collect();
        for i in after.referenced_train_indices() {
            if !logical.contains(&i) {
                report.push(
                    Diagnostic::error(
                        Rule::ContractParamLoss,
                        format!("circuit references trainable {i}, logical does not"),
                        Location::default(),
                    )
                    .at_stage(stage),
                );
            }
        }
        report
    }
}

impl VerifyReport {
    /// Tags every untagged diagnostic with `stage` (rule-level helpers don't
    /// know which pass produced the circuit they checked).
    pub fn stage_tagged(mut self, stage: &'static str) -> VerifyReport {
        for d in &mut self.diagnostics {
            if d.stage.is_empty() {
                d.stage = stage;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::Param;
    use qns_noise::Device;

    fn bell_chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RY, &[2], &[Param::Train(0)]);
        c.push(GateKind::CX, &[1, 2], &[]);
        c
    }

    #[test]
    fn off_level_checks_nothing() {
        let dev = Device::santiago();
        let c = bell_chain();
        let pc = PassContract::new(&c, &dev, VerifyLevel::Off);
        assert!(pc.check_layout(&[99, 98, 97]).is_clean());
    }

    #[test]
    fn layout_contract_flags_bad_layouts() {
        let dev = Device::santiago();
        let c = bell_chain();
        let pc = PassContract::new(&c, &dev, VerifyLevel::Contracts);
        assert!(pc.check_layout(&[0, 1, 2]).is_clean());
        // Width mismatch.
        assert!(pc.check_layout(&[0, 1]).has_errors());
        // Out of device range.
        let r = pc.check_layout(&[0, 1, 9]);
        assert_eq!(r.with_rule(Rule::ContractInvalidLayout).len(), 1);
        // Duplicate physical qubit.
        assert!(pc.check_layout(&[0, 1, 1]).has_errors());
    }

    #[test]
    fn routed_contract_accepts_faithful_routing() {
        let dev = Device::santiago();
        let c = bell_chain();
        let pc = PassContract::new(&c, &dev, VerifyLevel::Contracts);
        // Trivial layout on a line: all gates already adjacent, no swaps.
        let r = pc.check_routed(&[0, 1, 2], &c, &[0, 1, 2]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn routed_contract_flags_dropped_gate() {
        let dev = Device::santiago();
        let c = bell_chain();
        let pc = PassContract::new(&c, &dev, VerifyLevel::Contracts);
        let mut broken = Circuit::new(3);
        broken.push(GateKind::H, &[0], &[]);
        broken.push(GateKind::CX, &[0, 1], &[]);
        broken.push(GateKind::RY, &[2], &[Param::Train(0)]);
        // cx(1,2) is missing.
        let r = pc.check_routed(&[0, 1, 2], &broken, &[0, 1, 2]);
        assert!(!r.with_rule(Rule::ContractGateLoss).is_empty(), "{r}");
    }

    #[test]
    fn routed_contract_flags_wrong_final_mapping() {
        let dev = Device::santiago();
        let c = bell_chain();
        let pc = PassContract::new(&c, &dev, VerifyLevel::Contracts);
        let r = pc.check_routed(&[0, 1, 2], &c, &[0, 2, 1]);
        assert!(!r.with_rule(Rule::ContractGateLoss).is_empty());
    }

    #[test]
    fn output_equivalence_spot_check_flags_wrong_measurement_slot() {
        let dev = Device::santiago();
        let mut c = Circuit::new(2);
        c.push(GateKind::X, &[0], &[]);
        let pc = PassContract::new(&c, &dev, VerifyLevel::Full);
        // The "compiled" circuit applies X to the other qubit: structurally
        // legal (no 2q gates, map valid) but not equivalent.
        let mut wrong = Circuit::new(2);
        wrong.push(GateKind::X, &[1], &[]);
        let r = pc.check_output(&wrong, &[0, 1], &[0, 1]);
        assert!(!r.with_rule(Rule::ContractEquivalence).is_empty(), "{r}");
        // The faithful circuit passes.
        let ok = pc.check_output(&c, &[0, 1], &[0, 1]);
        assert!(ok.is_clean(), "{ok}");
    }
}
