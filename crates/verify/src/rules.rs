//! Circuit/IR verification rules (`QV0xx`).
//!
//! Each function checks one family of invariants on a [`Circuit`] and
//! returns a [`VerifyReport`]; [`verify_circuit`] bundles the
//! device-independent rules. All rules are total: they never panic on
//! malformed input (that is the point).

use crate::diag::{Diagnostic, Location, Rule, VerifyReport};
use qns_circuit::{Circuit, GateKind, GateMatrix, Op, Param};
use qns_noise::Device;

/// The IBM hardware basis the transpiler lowers to.
pub const IBM_BASIS: &[GateKind] = &[GateKind::CX, GateKind::SX, GateKind::RZ, GateKind::X];

/// Deterministic sample values for trainable slots (unitarity and
/// equivalence checks must not read entropy: cache keys depend on it).
pub fn sample_train(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.37 + 0.193 * i as f64).collect()
}

/// Deterministic sample values for input slots.
pub fn sample_input(n: usize) -> Vec<f64> {
    (0..n).map(|i| -0.51 + 0.147 * i as f64).collect()
}

fn finite_parts(p: Param) -> bool {
    match p {
        Param::Fixed(v) => v.is_finite(),
        Param::Input(_) | Param::Train(_) => true,
        Param::AffineInput { scale, offset, .. } | Param::AffineTrain { scale, offset, .. } => {
            scale.is_finite() && offset.is_finite()
        }
    }
}

fn slots_in_range(p: Param, n_train: usize, n_input: usize) -> bool {
    let train_ok = p.train_index().map(|i| i < n_train).unwrap_or(true);
    let input_ok = p.input_index().map(|i| i < n_input).unwrap_or(true);
    train_ok && input_ok
}

/// Checks structural rules on one op; pushed diagnostics carry `op_index`.
fn check_op(report: &mut VerifyReport, c: &Circuit, i: usize, op: &Op) {
    let nq = op.num_qubits();
    // Whether the parameter list is well-formed enough to evaluate the gate
    // matrix: right arity and in-range symbolic slots (non-finite values
    // still evaluate — they are exactly what the unitarity rule catches).
    let mut evaluable = true;

    // QV001: qubit bounds.
    for &q in &op.qubits[..nq] {
        if q >= c.num_qubits() {
            report.push(Diagnostic::error(
                Rule::QubitOutOfRange,
                format!(
                    "gate {} touches qubit {q} but the circuit has {} qubits",
                    op.kind,
                    c.num_qubits()
                ),
                Location::op_qubit(i, q),
            ));
        }
    }

    // QV002: distinct operands.
    if nq == 2 && op.qubits[0] == op.qubits[1] {
        report.push(Diagnostic::error(
            Rule::DuplicateOperands,
            format!(
                "two-qubit gate {} uses qubit {} for both operands",
                op.kind, op.qubits[0]
            ),
            Location::op_qubit(i, op.qubits[0]),
        ));
    }

    // QV003: parameter arity.
    if op.params.len() != op.kind.num_params() {
        evaluable = false;
        report.push(Diagnostic::error(
            Rule::ParamArityMismatch,
            format!(
                "gate {} expects {} parameter slots, found {}",
                op.kind,
                op.kind.num_params(),
                op.params.len()
            ),
            Location::op(i),
        ));
    }

    // QV004 / QV005: per-slot values and indices.
    for (k, &p) in op.params.iter().enumerate() {
        if !finite_parts(p) {
            report.push(Diagnostic::error(
                Rule::NonFiniteParam,
                format!("gate {} slot {k} holds a non-finite value ({p:?})", op.kind),
                Location::op(i),
            ));
        }
        if !slots_in_range(p, c.num_train_params(), c.num_inputs()) {
            evaluable = false;
            report.push(Diagnostic::error(
                Rule::SymbolicSlotOutOfRange,
                format!(
                    "gate {} slot {k} references {p:?} outside declared widths \
                     (train {}, input {})",
                    op.kind,
                    c.num_train_params(),
                    c.num_inputs()
                ),
                Location::op(i),
            ));
        }
    }

    // QV006: unitarity at sample parameters.
    if evaluable {
        let train = sample_train(c.num_train_params());
        let input = sample_input(c.num_inputs());
        let vals = op.resolve_params(&train, &input);
        let unitary = match op.kind.matrix(&vals) {
            GateMatrix::One(m) => m.is_unitary(1e-8),
            GateMatrix::Two(m) => m.is_unitary(1e-8),
        };
        if !unitary {
            report.push(Diagnostic::error(
                Rule::NonUnitaryMatrix,
                format!(
                    "gate {} is not unitary at sample parameters {vals:?}",
                    op.kind
                ),
                Location::op(i),
            ));
        }
    }
}

/// Device-independent verification: qubit bounds, operand distinctness,
/// parameter arity, finiteness, symbolic slot ranges, and unitarity at
/// sample parameters (`QV001`–`QV006`).
pub fn verify_circuit(c: &Circuit) -> VerifyReport {
    let mut report = VerifyReport::clean();
    for (i, op) in c.iter().enumerate() {
        check_op(&mut report, c, i, op);
    }
    report
}

/// Coupling legality (`QV007`): every structurally valid two-qubit gate acts
/// on a coupled physical pair.
///
/// `phys_of` maps circuit qubit indices to device qubits; pass `None` when
/// the circuit is already expressed over physical indices (router output).
pub fn verify_coupling(c: &Circuit, device: &Device, phys_of: Option<&[usize]>) -> VerifyReport {
    let mut report = VerifyReport::clean();
    let to_phys = |q: usize| -> Option<usize> {
        match phys_of {
            None => (q < device.num_qubits()).then_some(q),
            Some(map) => map.get(q).copied().filter(|&p| p < device.num_qubits()),
        }
    };
    for (i, op) in c.iter().enumerate() {
        if op.num_qubits() != 2 || op.qubits[0] == op.qubits[1] {
            continue;
        }
        match (to_phys(op.qubits[0]), to_phys(op.qubits[1])) {
            (Some(pa), Some(pb)) => {
                if !device.connected(pa, pb) {
                    report.push(Diagnostic::error(
                        Rule::UncoupledGate,
                        format!(
                            "gate {} acts on physical pair {pa}-{pb}, not coupled on {}",
                            op.kind,
                            device.name()
                        ),
                        Location::op(i),
                    ));
                }
            }
            _ => report.push(Diagnostic::error(
                Rule::UncoupledGate,
                format!(
                    "gate {} operands {:?} do not map onto device {}",
                    op.kind,
                    &op.qubits[..2],
                    device.name()
                ),
                Location::op(i),
            )),
        }
    }
    report
}

/// Basis conformance (`QV008`): every gate kind is in `basis`.
pub fn verify_basis(c: &Circuit, basis: &[GateKind]) -> VerifyReport {
    let mut report = VerifyReport::clean();
    for (i, op) in c.iter().enumerate() {
        if !basis.contains(&op.kind) {
            report.push(Diagnostic::error(
                Rule::NonBasisGate,
                format!("gate {} is outside the target basis", op.kind),
                Location::op(i),
            ));
        }
    }
    report
}

/// Measurement-map validity (`QV009`): every entry of `dense_of_logical` is
/// a distinct in-range dense qubit index.
pub fn verify_measurement_map(dense_of_logical: &[usize], num_dense: usize) -> VerifyReport {
    let mut report = VerifyReport::clean();
    let mut seen = vec![false; num_dense];
    for (l, &d) in dense_of_logical.iter().enumerate() {
        if d >= num_dense {
            report.push(Diagnostic::error(
                Rule::InvalidMeasurementMap,
                format!("logical qubit {l} measures dense index {d}, width is {num_dense}"),
                Location {
                    op_index: None,
                    qubit: Some(l),
                },
            ));
        } else if seen[d] {
            report.push(Diagnostic::error(
                Rule::InvalidMeasurementMap,
                format!("logical qubit {l} measures dense index {d}, already claimed"),
                Location {
                    op_index: None,
                    qubit: Some(l),
                },
            ));
        } else {
            seen[d] = true;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{Circuit, GateKind, Param};

    #[test]
    fn valid_circuit_is_clean() {
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::RY, &[1], &[Param::Train(0)]);
        c.push(GateKind::CX, &[0, 2], &[]);
        assert!(verify_circuit(&c).is_clean());
    }

    #[test]
    fn out_of_range_qubit_fires_qv001() {
        let mut c = Circuit::new(2);
        c.push_unchecked(GateKind::H, &[7], &[]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::QubitOutOfRange).len(), 1);
        assert_eq!(r.diagnostics[0].rule.code(), "QV001");
        assert_eq!(r.diagnostics[0].location.op_index, Some(0));
    }

    #[test]
    fn duplicate_operands_fire_qv002() {
        let mut c = Circuit::new(2);
        c.push_unchecked(GateKind::CX, &[1, 1], &[]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::DuplicateOperands).len(), 1);
    }

    #[test]
    fn param_arity_mismatch_fires_qv003() {
        let mut c = Circuit::new(1);
        c.push_unchecked(GateKind::RX, &[0], &[]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::ParamArityMismatch).len(), 1);
    }

    #[test]
    fn non_finite_param_fires_qv004() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Fixed(f64::NAN)]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::NonFiniteParam).len(), 1);
    }

    #[test]
    fn symbolic_slot_out_of_range_fires_qv005() {
        let mut c = Circuit::new(1);
        // push() grows declared widths, so seed the bad slot unchecked.
        c.push_unchecked(GateKind::RX, &[0], &[Param::Train(3)]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::SymbolicSlotOutOfRange).len(), 1);
    }

    #[test]
    fn non_unitary_matrix_fires_qv006() {
        // A NaN angle makes every RX matrix entry NaN, hence non-unitary:
        // QV004 fires on the slot and QV006 on the matrix.
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Fixed(f64::NAN)]);
        let r = verify_circuit(&c);
        assert_eq!(r.with_rule(Rule::NonFiniteParam).len(), 1);
        assert_eq!(r.with_rule(Rule::NonUnitaryMatrix).len(), 1);
        let sane = verify_circuit(&{
            let mut c = Circuit::new(1);
            c.push(GateKind::RX, &[0], &[Param::Fixed(1.0)]);
            c
        });
        assert!(sane.is_clean());
    }

    #[test]
    fn uncoupled_gate_fires_qv007() {
        let dev = qns_noise::Device::santiago(); // line: 0-1-2-3-4
        let mut c = Circuit::new(5);
        c.push(GateKind::CX, &[0, 4], &[]);
        let r = verify_coupling(&c, &dev, None);
        assert_eq!(r.with_rule(Rule::UncoupledGate).len(), 1);
        let ok = {
            let mut c = Circuit::new(5);
            c.push(GateKind::CX, &[1, 2], &[]);
            c
        };
        assert!(verify_coupling(&ok, &dev, None).is_clean());
    }

    #[test]
    fn coupling_respects_phys_map() {
        let dev = qns_noise::Device::santiago();
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        // Dense 0,1 sit on physical 0 and 4: not coupled.
        let r = verify_coupling(&c, &dev, Some(&[0, 4]));
        assert_eq!(r.with_rule(Rule::UncoupledGate).len(), 1);
        assert!(verify_coupling(&c, &dev, Some(&[2, 3])).is_clean());
    }

    #[test]
    fn non_basis_gate_fires_qv008() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0], &[]);
        let r = verify_basis(&c, IBM_BASIS);
        assert_eq!(r.with_rule(Rule::NonBasisGate).len(), 1);
        let ok = {
            let mut c = Circuit::new(2);
            c.push(GateKind::SX, &[0], &[]);
            c.push(GateKind::RZ, &[0], &[Param::Fixed(0.2)]);
            c.push(GateKind::CX, &[0, 1], &[]);
            c.push(GateKind::X, &[1], &[]);
            c
        };
        assert!(verify_basis(&ok, IBM_BASIS).is_clean());
    }

    #[test]
    fn invalid_measurement_map_fires_qv009() {
        let out_of_range = verify_measurement_map(&[0, 5], 3);
        assert_eq!(out_of_range.with_rule(Rule::InvalidMeasurementMap).len(), 1);
        let duplicated = verify_measurement_map(&[1, 1], 3);
        assert_eq!(duplicated.with_rule(Rule::InvalidMeasurementMap).len(), 1);
        assert!(verify_measurement_map(&[2, 0, 1], 3).is_clean());
    }
}
