//! Fermion-to-qubit mappings: Jordan-Wigner and Bravyi-Kitaev.

use crate::{FermionOp, FermionSum, PauliString, PauliSum};
use qns_tensor::C64;
use std::collections::HashMap;

/// A complex-coefficient Pauli sum — the intermediate algebra for mapping
/// ladder-operator products.
#[derive(Clone, Debug)]
pub(crate) struct ComplexPauliSum(pub Vec<(C64, PauliString)>);

impl ComplexPauliSum {
    fn identity() -> Self {
        ComplexPauliSum(vec![(C64::ONE, PauliString::IDENTITY)])
    }

    fn mul(&self, rhs: &ComplexPauliSum) -> ComplexPauliSum {
        let mut out = Vec::with_capacity(self.0.len() * rhs.0.len());
        for (ca, sa) in &self.0 {
            for (cb, sb) in &rhs.0 {
                let (phase, s) = sa.mul(sb);
                out.push((*ca * *cb * phase, s));
            }
        }
        ComplexPauliSum(out)
    }

    fn scale(&mut self, c: C64) {
        for (coeff, _) in &mut self.0 {
            *coeff *= c;
        }
    }

    fn add(&mut self, rhs: ComplexPauliSum) {
        self.0.extend(rhs.0);
    }

    pub(crate) fn simplify(&mut self) {
        let mut map: HashMap<PauliString, C64> = HashMap::new();
        for (c, s) in self.0.drain(..) {
            let e = map.entry(s).or_insert(C64::ZERO);
            *e += c;
        }
        let mut v: Vec<(C64, PauliString)> = map
            // lint:allow(nondet-iter) — drained into a Vec and sorted by
            // the total key (weight, x, z) two lines down; coefficients
            // were accumulated per-entry, so order cannot leak
            .into_iter()
            .filter(|(_, c)| c.abs() > 1e-12)
            .map(|(s, c)| (c, s))
            .collect();
        v.sort_by_key(|(_, s)| (s.weight(), s.x, s.z));
        self.0 = v;
    }
}

/// Which fermion-to-qubit encoding to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Encoding {
    JordanWigner,
    BravyiKitaev,
}

/// The JW ladder operator `a_j` (or `a†_j` for `dagger`).
fn jw_ladder(j: usize, dagger: bool) -> ComplexPauliSum {
    let chain = (1u64 << j) - 1; // Z on 0..j
    let x_term = PauliString {
        x: 1 << j,
        z: chain,
    };
    let y_term = PauliString {
        x: 1 << j,
        z: chain | (1 << j),
    };
    let sign = if dagger { -0.5 } else { 0.5 };
    ComplexPauliSum(vec![
        (C64::real(0.5), x_term),
        (C64::new(0.0, sign), y_term),
    ])
}

/// Fenwick-tree update set `U(j)`: qubits above `j` whose stored partial
/// sums include mode `j`.
fn update_set(j: usize, n: usize) -> u64 {
    let mut mask = 0u64;
    let mut idx = (j + 1) as u64;
    idx += idx & idx.wrapping_neg();
    while idx <= n as u64 {
        mask |= 1 << (idx - 1);
        idx += idx & idx.wrapping_neg();
    }
    mask
}

/// Parity set `P(j)`: qubits whose XOR gives the parity of modes `< j`.
fn parity_set(j: usize) -> u64 {
    let mut mask = 0u64;
    let mut idx = j as u64;
    while idx > 0 {
        mask |= 1 << (idx - 1);
        idx &= idx - 1;
    }
    mask
}

/// Occupation set: qubits whose XOR gives the occupation of mode `j`
/// (includes `j` itself).
fn occupation_set(j: usize) -> u64 {
    let mut mask = 1u64 << j;
    let idx = (j + 1) as u64;
    let parent = idx & (idx - 1);
    let mut k = idx - 1;
    while k != parent {
        if k >= 1 {
            mask |= 1 << (k - 1);
        }
        k &= k - 1;
    }
    mask
}

/// The BK ladder operator `a_j` (or `a†_j`) over `n` qubits.
fn bk_ladder(j: usize, dagger: bool, n: usize) -> ComplexPauliSum {
    let u = update_set(j, n);
    let p = parity_set(j);
    let f = occupation_set(j) & !(1 << j);
    let rho = if j.is_multiple_of(2) { p } else { p & !f };
    // Term 1: X_{U} X_j Z_{P};  Term 2: X_{U} Y_j Z_{ρ}.
    let t1 = PauliString {
        x: u | (1 << j),
        z: p,
    };
    let t2 = PauliString {
        x: u | (1 << j),
        z: rho | (1 << j),
    };
    let sign = if dagger { -0.5 } else { 0.5 };
    ComplexPauliSum(vec![(C64::real(0.5), t1), (C64::new(0.0, sign), t2)])
}

fn map_sum(h: &FermionSum, encoding: Encoding) -> PauliSum {
    let n = h.num_modes();
    let mut total = ComplexPauliSum(Vec::new());
    for term in h.terms() {
        let mut acc = ComplexPauliSum::identity();
        // Ladders apply right-to-left; operator product left-to-right.
        for &(mode, dagger) in &term.ladders {
            let ladder = match encoding {
                Encoding::JordanWigner => jw_ladder(mode, dagger),
                Encoding::BravyiKitaev => bk_ladder(mode, dagger, n),
            };
            acc = acc.mul(&ladder);
        }
        acc.scale(C64::real(term.coeff));
        total.add(acc);
    }
    total.simplify();
    let mut out = PauliSum::new(n);
    for (c, s) in total.0 {
        assert!(
            c.im.abs() < 1e-9,
            "non-Hermitian input: imaginary coefficient {c}"
        );
        out.add(c.re, s);
    }
    out.simplify();
    out
}

/// Maps a Hermitian fermionic Hamiltonian to qubits with the
/// **Jordan-Wigner** transform: `a_j = Z_{<j} (X_j + iY_j)/2`.
///
/// # Panics
///
/// Panics if the operator is not Hermitian (an imaginary Pauli coefficient
/// survives).
///
/// # Examples
///
/// ```
/// use qns_chem::{jordan_wigner, FermionOp, FermionSum, PauliString};
/// let mut h = FermionSum::new(2);
/// h.push(FermionOp::one_body(1.0, 0, 0));
/// let q = jordan_wigner(&h);
/// // n_0 = (I − Z_0)/2.
/// assert_eq!(q.terms().len(), 2);
/// ```
pub fn jordan_wigner(h: &FermionSum) -> PauliSum {
    map_sum(h, Encoding::JordanWigner)
}

/// Maps a Hermitian fermionic Hamiltonian to qubits with the
/// **Bravyi-Kitaev** transform (Fenwick-tree parity/update/occupation
/// sets) — the encoding the paper uses for its VQE benchmarks.
///
/// # Panics
///
/// Panics if the operator is not Hermitian.
pub fn bravyi_kitaev(h: &FermionSum) -> PauliSum {
    map_sum(h, Encoding::BravyiKitaev)
}

/// Maps the anti-Hermitian combination `i(T − T†)` to a real Pauli sum via
/// Jordan-Wigner — the UCCSD generator. The returned sum `G` satisfies
/// `T − T† = −iG`, so `exp(T − T†) = exp(−iG)` is implementable as Pauli
/// rotations.
pub(crate) fn jw_antihermitian_generator(t: &FermionOp, n_modes: usize) -> PauliSum {
    let mut acc = ComplexPauliSum::identity();
    for &(mode, dagger) in &t.ladders {
        acc = acc.mul(&jw_ladder(mode, dagger));
    }
    acc.scale(C64::real(t.coeff));
    let dag = t.dagger();
    let mut acc_dag = ComplexPauliSum::identity();
    for &(mode, dagger) in &dag.ladders {
        acc_dag = acc_dag.mul(&jw_ladder(mode, dagger));
    }
    acc_dag.scale(C64::real(-dag.coeff));
    acc.add(acc_dag);
    // i (T − T†)
    acc.scale(C64::I);
    acc.simplify();
    let mut out = PauliSum::new(n_modes);
    for (c, s) in acc.0 {
        assert!(
            c.im.abs() < 1e-9,
            "generator not Hermitian: coefficient {c}"
        );
        out.add(c.re, s);
    }
    out.simplify();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_state_energy;

    #[test]
    fn jw_number_operator_is_half_i_minus_z() {
        let mut h = FermionSum::new(3);
        h.push(FermionOp::one_body(1.0, 1, 0).dagger()); // a†_0 a_1
        let mut h2 = FermionSum::new(3);
        h2.push(FermionOp::one_body(1.0, 2, 2));
        let q = jordan_wigner(&h2);
        let terms = q.terms();
        assert_eq!(terms.len(), 2);
        assert!((q.identity_coeff() - 0.5).abs() < 1e-12);
        let z2 = PauliString::z_on(2);
        let zc = terms
            .iter()
            .find(|(_, s)| *s == z2)
            .map(|(c, _)| *c)
            .expect("Z_2 term");
        assert!((zc + 0.5).abs() < 1e-12);
    }

    #[test]
    fn bk_number_operator_on_mode_zero() {
        let mut h = FermionSum::new(2);
        h.push(FermionOp::one_body(1.0, 0, 0));
        let q = bravyi_kitaev(&h);
        assert!((q.identity_coeff() - 0.5).abs() < 1e-12);
        let z0 = PauliString::z_on(0);
        let zc = q
            .terms()
            .iter()
            .find(|(_, s)| *s == z0)
            .map(|(c, _)| *c)
            .expect("Z_0 term");
        assert!((zc + 0.5).abs() < 1e-12);
    }

    #[test]
    fn hopping_term_is_hermitian_under_both_mappings() {
        let mut h = FermionSum::new(4);
        h.push_hermitian(FermionOp::one_body(0.7, 0, 3));
        let jw = jordan_wigner(&h);
        let bk = bravyi_kitaev(&h);
        assert!(!jw.terms().is_empty());
        assert!(!bk.terms().is_empty());
    }

    /// The decisive test: JW and BK must produce isospectral operators.
    /// We compare ground-state energies on seeded random Hermitian
    /// Hamiltonians.
    #[test]
    fn jw_and_bk_are_isospectral_on_random_hamiltonians() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4;
            let mut h = FermionSum::new(n);
            for p in 0..n {
                for q in p..n {
                    if rng.gen_bool(0.7) {
                        h.push_hermitian(FermionOp::one_body(rng.gen_range(-1.0..1.0), p, q));
                    }
                }
            }
            // A couple of two-body terms.
            h.push_hermitian(FermionOp::two_body(rng.gen_range(-0.5..0.5), 0, 1, 1, 0));
            h.push_hermitian(FermionOp::two_body(rng.gen_range(-0.5..0.5), 2, 3, 3, 2));
            h.push_hermitian(FermionOp::two_body(rng.gen_range(-0.3..0.3), 0, 2, 3, 1));

            let jw = jordan_wigner(&h);
            let bk = bravyi_kitaev(&h);
            let e_jw = ground_state_energy(&jw, n);
            let e_bk = ground_state_energy(&bk, n);
            assert!(
                (e_jw - e_bk).abs() < 1e-6,
                "seed {seed}: JW {e_jw} vs BK {e_bk}"
            );
        }
    }

    #[test]
    fn fenwick_sets_match_known_values() {
        // 8-mode examples cross-checked against the Seeley-Richard-Love
        // Fenwick construction.
        assert_eq!(parity_set(0), 0);
        assert_eq!(parity_set(1), 0b1);
        assert_eq!(parity_set(2), 0b10);
        assert_eq!(parity_set(3), 0b110);
        assert_eq!(parity_set(4), 0b1000);
        assert_eq!(occupation_set(0), 0b1);
        assert_eq!(occupation_set(1), 0b11);
        // Fenwick node 4 (mode 3) XORs with its children nodes 2 and 3,
        // i.e. qubits {1, 2} — occupation set {1, 2, 3}.
        assert_eq!(occupation_set(3), 0b1110);
        assert_eq!(occupation_set(2), 0b100);
        assert_eq!(
            update_set(0, 8),
            0b10001010 & !0b1000_0000 | 0b1000_0000 & 0b10001010
        );
        // Explicitly: U(0) for n=8 is {1, 3, 7}.
        assert_eq!(update_set(0, 8), (1 << 1) | (1 << 3) | (1 << 7));
        assert_eq!(update_set(2, 8), (1 << 3) | (1 << 7));
        assert_eq!(update_set(4, 8), (1 << 5) | (1 << 7));
        assert_eq!(update_set(7, 8), 0);
    }

    #[test]
    fn antihermitian_generator_is_real() {
        let t = FermionOp::two_body(0.4, 2, 3, 1, 0);
        let g = jw_antihermitian_generator(&t, 4);
        assert!(!g.terms().is_empty());
        // All coefficients real by construction (asserted inside); also the
        // generator has even Y-weight terms only.
        for (_, s) in g.terms() {
            let y_count = (s.x & s.z).count_ones();
            assert!(
                y_count % 2 == 1,
                "JW excitation generators have odd Y count"
            );
        }
    }
}
