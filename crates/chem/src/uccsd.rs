//! The UCCSD baseline ansatz as Pauli-exponential circuits.

use crate::mapping::jw_antihermitian_generator;
use crate::{FermionOp, PauliString, PauliSum};
use qns_circuit::{Circuit, GateKind, Param};

/// Appends `exp(−i θ/2 P)` to `circuit` for a single Pauli string, using
/// the standard basis-rotate → CX-ladder → `RZ(θ)` → unrotate construction.
/// `theta` may be any parameter slot (trainable for ansatz use).
///
/// # Panics
///
/// Panics if the string is identity (a global phase, not a circuit) or
/// addresses qubits beyond the circuit.
///
/// # Examples
///
/// ```
/// use qns_chem::{pauli_exponential, PauliString};
/// use qns_circuit::{Circuit, Param};
///
/// let mut c = Circuit::new(2);
/// let zz = PauliString::from_label("ZZ").unwrap();
/// pauli_exponential(&mut c, &zz, Param::Train(0));
/// assert!(c.num_ops() >= 3); // CX ladder + RZ + unladder
/// ```
pub fn pauli_exponential(circuit: &mut Circuit, pauli: &PauliString, theta: Param) {
    assert!(!pauli.is_identity(), "identity exponent is a global phase");
    let n = circuit.num_qubits();
    assert!(
        (pauli.x | pauli.z) >> n == 0,
        "string addresses qubits beyond the circuit"
    );
    let qubits: Vec<usize> = (0..n)
        .filter(|&q| ((pauli.x | pauli.z) >> q) & 1 == 1)
        .collect();

    // Rotate each qubit's basis so the string becomes all-Z.
    let rotate = |c: &mut Circuit, undo: bool| {
        for &q in &qubits {
            let x = (pauli.x >> q) & 1;
            let z = (pauli.z >> q) & 1;
            match (x, z) {
                (1, 0) => {
                    c.push(GateKind::H, &[q], &[]);
                }
                (1, 1) => {
                    if undo {
                        c.push(GateKind::H, &[q], &[]);
                        c.push(GateKind::S, &[q], &[]);
                    } else {
                        c.push(GateKind::Sdg, &[q], &[]);
                        c.push(GateKind::H, &[q], &[]);
                    }
                }
                _ => {}
            }
        }
    };

    rotate(circuit, false);
    // CX ladder onto the last involved qubit.
    for w in qubits.windows(2) {
        circuit.push(GateKind::CX, &[w[0], w[1]], &[]);
    }
    let target = *qubits.last().expect("non-identity string");
    circuit.push(GateKind::RZ, &[target], &[theta]);
    for w in qubits.windows(2).rev() {
        circuit.push(GateKind::CX, &[w[0], w[1]], &[]);
    }
    rotate(circuit, true);
}

/// Appends `exp(−i θ/2 G)` for a Hermitian Pauli sum `G` by first-order
/// Trotterization (exact when the terms commute, which holds for UCCSD
/// excitation generators under Jordan-Wigner).
fn pauli_sum_exponential(circuit: &mut Circuit, g: &PauliSum, theta_index: usize) {
    for (c, s) in g.terms() {
        if s.is_identity() {
            continue;
        }
        pauli_exponential(
            circuit,
            s,
            Param::AffineTrain {
                index: theta_index,
                scale: *c,
                offset: 0.0,
            },
        );
    }
}

/// Builds the Unitary Coupled-Cluster Singles and Doubles ansatz over
/// `n_modes` spin orbitals with `n_electrons` occupied modes — the paper's
/// problem-ansatz baseline for VQE.
///
/// The circuit starts from the Hartree-Fock reference (`X` on the occupied
/// modes) and applies one trotterized `exp(θ_k (T_k − T_k†))` block per
/// single and double excitation, each with its own trainable parameter.
/// Returns `(circuit, num_parameters)`.
///
/// This is the standard hardware-unaware construction: deep, CX-heavy, and
/// therefore noise-fragile — exactly why the paper uses it as the
/// against-baseline.
///
/// # Panics
///
/// Panics if `n_electrons` is zero or not less than `n_modes`.
pub fn uccsd_ansatz(n_modes: usize, n_electrons: usize) -> (Circuit, usize) {
    assert!(
        n_electrons > 0 && n_electrons < n_modes,
        "need 0 < electrons < modes"
    );
    let mut circuit = Circuit::new(n_modes);
    // Hartree-Fock reference.
    for q in 0..n_electrons {
        circuit.push(GateKind::X, &[q], &[]);
    }
    let mut param = 0usize;
    // Singles: occupied i → virtual a.
    for i in 0..n_electrons {
        for a in n_electrons..n_modes {
            let t = FermionOp::one_body(1.0, a, i); // a†_a a_i
            let g = jw_antihermitian_generator(&t, n_modes);
            pauli_sum_exponential(&mut circuit, &g, param);
            param += 1;
        }
    }
    // Doubles: (i < j) occupied → (a < b) virtual.
    for i in 0..n_electrons {
        for j in (i + 1)..n_electrons {
            for a in n_electrons..n_modes {
                for b in (a + 1)..n_modes {
                    let t = FermionOp::two_body(1.0, b, a, j, i);
                    let g = jw_antihermitian_generator(&t, n_modes);
                    pauli_sum_exponential(&mut circuit, &g, param);
                    param += 1;
                }
            }
        }
    }
    circuit.set_num_train_params(param);
    (circuit, param)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_sim::{run, ExecMode, StateVec};
    use qns_tensor::C64;

    /// exp(−iθ/2 Z) on |+> must match the analytic state.
    #[test]
    fn single_z_exponential_matches_rz() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0], &[]);
        pauli_exponential(&mut c, &PauliString::z_on(0), Param::Fixed(0.7));
        let s = run(&c, &[], &[], ExecMode::Dynamic);
        let mut expected = StateVec::zero_state(1);
        expected.apply_1q(&qns_tensor::Mat2::hadamard(), 0);
        let rz = match GateKind::RZ.matrix(&[0.7]) {
            qns_circuit::GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        expected.apply_1q(&rz, 0);
        assert!((s.inner(&expected).abs() - 1.0).abs() < 1e-10);
    }

    /// exp(−iθ/2 P) must equal cos(θ/2) I − i sin(θ/2) P as an operator.
    #[test]
    fn pauli_exponential_matches_analytic_formula() {
        for label in ["XX", "YZ", "ZY", "XY"] {
            let p = PauliString::from_label(label).expect("valid");
            let theta = 0.9;
            // Build a random-ish test state.
            let mut prep = Circuit::new(2);
            prep.push(GateKind::H, &[0], &[]);
            prep.push(GateKind::RY, &[1], &[Param::Fixed(0.4)]);
            prep.push(GateKind::CX, &[0, 1], &[]);
            let psi = run(&prep, &[], &[], ExecMode::Dynamic);

            // Circuit path.
            let mut c = prep.clone();
            pauli_exponential(&mut c, &p, Param::Fixed(theta));
            let via_circuit = run(&c, &[], &[], ExecMode::Dynamic);

            // Analytic path: cos(θ/2)|ψ> − i sin(θ/2) P|ψ>.
            let p_psi = p.apply(&psi);
            let mut analytic = psi.clone();
            let cos = C64::real((theta / 2.0).cos());
            let sin = C64::new(0.0, -(theta / 2.0).sin());
            for (a, pb) in analytic.amplitudes_mut().iter_mut().zip(p_psi.amplitudes()) {
                *a = *a * cos + *pb * sin;
            }
            let f = via_circuit.inner(&analytic).abs();
            assert!((f - 1.0).abs() < 1e-9, "{label}: fidelity {f}");
        }
    }

    #[test]
    fn uccsd_structure() {
        let (c, n_params) = uccsd_ansatz(4, 2);
        // Singles: 2 occ × 2 virt = 4; doubles: 1 × 1 = 1.
        assert_eq!(n_params, 5);
        assert_eq!(c.num_train_params(), 5);
        assert_eq!(c.count_kind(GateKind::X), 2, "HF reference");
        assert!(c.count_kind(GateKind::CX) > 10, "UCCSD is CX-heavy");
    }

    /// With all parameters zero, UCCSD prepares exactly the HF state.
    #[test]
    fn uccsd_at_zero_is_hartree_fock() {
        let (c, n_params) = uccsd_ansatz(4, 2);
        let s = run(&c, &vec![0.0; n_params], &[], ExecMode::Dynamic);
        assert!((s.probability(0b0011) - 1.0).abs() < 1e-10);
    }

    /// Training UCCSD on H2 must reach the known ground energy: the
    /// end-to-end correctness test for the whole chemistry stack.
    #[test]
    fn uccsd_reaches_h2_ground_state() {
        use crate::Molecule;
        let h2 = Molecule::h2();
        // H2's published 2-qubit Hamiltonian: use a 2-mode, 1-electron
        // UCCSD (the reduced representation has one excitation).
        let (c, n_params) = uccsd_ansatz(2, 1);
        let h = h2.hamiltonian();
        let exact = crate::ground_state_energy(h, 2);
        // Simple grid + refine over the single-excitation parameters.
        let mut best = f64::INFINITY;
        let steps = 64;
        let mut probe = vec![0.0; n_params];
        for i in 0..steps {
            let t = -std::f64::consts::PI + 2.0 * std::f64::consts::PI * i as f64 / steps as f64;
            probe[0] = t;
            let s = run(&c, &probe, &[], ExecMode::Dynamic);
            best = best.min(h.expectation(&s));
        }
        assert!(best - exact < 0.05, "UCCSD best {best} vs exact {exact}");
    }
}
