//! Exact minimum eigenvalue via Lanczos iteration.

use crate::PauliSum;
use qns_sim::StateVec;
use qns_tensor::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Computes the exact ground-state energy of a qubit Hamiltonian by Lanczos
/// iteration with full reorthogonalization.
///
/// Works directly on the Pauli-sum matvec, so the cost is
/// `O(iterations × terms × 2^n)` — practical up to the paper's 15-qubit
/// BeH₂ Hamiltonian.
///
/// # Panics
///
/// Panics if `n_qubits` disagrees with the Hamiltonian width or exceeds 24.
///
/// # Examples
///
/// ```
/// use qns_chem::{ground_state_energy, PauliString, PauliSum};
/// let mut h = PauliSum::new(1);
/// h.add(1.0, PauliString::z_on(0));
/// assert!((ground_state_energy(&h, 1) + 1.0).abs() < 1e-9);
/// ```
pub fn ground_state_energy(h: &PauliSum, n_qubits: usize) -> f64 {
    assert_eq!(h.num_qubits(), n_qubits, "width mismatch");
    assert!(n_qubits <= 24, "Lanczos supported up to 24 qubits");
    let dim = 1usize << n_qubits;
    let max_iter = dim.min(120);

    // Seeded random start vector.
    let mut rng = StdRng::seed_from_u64(0x6A2C);
    let mut v0: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    normalize(&mut v0);

    let mut basis: Vec<Vec<C64>> = vec![v0];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    for k in 0..max_iter {
        let v = &basis[k];
        let mut w = apply(h, v, n_qubits);
        let alpha = dot(v, &w).re;
        alphas.push(alpha);
        // w -= alpha v + beta v_{k-1}; then full reorthogonalization.
        for (wi, vi) in w.iter_mut().zip(v.iter()) {
            *wi -= vi.scale(alpha);
        }
        if k > 0 {
            let beta = betas[k - 1];
            for (wi, vi) in w.iter_mut().zip(basis[k - 1].iter()) {
                *wi -= vi.scale(beta);
            }
        }
        for b in &basis {
            let overlap = dot(b, &w);
            for (wi, bi) in w.iter_mut().zip(b.iter()) {
                *wi -= *bi * overlap;
            }
        }
        let beta = norm(&w);
        if beta < 1e-10 {
            break;
        }
        betas.push(beta);
        let inv = 1.0 / beta;
        for wi in &mut w {
            *wi = wi.scale(inv);
        }
        basis.push(w);
    }

    // Smallest eigenvalue of the tridiagonal matrix via bisection on the
    // Sturm sequence.
    tridiag_min_eigenvalue(&alphas, &betas)
}

fn apply(h: &PauliSum, v: &[C64], n_qubits: usize) -> Vec<C64> {
    // Reuse PauliSum::apply through a StateVec wrapper; the vector may be
    // unnormalized, so scale in and out.
    let nrm = norm(v);
    if nrm == 0.0 {
        return vec![C64::ZERO; v.len()];
    }
    let scaled: Vec<C64> = v.iter().map(|a| a.scale(1.0 / nrm)).collect();
    let state = StateVec::from_amplitudes(scaled);
    let out = h.apply(&state);
    let _ = n_qubits;
    out.amplitudes().iter().map(|a| a.scale(nrm)).collect()
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(v: &[C64]) -> f64 {
    v.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

fn normalize(v: &mut [C64]) {
    let n = norm(v);
    assert!(n > 0.0, "zero start vector");
    for x in v.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

/// Minimum eigenvalue of a symmetric tridiagonal matrix (diagonal `a`,
/// off-diagonal `b`) by Sturm-sequence bisection.
fn tridiag_min_eigenvalue(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    assert!(n > 0, "empty tridiagonal matrix");
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r =
            (if i > 0 { b[i - 1].abs() } else { 0.0 }) + (if i < n - 1 { b[i].abs() } else { 0.0 });
        lo = lo.min(a[i] - r);
        hi = hi.max(a[i] + r);
    }
    // Count of eigenvalues < x via the LDLᵀ pivot signs (Sturm count).
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = a[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            if d.abs() < 1e-300 {
                d = -1e-300;
            }
            d = a[i] - x - b[i - 1] * b[i - 1] / d;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let mut lo = lo - 1e-9;
    let mut hi = hi + 1e-9;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-11 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PauliString;

    #[test]
    fn single_qubit_fields() {
        let mut h = PauliSum::new(1);
        h.add(0.5, PauliString::z_on(0));
        h.add(0.3, PauliString::x_on(0));
        // Eigenvalues ±sqrt(0.5² + 0.3²).
        let expect = -(0.5f64 * 0.5 + 0.3 * 0.3).sqrt();
        let e = ground_state_energy(&h, 1);
        assert!((e - expect).abs() < 1e-8, "{e} vs {expect}");
    }

    #[test]
    fn ising_chain_ground_energy() {
        // H = -Σ Z_i Z_{i+1} on 4 qubits: ground energy = -3.
        let mut h = PauliSum::new(4);
        for i in 0..3 {
            let s = PauliString {
                x: 0,
                z: (1 << i) | (1 << (i + 1)),
            };
            h.add(-1.0, s);
        }
        let e = ground_state_energy(&h, 4);
        assert!((e + 3.0).abs() < 1e-8, "{e}");
    }

    #[test]
    fn transverse_field_ising_matches_exact() {
        // H = -Z0 Z1 - 0.5 (X0 + X1): exact ground energy = -sqrt(1+...)
        // for 2 qubits: eigenvalues of the 4x4 are computable by hand:
        // basis {00,11} couples via XX? Compute numerically instead via
        // 2x2 effective check: we just verify monotonic bound properties.
        let mut h = PauliSum::new(2);
        h.add(-1.0, PauliString::from_label("ZZ").unwrap());
        h.add(-0.5, PauliString::from_label("XI").unwrap());
        h.add(-0.5, PauliString::from_label("IX").unwrap());
        let e = ground_state_energy(&h, 2);
        // Known exact: E0 = -(1 + h²)^(1/2) - ... cross-check against dense
        // eigensolver via real embedding.
        let e_dense = dense_min_eigenvalue(&h, 2);
        assert!((e - e_dense).abs() < 1e-7, "{e} vs {e_dense}");
    }

    #[test]
    fn matches_dense_solver_on_random_hamiltonians() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3;
            let mut h = PauliSum::new(n);
            for _ in 0..8 {
                let x = rng.gen_range(0..1u64 << n);
                let z = rng.gen_range(0..1u64 << n);
                h.add(rng.gen_range(-1.0..1.0), PauliString { x, z });
            }
            // Keep it Hermitian: PauliStrings with our convention are
            // Hermitian by definition, so any real sum works.
            h.simplify();
            if h.terms().is_empty() {
                continue;
            }
            let lanczos = ground_state_energy(&h, n);
            let dense = dense_min_eigenvalue(&h, n);
            assert!(
                (lanczos - dense).abs() < 1e-6,
                "seed {seed}: {lanczos} vs {dense}"
            );
        }
    }

    /// Dense reference: build the matrix, embed as real-symmetric, Jacobi.
    fn dense_min_eigenvalue(h: &PauliSum, n: usize) -> f64 {
        let dim = 1usize << n;
        // Column j of H = H|e_j>.
        let mut cols: Vec<Vec<C64>> = Vec::with_capacity(dim);
        for j in 0..dim {
            let mut amps = vec![C64::ZERO; dim];
            amps[j] = C64::ONE;
            let state = StateVec::from_amplitudes(amps);
            cols.push(h.apply(&state).amplitudes().to_vec());
        }
        // Real embedding [[Re, -Im], [Im, Re]] (eigenvalues doubled).
        let m = 2 * dim;
        let mut real = vec![0.0; m * m];
        for i in 0..dim {
            for j in 0..dim {
                let v = cols[j][i];
                real[i * m + j] = v.re;
                real[i * m + (j + dim)] = -v.im;
                real[(i + dim) * m + j] = v.im;
                real[(i + dim) * m + (j + dim)] = v.re;
            }
        }
        let eig = qns_tensor::sym_eigen(&real, m);
        *eig.values.last().expect("non-empty spectrum")
    }
}
