//! Molecular Hamiltonian substrate for VQE.
//!
//! The paper's VQE benchmarks need qubit Hamiltonians for H₂, LiH, H₂O,
//! CH₄ (6- and 10-qubit encodings) and BeH₂ (15 qubits), produced in the
//! original work by quantum-chemistry toolchains plus the Bravyi-Kitaev
//! transform. This crate rebuilds the whole path:
//!
//! - [`PauliString`] / [`PauliSum`] — symplectic Pauli algebra with exact
//!   phase tracking, state application, and expectation values,
//! - [`FermionOp`] — second-quantized operators (`a†`/`a` products),
//! - [`jordan_wigner`] / [`bravyi_kitaev`] — both fermion-to-qubit
//!   mappings, cross-validated against each other (isospectrality),
//! - [`Molecule`] — H₂ with published STO-3G coefficients (ground energy
//!   ≈ −1.85, the paper's "theoretical optimal"), and seeded synthetic
//!   electronic-structure Hamiltonians at the paper's qubit counts for the
//!   larger molecules (see `DESIGN.md`),
//! - [`ground_state_energy`] — exact minimum eigenvalue by Lanczos
//!   iteration on the Pauli-sum matvec,
//! - [`qwc_groups`] — qubit-wise-commuting measurement grouping with basis
//!   rotation circuits (how hardware estimates `<H>` from Z-basis shots),
//! - [`uccsd_ansatz`] — the UCCSD baseline ansatz as Pauli-exponential
//!   circuits.
//!
//! # Examples
//!
//! ```
//! use qns_chem::Molecule;
//! let h2 = Molecule::h2();
//! assert_eq!(h2.num_qubits(), 2);
//! let e = qns_chem::ground_state_energy(h2.hamiltonian(), 2);
//! assert!((e + 1.85).abs() < 0.02);
//! ```

mod fermion;
mod groundstate;
mod grouping;
mod mapping;
mod molecules;
mod pauli;
mod uccsd;

pub use fermion::{FermionOp, FermionSum};
pub use groundstate::ground_state_energy;
pub use grouping::{qwc_groups, MeasurementGroup};
pub use mapping::{bravyi_kitaev, jordan_wigner};
pub use molecules::Molecule;
pub use pauli::{PauliString, PauliSum};
pub use uccsd::{pauli_exponential, uccsd_ansatz};
