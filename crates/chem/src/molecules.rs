//! The paper's molecule benchmark suite.

use crate::{bravyi_kitaev, ground_state_energy, FermionOp, FermionSum, PauliString, PauliSum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A molecular VQE benchmark: a qubit Hamiltonian plus metadata.
///
/// `h2()` carries the published STO-3G Bravyi-Kitaev coefficients
/// (O'Malley et al., PRX 2016) whose ground energy is ≈ −1.851 — the
/// paper's "theoretical optimal −1.85" for Figure 16. The larger molecules
/// are **synthetic electronic-structure Hamiltonians** at the paper's qubit
/// counts (see `DESIGN.md`): seeded one-body hopping + density-density and
/// exchange interactions, passed through our Bravyi-Kitaev transform, with
/// magnitudes scaled so ground energies land in the paper's reported
/// ranges.
///
/// # Examples
///
/// ```
/// use qns_chem::Molecule;
/// let lih = Molecule::lih();
/// assert_eq!(lih.num_qubits(), 6);
/// assert!(lih.hamiltonian().terms().len() > 10);
/// ```
#[derive(Clone, Debug)]
pub struct Molecule {
    name: String,
    n_qubits: usize,
    n_electrons: usize,
    hamiltonian: PauliSum,
}

impl Molecule {
    /// H₂ at 0.74 Å in the STO-3G basis, reduced to 2 qubits under the
    /// Bravyi-Kitaev transform (published coefficients).
    pub fn h2() -> Self {
        let mut h = PauliSum::new(2);
        let term = |l: &str| PauliString::from_label(l).expect("valid label");
        h.add(-0.4804, PauliString::IDENTITY);
        h.add(0.3435, term("ZI"));
        h.add(-0.4347, term("IZ"));
        h.add(0.5716, term("ZZ"));
        h.add(0.0910, term("XX"));
        h.add(0.0910, term("YY"));
        Molecule {
            name: "H2".to_string(),
            n_qubits: 2,
            n_electrons: 1,
            hamiltonian: h,
        }
    }

    /// LiH analogue: 6 qubits, 2 active electrons.
    pub fn lih() -> Self {
        Molecule::synthetic("LiH", 6, 2, 2.0, 0x11)
    }

    /// H₂O analogue: 6 qubits, 4 active electrons, deeper well.
    pub fn h2o() -> Self {
        Molecule::synthetic("H2O", 6, 4, 12.0, 0x22)
    }

    /// CH₄ analogue in a 6-qubit active space.
    pub fn ch4_6q() -> Self {
        Molecule::synthetic("CH4-6Q", 6, 4, 7.0, 0x33)
    }

    /// CH₄ analogue in a 10-qubit active space.
    pub fn ch4_10q() -> Self {
        Molecule::synthetic("CH4-10Q", 10, 4, 7.0, 0x34)
    }

    /// BeH₂ analogue: 15 qubits, 6 active electrons (the paper's largest
    /// VQE benchmark).
    pub fn beh2() -> Self {
        Molecule::synthetic("BeH2", 15, 6, 4.0, 0x55)
    }

    /// All six benchmarks in the paper's order.
    pub fn all() -> Vec<Molecule> {
        vec![
            Molecule::h2(),
            Molecule::lih(),
            Molecule::h2o(),
            Molecule::ch4_6q(),
            Molecule::ch4_10q(),
            Molecule::beh2(),
        ]
    }

    /// Builds a seeded synthetic electronic-structure Hamiltonian:
    /// attractive orbital energies (deeper for low-index, occupied-like
    /// modes), near-diagonal hopping, density-density repulsion, and a few
    /// exchange terms — then Bravyi-Kitaev maps it to qubits.
    ///
    /// `scale` sets the orbital-energy magnitude (and thus the ground
    /// energy's order of magnitude).
    pub fn synthetic(
        name: &str,
        n_modes: usize,
        n_electrons: usize,
        scale: f64,
        seed: u64,
    ) -> Self {
        assert!(n_electrons < n_modes, "electrons must fit in modes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = FermionSum::new(n_modes);
        // Orbital energies: occupied-like modes are deep, virtuals shallow.
        for p in 0..n_modes {
            let depth = if p < n_electrons {
                -scale * rng.gen_range(0.8..1.2)
            } else {
                -0.25 * scale * rng.gen_range(0.2..0.8)
            };
            f.push(FermionOp::one_body(depth, p, p));
        }
        // Near-diagonal hopping.
        for p in 0..n_modes {
            for q in (p + 1)..(p + 3).min(n_modes) {
                f.push_hermitian(FermionOp::one_body(
                    0.15 * scale * rng.gen_range(-1.0..1.0),
                    p,
                    q,
                ));
            }
        }
        // Density-density repulsion n_p n_q (a†_p a†_q a_q a_p).
        for p in 0..n_modes {
            for q in (p + 1)..(p + 4).min(n_modes) {
                f.push(FermionOp::two_body(
                    0.2 * scale * rng.gen_range(0.3..1.0),
                    p,
                    q,
                    q,
                    p,
                ));
            }
        }
        // A few exchange-style terms.
        for _ in 0..n_modes / 2 {
            let p = rng.gen_range(0..n_modes);
            let q = rng.gen_range(0..n_modes);
            let r = rng.gen_range(0..n_modes);
            let s = rng.gen_range(0..n_modes);
            if p != q && r != s && (p, q) != (s, r) {
                f.push_hermitian(FermionOp::two_body(
                    0.05 * scale * rng.gen_range(-1.0..1.0),
                    p,
                    q,
                    r,
                    s,
                ));
            }
        }
        let hamiltonian = bravyi_kitaev(&f);
        Molecule {
            name: name.to_string(),
            n_qubits: n_modes,
            n_electrons,
            hamiltonian,
        }
    }

    /// Molecule name (e.g. `"H2O"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits in the mapped Hamiltonian.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of active electrons (for UCCSD construction).
    pub fn num_electrons(&self) -> usize {
        self.n_electrons
    }

    /// The qubit Hamiltonian.
    pub fn hamiltonian(&self) -> &PauliSum {
        &self.hamiltonian
    }

    /// Exact ground-state (FCI) energy via Lanczos. Costly for the larger
    /// molecules — prefer release builds.
    pub fn fci_energy(&self) -> f64 {
        ground_state_energy(&self.hamiltonian, self.n_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_ground_energy_matches_published_value() {
        let h2 = Molecule::h2();
        let e = h2.fci_energy();
        assert!((e + 1.851).abs() < 0.01, "H2 ground energy {e}");
    }

    #[test]
    fn h2_hamiltonian_has_six_terms() {
        assert_eq!(Molecule::h2().hamiltonian().terms().len(), 6);
    }

    #[test]
    fn qubit_counts_match_the_paper() {
        let expect = [
            ("H2", 2),
            ("LiH", 6),
            ("H2O", 6),
            ("CH4-6Q", 6),
            ("CH4-10Q", 10),
            ("BeH2", 15),
        ];
        for (mol, (name, n)) in Molecule::all().iter().zip(expect) {
            assert_eq!(mol.name(), name);
            assert_eq!(mol.num_qubits(), n, "{name}");
        }
    }

    #[test]
    fn synthetic_hamiltonians_are_deterministic() {
        let a = Molecule::lih();
        let b = Molecule::lih();
        assert_eq!(a.hamiltonian(), b.hamiltonian());
    }

    #[test]
    fn synthetic_ground_energies_are_negative_and_ordered() {
        // The 6-qubit molecules are cheap enough to diagonalize in tests.
        let lih = Molecule::lih().fci_energy();
        let h2o = Molecule::h2o().fci_energy();
        assert!(lih < 0.0, "LiH {lih}");
        assert!(h2o < lih, "H2O ({h2o}) should be deeper than LiH ({lih})");
    }

    #[test]
    fn hf_state_is_above_ground_energy() {
        // <HF|H|HF> >= E0 strictly for a correlated Hamiltonian.
        let lih = Molecule::lih();
        // BK-basis HF state is not a computational basis state in general;
        // just verify the variational bound with the all-zeros state.
        let s = qns_sim::StateVec::zero_state(6);
        let e = lih.hamiltonian().expectation(&s);
        assert!(e >= lih.fci_energy() - 1e-9);
    }

    #[test]
    fn large_molecules_have_bounded_term_counts() {
        let beh2 = Molecule::beh2();
        let n_terms = beh2.hamiltonian().terms().len();
        assert!(
            n_terms > 30 && n_terms < 2000,
            "BeH2 has {n_terms} Pauli terms"
        );
    }
}
