//! Qubit-wise-commuting measurement grouping.

use crate::{PauliString, PauliSum};
use qns_circuit::{Circuit, GateKind};

/// A set of qubit-wise-commuting Hamiltonian terms measurable in one shot
/// batch.
///
/// All member strings agree (up to identity) on every qubit, so a single
/// basis-rotation circuit followed by Z-basis measurement estimates every
/// term in the group simultaneously — exactly how the paper's VQE runs
/// estimate `<H>` on hardware.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementGroup {
    /// `(coefficient, string)` members.
    pub terms: Vec<(f64, PauliString)>,
    /// Union basis: per qubit, the non-identity Pauli everyone agrees on.
    basis: PauliString,
    n_qubits: usize,
}

impl MeasurementGroup {
    /// The basis-rotation circuit mapping this group's measurement basis to
    /// the computational (Z) basis: `H` for X, `S† H` for Y, nothing for
    /// Z/I. Append it after the ansatz, then measure in the Z basis.
    pub fn rotation_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for q in 0..self.n_qubits {
            let x = (self.basis.x >> q) & 1;
            let z = (self.basis.z >> q) & 1;
            match (x, z) {
                (1, 0) => {
                    c.push(GateKind::H, &[q], &[]);
                }
                (1, 1) => {
                    c.push(GateKind::Sdg, &[q], &[]);
                    c.push(GateKind::H, &[q], &[]);
                }
                _ => {}
            }
        }
        c
    }

    /// Z-parity masks, one per term, valid after
    /// [`MeasurementGroup::rotation_circuit`]:
    /// `<P_k> = <⊗_{q ∈ mask_k} Z_q>` in the rotated frame.
    pub fn z_masks(&self) -> Vec<u64> {
        self.terms.iter().map(|(_, s)| s.x | s.z).collect()
    }

    /// Combines per-term parity expectations (ordered like
    /// [`MeasurementGroup::z_masks`]) into this group's energy
    /// contribution.
    ///
    /// # Panics
    ///
    /// Panics if `parities.len() != self.terms.len()`.
    pub fn energy_from_parities(&self, parities: &[f64]) -> f64 {
        assert_eq!(parities.len(), self.terms.len(), "one parity per term");
        self.terms
            .iter()
            .zip(parities)
            .map(|((c, _), p)| c * p)
            .sum()
    }
}

/// Greedy qubit-wise-commuting grouping of a Hamiltonian's non-identity
/// terms. Returns `(identity_offset, groups)`.
///
/// # Examples
///
/// ```
/// use qns_chem::{qwc_groups, Molecule};
/// let h2 = Molecule::h2();
/// let (offset, groups) = qwc_groups(h2.hamiltonian());
/// // H2's 5 non-identity terms fit in 2 QWC groups (Z-type and X/Y-type).
/// assert!(groups.len() <= 3);
/// assert!(offset.abs() > 0.0);
/// ```
pub fn qwc_groups(h: &PauliSum) -> (f64, Vec<MeasurementGroup>) {
    let n = h.num_qubits();
    let mut offset = 0.0;
    let mut groups: Vec<(PauliString, Vec<(f64, PauliString)>)> = Vec::new();
    for &(c, s) in h.terms() {
        if s.is_identity() {
            offset += c;
            continue;
        }
        let mut placed = false;
        for (basis, members) in &mut groups {
            if s.qubit_wise_commutes(basis) {
                // Extend the union basis with s's support.
                basis.x |= s.x;
                basis.z |= s.z;
                members.push((c, s));
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((s, vec![(c, s)]));
        }
    }
    let groups = groups
        .into_iter()
        .map(|(basis, terms)| MeasurementGroup {
            terms,
            basis,
            n_qubits: n,
        })
        .collect();
    (offset, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_sim::{run, ExecMode};

    #[test]
    fn qwc_grouping_is_exhaustive_and_valid() {
        let mut h = PauliSum::new(3);
        h.add(1.0, PauliString::from_label("ZZI").unwrap());
        h.add(0.5, PauliString::from_label("IZZ").unwrap());
        h.add(0.25, PauliString::from_label("XXI").unwrap());
        h.add(0.1, PauliString::from_label("IYY").unwrap());
        h.add(-0.3, PauliString::IDENTITY);
        let (offset, groups) = qwc_groups(&h);
        assert!((offset + 0.3).abs() < 1e-12);
        let total: usize = groups.iter().map(|g| g.terms.len()).sum();
        assert_eq!(total, 4);
        // Every pair within a group is QWC.
        for g in &groups {
            for (_, a) in &g.terms {
                for (_, b) in &g.terms {
                    assert!(a.qubit_wise_commutes(b));
                }
            }
        }
        // Z-type terms share one group.
        assert!(groups[0].terms.len() == 2);
    }

    /// Measuring via rotation + parity must reproduce exact expectations.
    #[test]
    fn rotated_parities_reproduce_expectations() {
        let mut h = PauliSum::new(2);
        h.add(0.7, PauliString::from_label("XX").unwrap());
        h.add(-0.4, PauliString::from_label("YY").unwrap());
        h.add(0.2, PauliString::from_label("ZZ").unwrap());

        // Prepare an entangled test state.
        let mut prep = Circuit::new(2);
        prep.push(GateKind::H, &[0], &[]);
        prep.push(GateKind::CX, &[0, 1], &[]);
        prep.push(GateKind::RY, &[1], &[qns_circuit::Param::Fixed(0.3)]);
        let state = run(&prep, &[], &[], ExecMode::Dynamic);
        let exact = h.expectation(&state);

        let (offset, groups) = qwc_groups(&h);
        let mut total = offset;
        for g in &groups {
            // Append the rotation and compute Z-parities exactly.
            let mut rotated_circ = prep.clone();
            rotated_circ.extend_from(&g.rotation_circuit());
            let rotated = run(&rotated_circ, &[], &[], ExecMode::Dynamic);
            let parities: Vec<f64> = g
                .z_masks()
                .iter()
                .map(|&mask| {
                    let zs = PauliString { x: 0, z: mask };
                    zs.expectation(&rotated)
                })
                .collect();
            total += g.energy_from_parities(&parities);
        }
        assert!((total - exact).abs() < 1e-9, "{total} vs {exact}");
    }

    #[test]
    fn rotation_circuit_shapes() {
        let mut h = PauliSum::new(2);
        h.add(1.0, PauliString::from_label("XY").unwrap());
        let (_, groups) = qwc_groups(&h);
        let rc = groups[0].rotation_circuit();
        // X needs H (1 gate), Y needs Sdg+H (2 gates).
        assert_eq!(rc.num_ops(), 3);
    }
}
