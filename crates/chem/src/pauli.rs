//! Symplectic Pauli-string algebra and Pauli-sum operators.

use qns_sim::StateVec;
use qns_tensor::C64;
use std::collections::HashMap;
use std::fmt;

/// A tensor product of single-qubit Paulis in symplectic form.
///
/// Qubit `q` carries `X^{x_q} Z^{z_q}` up to phase: `(0,0) = I`,
/// `(1,0) = X`, `(0,1) = Z`, `(1,1) = Y` (with `Y = iXZ` accounted for in
/// the algebra). Supports up to 64 qubits.
///
/// # Examples
///
/// ```
/// use qns_chem::PauliString;
/// let zz = PauliString::from_label("ZZ").unwrap();
/// let xx = PauliString::from_label("XX").unwrap();
/// assert!(zz.commutes_with(&xx));
/// let zi = PauliString::from_label("ZI").unwrap();
/// let xi = PauliString::from_label("XI").unwrap();
/// assert!(!zi.commutes_with(&xi));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// X-component bit mask (bit `q` = qubit `q`).
    pub x: u64,
    /// Z-component bit mask.
    pub z: u64,
}

impl PauliString {
    /// The identity string.
    pub const IDENTITY: PauliString = PauliString { x: 0, z: 0 };

    /// Single-qubit X on `q`.
    pub fn x_on(q: usize) -> Self {
        PauliString { x: 1 << q, z: 0 }
    }

    /// Single-qubit Y on `q`.
    pub fn y_on(q: usize) -> Self {
        PauliString {
            x: 1 << q,
            z: 1 << q,
        }
    }

    /// Single-qubit Z on `q`.
    pub fn z_on(q: usize) -> Self {
        PauliString { x: 0, z: 1 << q }
    }

    /// Parses a label like `"XIZY"`; index 0 of the string is qubit 0.
    ///
    /// Returns `None` on characters outside `IXYZ` or length above 64.
    pub fn from_label(label: &str) -> Option<Self> {
        if label.len() > 64 {
            return None;
        }
        let mut x = 0u64;
        let mut z = 0u64;
        for (q, ch) in label.chars().enumerate() {
            match ch {
                'I' => {}
                'X' => x |= 1 << q,
                'Y' => {
                    x |= 1 << q;
                    z |= 1 << q;
                }
                'Z' => z |= 1 << q,
                _ => return None,
            }
        }
        Some(PauliString { x, z })
    }

    /// Renders the label over `n` qubits.
    pub fn label(&self, n: usize) -> String {
        (0..n)
            .map(|q| match ((self.x >> q) & 1, (self.z >> q) & 1) {
                (0, 0) => 'I',
                (1, 0) => 'X',
                (1, 1) => 'Y',
                (0, 1) => 'Z',
                _ => unreachable!(),
            })
            .collect()
    }

    /// Pauli weight: number of non-identity qubits.
    pub fn weight(&self) -> u32 {
        (self.x | self.z).count_ones()
    }

    /// `true` if the string is identity.
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// Do two strings commute (as operators)?
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let anti = (self.x & other.z).count_ones() + (self.z & other.x).count_ones();
        anti.is_multiple_of(2)
    }

    /// Qubit-wise commutation: on every qubit, equal Paulis or one is `I`.
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        let overlap = (self.x | self.z) & (other.x | other.z);
        (self.x & overlap) == (other.x & overlap) && (self.z & overlap) == (other.z & overlap)
    }

    /// Operator product `self * other`, returning `(phase, string)` with
    /// `phase ∈ {1, i, −1, −i}`.
    ///
    /// Convention: each qubit's operator is `i^{x·z} X^x Z^z` so that
    /// `(1,1)` is exactly `Y`.
    pub fn mul(&self, other: &PauliString) -> (C64, PauliString) {
        // Phase bookkeeping in units of i. Using P = i^{xz} X^x Z^z per
        // qubit: P1 P2 = i^{x1 z1 + x2 z2} X^{x1} Z^{z1} X^{x2} Z^{z2}
        //             = i^{x1 z1 + x2 z2} (−1)^{z1 x2} X^{x1+x2} Z^{z1+z2}
        // and the result is i^{x3 z3} X^{x3} Z^{z3} with x3 = x1^x2 etc.
        let x3 = self.x ^ other.x;
        let z3 = self.z ^ other.z;
        let mut ipow: i64 = 0;
        ipow += (self.x & self.z).count_ones() as i64;
        ipow += (other.x & other.z).count_ones() as i64;
        ipow += 2 * (self.z & other.x).count_ones() as i64;
        ipow -= (x3 & z3).count_ones() as i64;
        let phase = match ipow.rem_euclid(4) {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            3 => -C64::I,
            _ => unreachable!(),
        };
        (phase, PauliString { x: x3, z: z3 })
    }

    /// Applies the string to a state: returns `P|ψ>`.
    ///
    /// # Panics
    ///
    /// Panics if the string addresses qubits beyond the state width.
    pub fn apply(&self, state: &StateVec) -> StateVec {
        let n = state.num_qubits();
        assert!(
            (self.x | self.z) >> n == 0,
            "string addresses qubits beyond state"
        );
        let y_count = (self.x & self.z).count_ones();
        let global = match y_count % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        let mut out = state.clone();
        let amps_in: Vec<C64> = state.amplitudes().to_vec();
        let out_amps = out.amplitudes_mut();
        for (b, amp) in amps_in.iter().enumerate() {
            let sign = if ((b as u64) & self.z).count_ones().is_multiple_of(2) {
                C64::ONE
            } else {
                -C64::ONE
            };
            out_amps[b ^ self.x as usize] = global * sign * *amp;
        }
        out
    }

    /// Expectation `<ψ|P|ψ>` (real for Hermitian Pauli strings).
    pub fn expectation(&self, state: &StateVec) -> f64 {
        state.inner(&self.apply(state)).re
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = 64 - (self.x | self.z | 1).leading_zeros() as usize;
        write!(f, "PauliString({})", self.label(n.max(1)))
    }
}

/// A real-coefficient sum of Pauli strings: the qubit Hamiltonian type.
///
/// # Examples
///
/// ```
/// use qns_chem::{PauliString, PauliSum};
/// let mut h = PauliSum::new(2);
/// h.add(0.5, PauliString::from_label("ZI").unwrap());
/// h.add(0.5, PauliString::from_label("ZI").unwrap());
/// h.simplify();
/// assert_eq!(h.terms().len(), 1);
/// assert!((h.terms()[0].0 - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliSum {
    n_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// An empty sum over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        assert!((1..=64).contains(&n_qubits), "1..=64 qubits");
        PauliSum {
            n_qubits,
            terms: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Adds one term.
    ///
    /// # Panics
    ///
    /// Panics if the string addresses qubits beyond the sum's width.
    pub fn add(&mut self, coeff: f64, string: PauliString) {
        assert!(
            (string.x | string.z) >> self.n_qubits == 0,
            "string wider than operator"
        );
        self.terms.push((coeff, string));
    }

    /// Borrow of the term list.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Combines duplicate strings and drops negligible coefficients.
    pub fn simplify(&mut self) {
        let mut map: HashMap<PauliString, f64> = HashMap::new();
        for (c, s) in self.terms.drain(..) {
            *map.entry(s).or_insert(0.0) += c;
        }
        let mut terms: Vec<(f64, PauliString)> = map
            // lint:allow(nondet-iter) — drained into a Vec and sorted by
            // the total key (weight, x, z) two lines down; coefficients
            // were accumulated per-entry, so order cannot leak
            .into_iter()
            .filter(|(_, c)| c.abs() > 1e-12)
            .map(|(s, c)| (c, s))
            .collect();
        terms.sort_by_key(|(_, s)| (s.weight(), s.x, s.z));
        self.terms = terms;
    }

    /// Applies the operator: `H|ψ>`.
    pub fn apply(&self, state: &StateVec) -> StateVec {
        let mut out = state.clone();
        for a in out.amplitudes_mut() {
            *a = C64::ZERO;
        }
        for (c, s) in &self.terms {
            let term = s.apply(state);
            for (o, t) in out.amplitudes_mut().iter_mut().zip(term.amplitudes()) {
                *o += t.scale(*c);
            }
        }
        out
    }

    /// Exact expectation `<ψ|H|ψ>`.
    pub fn expectation(&self, state: &StateVec) -> f64 {
        self.terms
            .iter()
            .map(|(c, s)| c * s.expectation(state))
            .sum()
    }

    /// The identity-term coefficient (energy offset).
    pub fn identity_coeff(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(_, s)| s.is_identity())
            .map(|(c, _)| c)
            .sum()
    }

    /// A crude upper bound on `‖H‖`: the 1-norm of coefficients. Used to
    /// shift the spectrum for power/Lanczos iterations.
    pub fn norm_bound(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.abs()).sum()
    }
}

impl qns_sim::Observable for PauliSum {
    fn apply(&self, state: &StateVec) -> StateVec {
        PauliSum::apply(self, state)
    }

    fn expect(&self, state: &StateVec) -> f64 {
        self.expectation(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_tensor::Mat2;

    #[test]
    fn label_roundtrip() {
        for label in ["IXYZ", "ZZZZ", "IIII", "YXIZ"] {
            let p = PauliString::from_label(label).expect("valid label");
            assert_eq!(p.label(4), label);
        }
        assert!(PauliString::from_label("ABC").is_none());
    }

    #[test]
    fn single_qubit_products_match_pauli_algebra() {
        let x = PauliString::x_on(0);
        let y = PauliString::y_on(0);
        let z = PauliString::z_on(0);
        // XY = iZ
        let (phase, s) = x.mul(&y);
        assert_eq!(s, z);
        assert!(phase.approx_eq(C64::I, 1e-12), "XY phase {phase}");
        // YX = -iZ
        let (phase, s) = y.mul(&x);
        assert_eq!(s, z);
        assert!(phase.approx_eq(-C64::I, 1e-12));
        // ZX = iY
        let (phase, s) = z.mul(&x);
        assert_eq!(s, y);
        assert!(phase.approx_eq(C64::I, 1e-12));
        // XX = I
        let (phase, s) = x.mul(&x);
        assert!(s.is_identity());
        assert!(phase.approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn commutation_rules() {
        let xi = PauliString::from_label("XI").unwrap();
        let zi = PauliString::from_label("ZI").unwrap();
        let xx = PauliString::from_label("XX").unwrap();
        let zz = PauliString::from_label("ZZ").unwrap();
        assert!(!xi.commutes_with(&zi));
        assert!(xx.commutes_with(&zz)); // commute globally...
        assert!(!xx.qubit_wise_commutes(&zz)); // ...but not qubit-wise
        assert!(xx.qubit_wise_commutes(&xi));
    }

    #[test]
    fn apply_matches_matrix_on_one_qubit() {
        let mut state = StateVec::zero_state(1);
        state.apply_1q(&Mat2::hadamard(), 0);
        for (p, m) in [
            (PauliString::x_on(0), Mat2::pauli_x()),
            (PauliString::y_on(0), Mat2::pauli_y()),
            (PauliString::z_on(0), Mat2::pauli_z()),
        ] {
            let via_string = p.apply(&state);
            let mut via_matrix = state.clone();
            via_matrix.apply_1q(&m, 0);
            let f = via_string.inner(&via_matrix);
            assert!(f.approx_eq(C64::ONE, 1e-12), "mismatch: {f}");
        }
    }

    #[test]
    fn expectation_of_zz_on_bell_state() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 0);
        s.apply_2q(&qns_tensor::Mat4::controlled(&Mat2::pauli_x()), 0, 1);
        let zz = PauliString::from_label("ZZ").unwrap();
        let xx = PauliString::from_label("XX").unwrap();
        let yy = PauliString::from_label("YY").unwrap();
        assert!((zz.expectation(&s) - 1.0).abs() < 1e-12);
        assert!((xx.expectation(&s) - 1.0).abs() < 1e-12);
        assert!((yy.expectation(&s) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_sum_simplify_merges_and_drops() {
        let mut h = PauliSum::new(2);
        h.add(1.0, PauliString::from_label("XI").unwrap());
        h.add(-1.0, PauliString::from_label("XI").unwrap());
        h.add(0.5, PauliString::from_label("ZZ").unwrap());
        h.simplify();
        assert_eq!(h.terms().len(), 1);
        assert_eq!(h.terms()[0].1, PauliString::from_label("ZZ").unwrap());
    }

    #[test]
    fn simplify_is_deterministic_across_insertion_orders() {
        // Regression for a QA005 triage: simplify accumulates through a
        // HashMap, so the output must not depend on map iteration order.
        // Feeding the same terms in two different orders must produce
        // bitwise-identical sorted term lists.
        let labels = ["XI", "ZZ", "IY", "XX", "ZI", "IZ", "YY", "XI", "ZZ"];
        let coeffs = [0.25, -0.5, 0.125, 1.0, -0.75, 0.3, 0.0625, 0.25, 0.5];
        let mut fwd = PauliSum::new(2);
        for (l, c) in labels.iter().zip(coeffs) {
            fwd.add(c, PauliString::from_label(l).unwrap());
        }
        let mut rev = PauliSum::new(2);
        for (l, c) in labels.iter().zip(coeffs).rev() {
            rev.add(c, PauliString::from_label(l).unwrap());
        }
        fwd.simplify();
        rev.simplify();
        assert_eq!(fwd.terms().len(), rev.terms().len());
        for ((ca, sa), (cb, sb)) in fwd.terms().iter().zip(rev.terms()) {
            assert_eq!(sa, sb);
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
        // And the order itself follows the documented sort key.
        let keys: Vec<_> = fwd
            .terms()
            .iter()
            .map(|(_, s)| (s.weight(), s.x, s.z))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn sum_expectation_is_linear() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 1);
        let mut h = PauliSum::new(2);
        h.add(0.3, PauliString::from_label("ZI").unwrap());
        h.add(-0.7, PauliString::from_label("IZ").unwrap());
        let direct = h.expectation(&s);
        let via_apply = s.inner(&h.apply(&s)).re;
        assert!((direct - via_apply).abs() < 1e-12);
        // <Z0> = 1, <Z1> = 0.
        assert!((direct - 0.3).abs() < 1e-12);
    }

    #[test]
    fn product_is_associative_in_phase() {
        // (XY)Z vs X(YZ) on one qubit.
        let x = PauliString::x_on(0);
        let y = PauliString::y_on(0);
        let z = PauliString::z_on(0);
        let (p1, s1) = x.mul(&y);
        let (p2, s2) = s1.mul(&z);
        let left = p1 * p2;
        let (q1, t1) = y.mul(&z);
        let (q2, t2) = x.mul(&t1);
        let right = q1 * q2;
        assert_eq!(s2, t2);
        assert!(left.approx_eq(right, 1e-12));
    }
}
