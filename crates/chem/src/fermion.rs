//! Second-quantized fermionic operators.

use std::fmt;

/// One ladder operator: `(mode, dagger)`.
pub type Ladder = (usize, bool);

/// A product of ladder operators with a real coefficient, e.g.
/// `0.5 · a†_2 a_0`.
#[derive(Clone, Debug, PartialEq)]
pub struct FermionOp {
    /// Coefficient.
    pub coeff: f64,
    /// Ladder operators, applied right-to-left (physics convention).
    pub ladders: Vec<Ladder>,
}

impl FermionOp {
    /// `coeff · a†_p a_q` — a one-body (hopping/number) term.
    pub fn one_body(coeff: f64, p: usize, q: usize) -> Self {
        FermionOp {
            coeff,
            ladders: vec![(p, true), (q, false)],
        }
    }

    /// `coeff · a†_p a†_q a_r a_s` — a two-body (interaction) term.
    pub fn two_body(coeff: f64, p: usize, q: usize, r: usize, s: usize) -> Self {
        FermionOp {
            coeff,
            ladders: vec![(p, true), (q, true), (r, false), (s, false)],
        }
    }

    /// The Hermitian conjugate (reversed ladder order, daggers flipped).
    pub fn dagger(&self) -> Self {
        FermionOp {
            coeff: self.coeff,
            ladders: self.ladders.iter().rev().map(|&(m, d)| (m, !d)).collect(),
        }
    }

    /// Largest mode index referenced, plus one.
    pub fn num_modes(&self) -> usize {
        self.ladders.iter().map(|&(m, _)| m + 1).max().unwrap_or(0)
    }
}

impl fmt::Display for FermionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}", self.coeff)?;
        for &(m, d) in &self.ladders {
            write!(f, " a{}{}", if d { "†" } else { "" }, m)?;
        }
        Ok(())
    }
}

/// A sum of fermionic terms: the second-quantized Hamiltonian type.
///
/// # Examples
///
/// ```
/// use qns_chem::{FermionOp, FermionSum};
/// let mut h = FermionSum::new(2);
/// h.push(FermionOp::one_body(1.0, 0, 0)); // number operator n_0
/// assert_eq!(h.terms().len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FermionSum {
    n_modes: usize,
    terms: Vec<FermionOp>,
}

impl FermionSum {
    /// An empty sum over `n_modes` fermionic modes.
    pub fn new(n_modes: usize) -> Self {
        assert!(n_modes >= 1, "need at least one mode");
        FermionSum {
            n_modes,
            terms: Vec::new(),
        }
    }

    /// Number of modes.
    pub fn num_modes(&self) -> usize {
        self.n_modes
    }

    /// Adds a term.
    ///
    /// # Panics
    ///
    /// Panics if the term references a mode out of range.
    pub fn push(&mut self, op: FermionOp) {
        assert!(op.num_modes() <= self.n_modes, "mode out of range");
        self.terms.push(op);
    }

    /// Borrow of the terms.
    pub fn terms(&self) -> &[FermionOp] {
        &self.terms
    }

    /// Adds `op + op†` (a guaranteed-Hermitian pair). Skips the conjugate
    /// when the term is its own dagger (e.g. number operators) to avoid
    /// double counting.
    pub fn push_hermitian(&mut self, op: FermionOp) {
        let dag = op.dagger();
        let self_adjoint = dag == op;
        self.push(op);
        if !self_adjoint {
            self.push(dag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dagger_reverses_and_flips() {
        let op = FermionOp::two_body(0.5, 3, 1, 0, 2);
        let dag = op.dagger();
        assert_eq!(
            dag.ladders,
            vec![(2, true), (0, true), (1, false), (3, false)]
        );
        assert_eq!(dag.coeff, 0.5);
    }

    #[test]
    fn number_operator_is_self_adjoint() {
        let n0 = FermionOp::one_body(1.0, 0, 0);
        assert_eq!(n0.dagger(), n0);
        let mut sum = FermionSum::new(1);
        sum.push_hermitian(n0);
        assert_eq!(sum.terms().len(), 1);
    }

    #[test]
    fn hopping_term_gets_conjugate() {
        let hop = FermionOp::one_body(0.3, 0, 1);
        let mut sum = FermionSum::new(2);
        sum.push_hermitian(hop);
        assert_eq!(sum.terms().len(), 2);
        assert_eq!(sum.terms()[1].ladders, vec![(1, true), (0, false)]);
    }

    #[test]
    #[should_panic(expected = "mode out of range")]
    fn out_of_range_mode_panics() {
        let mut sum = FermionSum::new(2);
        sum.push(FermionOp::one_body(1.0, 0, 5));
    }
}
