//! Property-based tests for the Pauli algebra and fermionic mappings.

use proptest::prelude::*;
use qns_chem::{
    bravyi_kitaev, ground_state_energy, jordan_wigner, qwc_groups, FermionOp, FermionSum,
    PauliString, PauliSum,
};
use qns_sim::StateVec;
use qns_tensor::C64;

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    let lim = 1u64 << n;
    (0..lim, 0..lim).prop_map(|(x, z)| PauliString { x, z })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pauli multiplication is associative including phases.
    #[test]
    fn pauli_mul_is_associative(
        a in arb_string(4),
        b in arb_string(4),
        c in arb_string(4),
    ) {
        let (p1, ab) = a.mul(&b);
        let (p2, ab_c) = ab.mul(&c);
        let left_phase = p1 * p2;
        let (q1, bc) = b.mul(&c);
        let (q2, a_bc) = a.mul(&bc);
        let right_phase = q1 * q2;
        prop_assert_eq!(ab_c, a_bc);
        prop_assert!(left_phase.approx_eq(right_phase, 1e-12));
    }

    /// Every Pauli string squares to the identity with phase +1.
    #[test]
    fn pauli_strings_square_to_identity(p in arb_string(6)) {
        let (phase, sq) = p.mul(&p);
        prop_assert!(sq.is_identity());
        prop_assert!(phase.approx_eq(C64::ONE, 1e-12));
    }

    /// Commutation is symmetric, and the symplectic criterion matches the
    /// operator-level definition on a state.
    #[test]
    fn commutation_is_symmetric(a in arb_string(4), b in arb_string(4)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        // QWC implies commuting.
        if a.qubit_wise_commutes(&b) {
            prop_assert!(a.commutes_with(&b));
        }
    }

    /// Expectation of a Hermitian Pauli string lies in [-1, 1].
    #[test]
    fn expectations_are_bounded(p in arb_string(3), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut amps: Vec<C64> = (0..8)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = a.scale(1.0 / norm);
        }
        let s = StateVec::from_amplitudes(amps);
        let e = p.expectation(&s);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
    }

    /// JW and BK agree on the ground energy of random one-body
    /// Hamiltonians (isospectrality of the encodings).
    #[test]
    fn mappings_are_isospectral(seed in 0u64..20) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 3;
        let mut h = FermionSum::new(n);
        for p in 0..n {
            for q in p..n {
                h.push_hermitian(FermionOp::one_body(rng.gen_range(-1.0..1.0), p, q));
            }
        }
        let jw = jordan_wigner(&h);
        let bk = bravyi_kitaev(&h);
        if jw.terms().is_empty() {
            return Ok(());
        }
        let e_jw = ground_state_energy(&jw, n);
        let e_bk = ground_state_energy(&bk, n);
        prop_assert!((e_jw - e_bk).abs() < 1e-6, "JW {e_jw} vs BK {e_bk}");
    }

    /// QWC grouping partitions all non-identity terms, and every group is
    /// internally qubit-wise commuting.
    #[test]
    fn grouping_is_a_valid_partition(
        strings in prop::collection::vec(arb_string(4), 1..12),
    ) {
        let mut h = PauliSum::new(4);
        for (i, s) in strings.iter().enumerate() {
            h.add(0.1 * (i + 1) as f64, *s);
        }
        h.simplify();
        let non_identity = h.terms().iter().filter(|(_, s)| !s.is_identity()).count();
        let (_, groups) = qwc_groups(&h);
        let total: usize = groups.iter().map(|g| g.terms.len()).sum();
        prop_assert_eq!(total, non_identity);
        for g in &groups {
            for (_, a) in &g.terms {
                for (_, b) in &g.terms {
                    prop_assert!(a.qubit_wise_commutes(b));
                }
            }
        }
    }

    /// Variational bound: any product state's energy is at least the
    /// Lanczos ground energy.
    #[test]
    fn ground_energy_is_a_lower_bound(seed in 0u64..20) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xAB);
        let mut h = PauliSum::new(3);
        for _ in 0..6 {
            let x = rng.gen_range(0..8u64);
            let z = rng.gen_range(0..8u64);
            h.add(rng.gen_range(-1.0..1.0), PauliString { x, z });
        }
        h.simplify();
        if h.terms().is_empty() {
            return Ok(());
        }
        let e0 = ground_state_energy(&h, 3);
        let s = StateVec::zero_state(3);
        prop_assert!(h.expectation(&s) >= e0 - 1e-7);
    }
}
