//! The paper's fast estimator: gate-product success rate.

use crate::Device;
use qns_circuit::Circuit;

/// Overall circuit success rate: `Π_i (1 − err(gate_i))`, the product of
/// per-gate success probabilities, optionally including readout.
///
/// This is the second estimation mode in Section III-C of the paper: cheap
/// enough for circuits too large to simulate noisily, at some accuracy cost.
///
/// `phys_of` maps circuit qubits to physical qubits for calibration lookup.
///
/// # Panics
///
/// Panics if `phys_of` is shorter than the circuit width or maps outside
/// the device.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_noise::{circuit_success_rate, Device};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let r = circuit_success_rate(&c, &Device::santiago(), &[0, 1], false);
/// assert!(r > 0.97 && r < 1.0);
/// ```
pub fn circuit_success_rate(
    circuit: &Circuit,
    device: &Device,
    phys_of: &[usize],
    include_readout: bool,
) -> f64 {
    assert!(
        phys_of.len() >= circuit.num_qubits(),
        "one physical qubit per circuit qubit"
    );
    for &p in &phys_of[..circuit.num_qubits()] {
        assert!(p < device.num_qubits(), "physical qubit out of range");
    }
    let mut rate = 1.0;
    for op in circuit.iter() {
        match op.num_qubits() {
            1 => rate *= 1.0 - device.err_1q(phys_of[op.qubits[0]]),
            2 => rate *= 1.0 - device.err_2q(phys_of[op.qubits[0]], phys_of[op.qubits[1]]),
            _ => unreachable!("gates are 1q or 2q"),
        }
    }
    if include_readout {
        for &p in &phys_of[..circuit.num_qubits()] {
            let c = device.qubit(p);
            rate *= 1.0 - 0.5 * (c.readout_p01 + c.readout_p10);
        }
    }
    rate
}

/// The paper's augmented loss: `l_augmented = l_noise_free / r_overall`.
///
/// Lower is better for both inputs; dividing by the success rate penalizes
/// circuits whose gates are error-prone on the target device.
///
/// # Panics
///
/// Panics if `success_rate` is not in `(0, 1]`.
pub fn augmented_loss(noise_free_loss: f64, success_rate: f64) -> f64 {
    assert!(
        success_rate > 0.0 && success_rate <= 1.0,
        "success rate must be in (0, 1]"
    );
    noise_free_loss / success_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::GateKind;

    fn chain(n_cx: usize) -> Circuit {
        let mut c = Circuit::new(2);
        for _ in 0..n_cx {
            c.push(GateKind::CX, &[0, 1], &[]);
        }
        c
    }

    #[test]
    fn more_gates_lower_rate() {
        let dev = Device::belem();
        let r1 = circuit_success_rate(&chain(1), &dev, &[0, 1], false);
        let r10 = circuit_success_rate(&chain(10), &dev, &[0, 1], false);
        assert!(r10 < r1);
        let expected = r1.powi(10);
        assert!((r10 - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_has_rate_one() {
        let dev = Device::belem();
        let c = Circuit::new(2);
        assert_eq!(circuit_success_rate(&c, &dev, &[0, 1], false), 1.0);
    }

    #[test]
    fn readout_lowers_rate() {
        let dev = Device::yorktown();
        let c = chain(1);
        let without = circuit_success_rate(&c, &dev, &[0, 1], false);
        let with = circuit_success_rate(&c, &dev, &[0, 1], true);
        assert!(with < without);
    }

    #[test]
    fn mapping_to_better_qubits_improves_rate() {
        let dev = Device::santiago();
        // Find the best and worst edge on the line.
        let mut edges: Vec<(usize, usize)> = dev.edges().to_vec();
        edges.sort_by(|a, b| {
            dev.err_2q(a.0, a.1)
                .partial_cmp(&dev.err_2q(b.0, b.1))
                .expect("finite")
        });
        let best = edges[0];
        let worst = *edges.last().expect("non-empty");
        let c = chain(5);
        let r_best = circuit_success_rate(&c, &dev, &[best.0, best.1], false);
        let r_worst = circuit_success_rate(&c, &dev, &[worst.0, worst.1], false);
        assert!(r_best >= r_worst);
    }

    #[test]
    fn augmented_loss_divides() {
        assert!((augmented_loss(0.5, 0.8) - 0.625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "success rate")]
    fn augmented_loss_rejects_zero_rate() {
        let _ = augmented_loss(0.5, 0.0);
    }
}
