//! Exact density-matrix simulation of noisy circuits.
//!
//! The trajectory executor converges to the density-matrix result only in
//! the many-trajectory limit; this module computes that limit exactly —
//! the same thing Qiskit's noisy simulator does for the paper. Memory is
//! `4^n` amplitudes, so it is practical to ~10 qubits; the workspace uses
//! it to validate the trajectory sampler and for small high-precision
//! estimates.

use crate::{Device, KrausChannel};
use qns_circuit::{Circuit, GateMatrix};
use qns_sim::StateVec;
use qns_tensor::{Mat2, Mat4, C64};

/// A density matrix over `n` qubits: `2^n × 2^n` complex entries,
/// row-major, little-endian qubit order (matching [`StateVec`]).
///
/// # Examples
///
/// ```
/// use qns_noise::DensityMatrix;
/// let rho = DensityMatrix::zero_state(2);
/// assert!((rho.trace().re - 1.0).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    rho: Vec<C64>,
}

impl DensityMatrix {
    /// `|0...0><0...0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or above 12 (memory is `4^n`).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!((1..=12).contains(&n_qubits), "1..=12 qubits supported");
        let dim = 1usize << n_qubits;
        let mut rho = vec![C64::ZERO; dim * dim];
        rho[0] = C64::ONE;
        DensityMatrix { n_qubits, dim, rho }
    }

    /// The pure state `|ψ><ψ|`.
    pub fn from_state(state: &StateVec) -> Self {
        let n_qubits = state.num_qubits();
        assert!(n_qubits <= 12, "1..=12 qubits supported");
        let dim = 1usize << n_qubits;
        let amps = state.amplitudes();
        let mut rho = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                rho[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix { n_qubits, dim, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Trace (1 for a valid state).
    pub fn trace(&self) -> C64 {
        (0..self.dim).map(|i| self.rho[i * self.dim + i]).sum()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_ij ρ_ij ρ_ji = Σ_ij |ρ_ij|² for Hermitian ρ.
        self.rho.iter().map(|e| e.norm_sqr()).sum()
    }

    /// Left-multiplies qubit `q` by `m` (each column treated as a ket).
    fn left_1q(&mut self, m: &Mat2, q: usize) {
        let stride = 1usize << q;
        let dim = self.dim;
        let [m00, m01, m10, m11] = m.m;
        for col in 0..dim {
            let mut base = 0;
            while base < dim {
                for i in base..base + stride {
                    let a0 = self.rho[i * dim + col];
                    let a1 = self.rho[(i + stride) * dim + col];
                    self.rho[i * dim + col] = m00 * a0 + m01 * a1;
                    self.rho[(i + stride) * dim + col] = m10 * a0 + m11 * a1;
                }
                base += stride << 1;
            }
        }
    }

    /// Right-multiplies qubit `q` by `m†` (each row treated via `m*`).
    fn right_1q_dagger(&mut self, m: &Mat2, q: usize) {
        let stride = 1usize << q;
        let dim = self.dim;
        let conj = [m.m[0].conj(), m.m[1].conj(), m.m[2].conj(), m.m[3].conj()];
        for row in 0..dim {
            let mut base = 0;
            while base < dim {
                for j in base..base + stride {
                    let a0 = self.rho[row * dim + j];
                    let a1 = self.rho[row * dim + j + stride];
                    self.rho[row * dim + j] = conj[0] * a0 + conj[1] * a1;
                    self.rho[row * dim + j + stride] = conj[2] * a0 + conj[3] * a1;
                }
                base += stride << 1;
            }
        }
    }

    fn left_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let mask = ba | bb;
        let dim = self.dim;
        for col in 0..dim {
            for i in 0..dim {
                if i & mask != 0 {
                    continue;
                }
                let idx = [i, i | bb, i | ba, i | mask];
                let v = [
                    self.rho[idx[0] * dim + col],
                    self.rho[idx[1] * dim + col],
                    self.rho[idx[2] * dim + col],
                    self.rho[idx[3] * dim + col],
                ];
                let out = m.mul_vec(&v);
                for k in 0..4 {
                    self.rho[idx[k] * dim + col] = out[k];
                }
            }
        }
    }

    fn right_2q_dagger(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let mask = ba | bb;
        let dim = self.dim;
        // Conjugate (not transposed): applying m* to rows implements ρ m†.
        let mut conj = *m;
        for e in &mut conj.m {
            *e = e.conj();
        }
        for row in 0..dim {
            for j in 0..dim {
                if j & mask != 0 {
                    continue;
                }
                let idx = [j, j | bb, j | ba, j | mask];
                let v = [
                    self.rho[row * dim + idx[0]],
                    self.rho[row * dim + idx[1]],
                    self.rho[row * dim + idx[2]],
                    self.rho[row * dim + idx[3]],
                ];
                let out = conj.mul_vec(&v);
                for k in 0..4 {
                    self.rho[row * dim + idx[k]] = out[k];
                }
            }
        }
    }

    /// Applies a one-qubit unitary: `ρ → U ρ U†`.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit out of range");
        self.left_1q(m, q);
        self.right_1q_dagger(m, q);
    }

    /// Applies a two-qubit unitary (first qubit = high bit).
    pub fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "distinct qubits required");
        self.left_2q(m, qa, qb);
        self.right_2q_dagger(m, qa, qb);
    }

    /// Applies a one-qubit channel exactly: `ρ → Σ_k K_k ρ K_k†`.
    pub fn apply_channel(&mut self, channel: &KrausChannel, q: usize) {
        assert!(q < self.n_qubits, "qubit out of range");
        let dim = self.dim;
        let mut acc = vec![C64::ZERO; dim * dim];
        for k in channel.operators() {
            let mut term = self.clone();
            term.left_1q(k, q);
            term.right_1q_dagger(k, q);
            for (a, t) in acc.iter_mut().zip(term.rho.iter()) {
                *a += *t;
            }
        }
        self.rho = acc;
    }

    /// `<Z_q>` for every qubit (diagonal sums).
    pub fn expect_z_all(&self) -> Vec<f64> {
        let mut e = vec![0.0; self.n_qubits];
        for i in 0..self.dim {
            let p = self.rho[i * self.dim + i].re;
            for (q, eq) in e.iter_mut().enumerate() {
                if i & (1 << q) == 0 {
                    *eq += p;
                } else {
                    *eq -= p;
                }
            }
        }
        e
    }

    /// Diagonal probabilities (the measurement distribution).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.rho[i * self.dim + i].re.max(0.0))
            .collect()
    }

    /// Fidelity with a pure state: `<ψ|ρ|ψ>`.
    pub fn fidelity_with(&self, state: &StateVec) -> f64 {
        assert_eq!(state.num_qubits(), self.n_qubits, "width mismatch");
        let amps = state.amplitudes();
        let mut acc = C64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += amps[i].conj() * self.rho[i * self.dim + j] * amps[j];
            }
        }
        acc.re
    }
}

/// Exact noisy execution of a circuit on a device model: the
/// density-matrix counterpart of [`crate::TrajectoryExecutor`], using
/// identical channel placement (per-gate depolarizing + thermal
/// relaxation, operand-wise on two-qubit gates) and the same readout
/// adjustment.
///
/// # Panics
///
/// Panics if widths/mappings are inconsistent or the circuit exceeds 12
/// qubits.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_noise::{density_expect_z, Device};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let e = density_expect_z(&c, &[], &[], &Device::yorktown(), &[0, 1], true);
/// assert!(e.iter().all(|x| x.abs() < 0.2)); // Bell state: <Z> ~ 0
/// ```
pub fn density_expect_z(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    device: &Device,
    phys_of: &[usize],
    readout: bool,
) -> Vec<f64> {
    let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
    apply_noisy_ops(&mut rho, circuit, train, input, device, phys_of);
    let mut e = rho.expect_z_all();
    if readout {
        for (q, eq) in e.iter_mut().enumerate() {
            let c = device.qubit(phys_of[q]);
            *eq = (1.0 - c.readout_p01 - c.readout_p10) * *eq + (c.readout_p10 - c.readout_p01);
        }
    }
    e
}

/// Exact noisy expectations of `⊗_{q∈mask} Z_q` parities — the
/// density-matrix counterpart of
/// [`crate::TrajectoryExecutor::expect_z_masks`], with the same
/// multiplicative readout correction.
///
/// # Panics
///
/// Panics on inconsistent widths or masks beyond the circuit.
pub fn density_expect_masks(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    device: &Device,
    phys_of: &[usize],
    masks: &[u64],
    readout: bool,
) -> Vec<f64> {
    let n = circuit.num_qubits();
    for &m in masks {
        assert!(m >> n == 0, "mask addresses qubits beyond circuit width");
    }
    // Evolve once, then read all masks off the diagonal.
    let mut rho = DensityMatrix::zero_state(n);
    apply_noisy_ops(&mut rho, circuit, train, input, device, phys_of);
    let probs = rho.probabilities();
    masks
        .iter()
        .map(|&mask| {
            let mut e: f64 = probs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    if ((i as u64) & mask).count_ones().is_multiple_of(2) {
                        *p
                    } else {
                        -p
                    }
                })
                .sum();
            if readout {
                for (q, &phys) in phys_of.iter().enumerate() {
                    if mask & (1 << q) != 0 {
                        let c = device.qubit(phys);
                        e *= 1.0 - c.readout_p01 - c.readout_p10;
                    }
                }
            }
            e
        })
        .collect()
}

/// Shared noisy-evolution body for the density executors.
fn apply_noisy_ops(
    rho: &mut DensityMatrix,
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    device: &Device,
    phys_of: &[usize],
) {
    assert_eq!(
        phys_of.len(),
        circuit.num_qubits(),
        "one physical qubit per circuit qubit"
    );
    for op in circuit.iter() {
        let params = op.resolve_params(train, input);
        match op.kind.matrix(&params) {
            GateMatrix::One(m) => {
                let q = op.qubits[0];
                rho.apply_1q(&m, q);
                let calib = device.qubit(phys_of[q]);
                rho.apply_channel(&KrausChannel::depolarizing(calib.err_1q.min(1.0)), q);
                rho.apply_channel(
                    &KrausChannel::thermal_relaxation(calib.t1_ns, calib.t2_ns, device.dur_1q_ns()),
                    q,
                );
            }
            GateMatrix::Two(m) => {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                rho.apply_2q(&m, a, b);
                let e2 = device.err_2q(phys_of[a], phys_of[b]);
                for &q in &[a, b] {
                    rho.apply_channel(&KrausChannel::depolarizing(e2.min(1.0)), q);
                    let calib = device.qubit(phys_of[q]);
                    rho.apply_channel(
                        &KrausChannel::thermal_relaxation(
                            calib.t1_ns,
                            calib.t2_ns,
                            device.dur_2q_ns(),
                        ),
                        q,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrajectoryConfig, TrajectoryExecutor};
    use qns_circuit::{GateKind, Param};
    use qns_sim::{run, ExecMode};

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RY, &[2], &[Param::Fixed(0.7)]);
        c.push(
            GateKind::CU3,
            &[1, 2],
            &[Param::Fixed(0.3), Param::Fixed(0.4), Param::Fixed(0.5)],
        );
        let psi = run(&c, &[], &[], ExecMode::Dynamic);

        let mut rho = DensityMatrix::zero_state(3);
        for op in c.iter() {
            let params = op.resolve_params(&[], &[]);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => rho.apply_1q(&m, op.qubits[0]),
                GateMatrix::Two(m) => rho.apply_2q(&m, op.qubits[0], op.qubits[1]),
            }
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!((rho.fidelity_with(&psi) - 1.0).abs() < 1e-10);
        for (a, b) in rho.expect_z_all().iter().zip(psi.expect_z_all()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn depolarizing_channel_mixes_exactly() {
        // Full depolarizing (p = 1) sends any 1-qubit state to I/2.
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(&KrausChannel::depolarizing(1.0), 0);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
        assert!(rho.expect_z_all()[0].abs() < 1e-10);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn partial_depolarizing_scales_bloch_vector() {
        // <Z> of |0> under depolarizing(p) is exactly 1 - p.
        for p in [0.1, 0.35, 0.8] {
            let mut rho = DensityMatrix::zero_state(1);
            rho.apply_channel(&KrausChannel::depolarizing(p), 0);
            assert!((rho.expect_z_all()[0] - (1.0 - p)).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn channels_preserve_trace_and_hermiticity() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(&qns_tensor::Mat2::hadamard(), 0);
        rho.apply_2q(
            &qns_tensor::Mat4::controlled(&qns_tensor::Mat2::pauli_x()),
            0,
            1,
        );
        rho.apply_channel(
            &KrausChannel::thermal_relaxation(50_000.0, 60_000.0, 400.0),
            0,
        );
        rho.apply_channel(&KrausChannel::bit_flip(0.2), 1);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
        assert!(rho.trace().im.abs() < 1e-12);
        // Hermiticity: rho[i][j] == conj(rho[j][i]).
        let dim = 1 << 2;
        for i in 0..dim {
            for j in 0..dim {
                let a = rho.rho[i * dim + j];
                let b = rho.rho[j * dim + i].conj();
                assert!(a.approx_eq(b, 1e-10));
            }
        }
        // Noise strictly reduces purity below 1.
        assert!(rho.purity() < 1.0);
    }

    /// The decisive cross-validation: trajectory averages converge to the
    /// exact density-matrix expectations under the same noise placement.
    #[test]
    fn trajectory_executor_converges_to_density_result() {
        let mut c = Circuit::new(2);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RY, &[0], &[Param::Fixed(0.9)]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RX, &[1], &[Param::Fixed(0.4)]);
        // Loud device so the noise effect dominates statistical error.
        let device = Device::yorktown().scaled_errors(5.0);
        let exact = density_expect_z(&c, &[], &[], &device, &[0, 1], false);
        let exec = TrajectoryExecutor::new(
            device,
            TrajectoryConfig {
                trajectories: 4000,
                seed: 11,
                readout: false,
            },
        );
        let sampled = exec.expect_z(&c, &[], &[], &[0, 1]);
        for (q, (a, b)) in exact.iter().zip(sampled.expect_z.iter()).enumerate() {
            assert!(
                (a - b).abs() < 0.03,
                "qubit {q}: density {a} vs trajectory {b}"
            );
        }
    }

    #[test]
    fn readout_adjustment_matches_trajectory_convention() {
        let mut c = Circuit::new(1);
        c.push(GateKind::I, &[0], &[]);
        let device = Device::yorktown();
        let with = density_expect_z(&c, &[], &[], &device, &[0], true);
        let without = density_expect_z(&c, &[], &[], &device, &[0], false);
        let cal = device.qubit(0);
        let expected = (1.0 - cal.readout_p01 - cal.readout_p10) * without[0]
            + (cal.readout_p10 - cal.readout_p01);
        assert!((with[0] - expected).abs() < 1e-12);
    }
}
