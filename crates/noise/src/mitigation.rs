//! Readout-error mitigation by confusion-matrix inversion.
//!
//! Standard deployment practice on IBMQ (and the usual companion to the
//! calibration data the paper's noise models are built from): measure the
//! per-qubit readout confusion matrix, then unfold measured expectation
//! values / count distributions through its inverse. Under the
//! tensor-product (uncorrelated) readout model our devices use, the
//! per-qubit inverse is exact.

use crate::Device;

/// Inverts per-qubit readout confusion matrices.
///
/// For qubit `q` with `p01 = P(read 1 | prepared 0)` and
/// `p10 = P(read 0 | prepared 1)`, the measured expectation relates to the
/// true one by `E' = (1 − p01 − p10) E + (p10 − p01)`; the mitigator
/// applies the inverse affine map.
///
/// # Examples
///
/// ```
/// use qns_noise::{Device, ReadoutMitigator};
/// let dev = Device::yorktown();
/// let m = ReadoutMitigator::from_device(&dev, &[0, 1]);
/// // A perfectly-read |0> has E = 1; corrupt then mitigate round-trips.
/// let corrupted = m.corrupt(&[1.0, 1.0]);
/// let recovered = m.mitigate(&corrupted);
/// assert!((recovered[0] - 1.0).abs() < 1e-10);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ReadoutMitigator {
    /// Per measured qubit: `(scale, offset)` of the forward corruption.
    forward: Vec<(f64, f64)>,
}

impl ReadoutMitigator {
    /// Builds a mitigator from the calibration of the given physical
    /// qubits.
    ///
    /// # Panics
    ///
    /// Panics if a physical qubit is out of range, or if a qubit's
    /// combined readout error reaches 100% (the confusion matrix is then
    /// singular).
    pub fn from_device(device: &Device, phys: &[usize]) -> Self {
        let forward = phys
            .iter()
            .map(|&p| {
                let c = device.qubit(p);
                let scale = 1.0 - c.readout_p01 - c.readout_p10;
                assert!(
                    scale.abs() > 1e-9,
                    "qubit {p}: confusion matrix is singular"
                );
                (scale, c.readout_p10 - c.readout_p01)
            })
            .collect();
        ReadoutMitigator { forward }
    }

    /// Number of mitigated qubits.
    pub fn num_qubits(&self) -> usize {
        self.forward.len()
    }

    /// Applies the forward corruption (what the hardware does) — used for
    /// testing and for simulating un-mitigated results.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches.
    pub fn corrupt(&self, true_e: &[f64]) -> Vec<f64> {
        assert_eq!(true_e.len(), self.forward.len(), "one value per qubit");
        true_e
            .iter()
            .zip(&self.forward)
            .map(|(e, (s, o))| s * e + o)
            .collect()
    }

    /// Recovers the true expectations from measured ones.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches.
    pub fn mitigate(&self, measured_e: &[f64]) -> Vec<f64> {
        assert_eq!(measured_e.len(), self.forward.len(), "one value per qubit");
        measured_e
            .iter()
            .zip(&self.forward)
            .map(|(e, (s, o))| (e - o) / s)
            .collect()
    }

    /// Mitigates a full measured count distribution by per-qubit
    /// unfolding, returning quasi-probabilities (may dip slightly below
    /// zero; renormalized to sum 1).
    ///
    /// # Panics
    ///
    /// Panics if `counts` addresses basis states beyond the qubit count.
    pub fn mitigate_counts(&self, counts: &[(usize, u32)], shots: usize) -> Vec<f64> {
        let n = self.forward.len();
        let dim = 1usize << n;
        let mut p = vec![0.0; dim];
        for &(idx, c) in counts {
            assert!(idx < dim, "basis state out of range");
            p[idx] = c as f64 / shots as f64;
        }
        // Apply the inverse single-qubit confusion matrix per qubit.
        for (q, &(scale, offset)) in self.forward.iter().enumerate() {
            // Forward per qubit: [1-p01, p10; p01, 1-p10]; reconstruct it
            // from (scale, offset): p01 = (1 - scale - offset)/2? Using
            // E-space: E = 1-2p1, E' = s E + o, so
            // p1' = (1 - s + 2 s p1 - o)/2 → p1' = s p1 + (1 - s - o)/2.
            let a = scale;
            let b = (1.0 - scale - offset) / 2.0;
            // p1 = (p1' - b)/a, applied along axis q.
            let bit = 1usize << q;
            for base in 0..dim {
                if base & bit != 0 {
                    continue;
                }
                let p0 = p[base];
                let p1 = p[base | bit];
                let pair = p0 + p1;
                if pair <= 0.0 {
                    continue;
                }
                let frac1 = p1 / pair;
                let true_frac1 = ((frac1 - b) / a).clamp(-0.5, 1.5);
                p[base | bit] = pair * true_frac1;
                p[base] = pair * (1.0 - true_frac1);
            }
        }
        let total: f64 = p.iter().sum();
        if total.abs() > 1e-12 {
            for x in &mut p {
                *x /= total;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrajectoryConfig, TrajectoryExecutor};
    use qns_circuit::{Circuit, GateKind};

    #[test]
    fn mitigate_inverts_corrupt() {
        let dev = Device::lima();
        let m = ReadoutMitigator::from_device(&dev, &[0, 1, 2]);
        let truth = vec![0.8, -0.4, 0.1];
        let recovered = m.mitigate(&m.corrupt(&truth));
        for (a, b) in truth.iter().zip(recovered) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mitigation_improves_measured_expectations() {
        // Identity circuit: true <Z> = 1; readout drags it down; the
        // mitigator should push it back toward 1.
        let mut c = Circuit::new(1);
        c.push(GateKind::I, &[0], &[]);
        let dev = Device::yorktown().scaled_errors(1e-9);
        // A high-readout device: corrupt with yorktown's raw readout.
        let loud = Device::yorktown();
        let exec = TrajectoryExecutor::new(
            loud.clone(),
            TrajectoryConfig {
                trajectories: 8,
                seed: 1,
                readout: true,
            },
        );
        let measured = exec.expect_z(&c, &[], &[], &[0]).expect_z;
        let m = ReadoutMitigator::from_device(&loud, &[0]);
        let mitigated = m.mitigate(&measured);
        let ideal_exec = TrajectoryExecutor::new(
            dev,
            TrajectoryConfig {
                trajectories: 8,
                seed: 1,
                readout: false,
            },
        );
        let ideal = ideal_exec.expect_z(&c, &[], &[], &[0]).expect_z;
        assert!(
            (mitigated[0] - ideal[0]).abs() < (measured[0] - ideal[0]).abs(),
            "mitigation did not improve: measured {} mitigated {} ideal {}",
            measured[0],
            mitigated[0],
            ideal[0]
        );
    }

    #[test]
    fn count_mitigation_restores_distribution() {
        // Prepare |1>: ideal distribution is all weight on index 1.
        let dev = Device::yorktown();
        let m = ReadoutMitigator::from_device(&dev, &[0]);
        // Simulate corrupted counts directly from the confusion model.
        let c = dev.qubit(0);
        let shots = 100_000usize;
        let read1 = ((1.0 - c.readout_p10) * shots as f64) as u32;
        let read0 = shots as u32 - read1;
        let counts = vec![(0usize, read0), (1usize, read1)];
        let quasi = m.mitigate_counts(&counts, shots);
        assert!(quasi[1] > 0.99, "mitigated p(|1>) = {}", quasi[1]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_confusion_panics() {
        // Construct a device then scale readout errors up to 50% each so
        // p01 + p10 = 1 exactly is unreachable; emulate via a crafted
        // device: use scaled_errors to saturate at the 0.5 clamp.
        let dev = Device::yorktown().scaled_errors(1e6);
        let _ = ReadoutMitigator::from_device(&dev, &[0]);
    }
}
