//! Slowly drifting calibrations, for the search-on-real-hardware experiment.

use crate::Device;

/// A device whose error rates drift smoothly over time.
///
/// The paper observes (Table VI) that searching with real-hardware feedback
/// over ~3 days performs slightly worse than searching against a frozen
/// noise model, because calibration drifts during the long search. This
/// wrapper reproduces that effect: error rates are scaled by a smooth,
/// deterministic quasi-periodic factor of the query time.
///
/// # Examples
///
/// ```
/// use qns_noise::{Device, DriftingDevice};
/// let drift = DriftingDevice::new(Device::belem(), 0.3);
/// let d0 = drift.at(0.0);
/// let d1 = drift.at(0.5);
/// assert_ne!(d0.err_1q(0), d1.err_1q(0));
/// ```
#[derive(Clone, Debug)]
pub struct DriftingDevice {
    base: Device,
    amplitude: f64,
}

impl DriftingDevice {
    /// Wraps `base` with drift of the given relative `amplitude` (0.3 ≈
    /// ±30% excursions, typical of day-scale IBMQ calibration changes).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative.
    pub fn new(base: Device, amplitude: f64) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        DriftingDevice { base, amplitude }
    }

    /// The undrifted device.
    pub fn base(&self) -> &Device {
        &self.base
    }

    /// Snapshot of the device at time `t` (arbitrary units; one unit is
    /// roughly one calibration period).
    pub fn at(&self, t: f64) -> Device {
        let phase = 2.0 * std::f64::consts::PI * t;
        let wobble = (phase).sin() + 0.5 * (phase * 2.7 + 1.3).sin();
        let factor = (self.amplitude * wobble).exp();
        self.base.scaled_errors(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amplitude_is_static() {
        let drift = DriftingDevice::new(Device::quito(), 0.0);
        let a = drift.at(0.0);
        let b = drift.at(0.7);
        assert_eq!(a.err_1q(0), b.err_1q(0));
        assert_eq!(a.err_2q(0, 1), b.err_2q(0, 1));
    }

    #[test]
    fn drift_is_deterministic() {
        let d1 = DriftingDevice::new(Device::quito(), 0.3);
        let d2 = DriftingDevice::new(Device::quito(), 0.3);
        assert_eq!(d1.at(0.42).err_1q(1), d2.at(0.42).err_1q(1));
    }

    #[test]
    fn drift_stays_bounded() {
        let drift = DriftingDevice::new(Device::quito(), 0.3);
        let base = drift.base().err_1q(0);
        for i in 0..50 {
            let t = i as f64 * 0.1;
            let e = drift.at(t).err_1q(0);
            assert!(e > base * 0.5 * 0.5 && e < base * 2.0 * 2.0, "t={t} e={e}");
        }
    }

    #[test]
    fn drift_moves_errors_both_directions() {
        let drift = DriftingDevice::new(Device::quito(), 0.3);
        let base = drift.base().err_1q(0);
        let samples: Vec<f64> = (0..20)
            .map(|i| drift.at(i as f64 * 0.05).err_1q(0))
            .collect();
        assert!(samples.iter().any(|&e| e > base));
        assert!(samples.iter().any(|&e| e < base));
    }
}
