//! Kraus error channels with stochastic trajectory unraveling.

use qns_sim::{MpsState, StateBatch, StateVec};
use qns_tensor::{Mat2, C64};
use rand::Rng;

/// A one-qubit error channel in Kraus form, `ρ → Σ_i K_i ρ K_i†`.
///
/// Trajectory unraveling: given a pure state, Kraus operator `K_i` is
/// selected with probability `||K_i |ψ>||²` and the state renormalized.
/// Averaging expectations over many trajectories converges to the
/// density-matrix result.
///
/// Two-qubit depolarizing noise is applied as independent Pauli errors on
/// the two operand qubits (the standard Pauli-twirled approximation), so
/// every channel here is 2×2.
///
/// # Examples
///
/// ```
/// use qns_noise::KrausChannel;
/// let ch = KrausChannel::depolarizing(0.01);
/// assert!(ch.is_trace_preserving(1e-10));
/// ```
#[derive(Clone, Debug)]
pub struct KrausChannel {
    ops: Vec<Mat2>,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<Mat2>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        KrausChannel { ops }
    }

    /// Depolarizing channel: with probability `p` replace the qubit state
    /// with the maximally mixed state (uniform X/Y/Z error).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let k0 = Mat2::identity().scale(C64::real((1.0 - 0.75 * p).sqrt()));
        let s = C64::real((p / 4.0).sqrt());
        KrausChannel::new(vec![
            k0,
            Mat2::pauli_x().scale(s),
            Mat2::pauli_y().scale(s),
            Mat2::pauli_z().scale(s),
        ])
    }

    /// Thermal relaxation over duration `t_ns` for a qubit with relaxation
    /// time `t1_ns` and dephasing time `t2_ns`: amplitude damping with
    /// `γ = 1 − e^{−t/T1}` composed with pure dephasing from the residual
    /// `1/Tφ = 1/T2 − 1/(2 T1)`.
    ///
    /// # Panics
    ///
    /// Panics if `t2_ns > 2 * t1_ns` (unphysical) or any time is
    /// non-positive.
    pub fn thermal_relaxation(t1_ns: f64, t2_ns: f64, t_ns: f64) -> Self {
        assert!(
            t1_ns > 0.0 && t2_ns > 0.0 && t_ns >= 0.0,
            "times must be positive"
        );
        assert!(t2_ns <= 2.0 * t1_ns + 1e-9, "T2 must be <= 2*T1");
        let gamma = 1.0 - (-t_ns / t1_ns).exp();
        // Residual pure dephasing rate.
        let inv_tphi = (1.0 / t2_ns - 0.5 / t1_ns).max(0.0);
        let lambda = 1.0 - (-t_ns * inv_tphi).exp();
        let pz = lambda / 2.0;

        // Amplitude damping Kraus pair.
        let a0 = Mat2::new([
            C64::ONE,
            C64::ZERO,
            C64::ZERO,
            C64::real((1.0 - gamma).sqrt()),
        ]);
        let a1 = Mat2::new([C64::ZERO, C64::real(gamma.sqrt()), C64::ZERO, C64::ZERO]);
        // Compose with phase flip {√(1-pz) I, √pz Z}.
        let zi = Mat2::identity().scale(C64::real((1.0 - pz).sqrt()));
        let zz = Mat2::pauli_z().scale(C64::real(pz.sqrt()));
        let mut ops = Vec::with_capacity(4);
        for z in [&zi, &zz] {
            for a in [&a0, &a1] {
                ops.push(z.mul_mat(a));
            }
        }
        KrausChannel::new(ops)
    }

    /// Bit-flip channel: X error with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        KrausChannel::new(vec![
            Mat2::identity().scale(C64::real((1.0 - p).sqrt())),
            Mat2::pauli_x().scale(C64::real(p.sqrt())),
        ])
    }

    /// Phase-flip channel: Z error with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        KrausChannel::new(vec![
            Mat2::identity().scale(C64::real((1.0 - p).sqrt())),
            Mat2::pauli_z().scale(C64::real(p.sqrt())),
        ])
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[Mat2] {
        &self.ops
    }

    /// Checks the completeness relation `Σ K_i† K_i = I`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let mut acc = Mat2::zero();
        for k in &self.ops {
            acc = acc.add(&k.adjoint().mul_mat(k));
        }
        acc.approx_eq(&Mat2::identity(), tol)
    }

    /// Applies one stochastic trajectory step to qubit `q` of `state`:
    /// samples a Kraus operator with its Born probability and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range for `state`.
    pub fn apply_trajectory<R: Rng + ?Sized>(&self, state: &mut StateVec, q: usize, rng: &mut R) {
        // Fast path: a single Kraus operator is deterministic.
        if self.ops.len() == 1 {
            state.apply_1q(&self.ops[0], q);
            state.normalize();
            return;
        }
        let u: f64 = rng.gen();
        let mut cdf = 0.0;
        for (i, k) in self.ops.iter().enumerate() {
            // p_i = || K_i ψ ||²; compute without cloning the full state
            // by accumulating the local norm after applying K_i per pair.
            let p = kraus_prob(state, k, q);
            cdf += p;
            if u <= cdf || i == self.ops.len() - 1 {
                state.apply_1q(k, q);
                state.normalize();
                return;
            }
        }
    }

    /// [`KrausChannel::apply_trajectory`] on a matrix-product state: the
    /// same protocol — one RNG draw, lazy Born-probability CDF walk, apply
    /// the selected operator, renormalize — so a trajectory's draw sequence
    /// is identical to the dense path. Born probabilities come from the
    /// one-site reduced density matrix (`Tr(K†K ρ_q)`); they differ from
    /// the dense values only by truncation error, so draw *outcomes* (and
    /// hence exact bitwise agreement with the dense backends) coincide in
    /// the exact regime.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range for `mps`.
    pub fn apply_trajectory_mps<R: Rng + ?Sized>(&self, mps: &mut MpsState, q: usize, rng: &mut R) {
        if self.ops.len() == 1 {
            let p = mps.kraus_prob(&self.ops[0], q);
            mps.apply_kraus_1q(&self.ops[0], q, p);
            return;
        }
        let u: f64 = rng.gen();
        let mut cdf = 0.0;
        for (i, k) in self.ops.iter().enumerate() {
            let p = mps.kraus_prob(k, q);
            cdf += p;
            if u <= cdf || i == self.ops.len() - 1 {
                mps.apply_kraus_1q(k, q, p);
                return;
            }
        }
    }

    /// [`KrausChannel::apply_trajectory`] for one lane of a [`StateBatch`]:
    /// the RNG draw, Born-probability CDF walk, Kraus selection, and
    /// renormalization are bit-identical to the single-state path, so a
    /// trajectory run in a batch lane reproduces the standalone trajectory
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `lane` is out of range for `batch`.
    pub fn apply_trajectory_lane<R: Rng + ?Sized>(
        &self,
        batch: &mut StateBatch,
        lane: usize,
        q: usize,
        rng: &mut R,
    ) {
        if self.ops.len() == 1 {
            batch.lane_apply_1q(lane, &self.ops[0], q);
            batch.lane_normalize(lane);
            return;
        }
        let u: f64 = rng.gen();
        let mut cdf = 0.0;
        for (i, k) in self.ops.iter().enumerate() {
            let p = kraus_prob_lane(batch, lane, k, q);
            cdf += p;
            if u <= cdf || i == self.ops.len() - 1 {
                batch.lane_apply_1q(lane, k, q);
                batch.lane_normalize(lane);
                return;
            }
        }
    }

    /// One stochastic trajectory step on **every** lane of a batch at
    /// once, drawing from `rngs[lane]`. Per lane this is bit-identical to
    /// [`KrausChannel::apply_trajectory_lane`]: each lane makes the same
    /// draw from its own RNG, walks the same Born CDF, and applies the
    /// same operator and renormalization — but the Born probability of the
    /// leading (no-error) operator, the Kraus application, and the
    /// renormalization each run as one lanes-contiguous sweep instead of a
    /// strided pass per lane. Lanes whose draw falls past the leading
    /// operator (rare at hardware error rates) finish their CDF walk on
    /// the per-lane path.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len() != batch.lanes()` or `q` is out of range.
    pub fn apply_trajectory_all_lanes<R: Rng>(
        &self,
        batch: &mut StateBatch,
        q: usize,
        rngs: &mut [R],
    ) {
        let lanes = batch.lanes();
        assert_eq!(rngs.len(), lanes, "one RNG per lane");
        if self.ops.len() == 1 {
            batch.apply_1q(&self.ops[0], q);
            batch.normalize_lanes();
            return;
        }
        let us: Vec<f64> = rngs.iter_mut().map(|rng| rng.gen()).collect();
        let p0 = kraus_probs_all_lanes(batch, &self.ops[0], q);
        let chosen: Vec<Mat2> = us
            .iter()
            .zip(&p0)
            .enumerate()
            .map(|(lane, (&u, &p))| {
                if u <= p {
                    return self.ops[0];
                }
                let mut cdf = p;
                for (i, k) in self.ops.iter().enumerate().skip(1) {
                    if i == self.ops.len() - 1 {
                        break;
                    }
                    cdf += kraus_prob_lane(batch, lane, k, q);
                    if u <= cdf {
                        return self.ops[i];
                    }
                }
                self.ops[self.ops.len() - 1]
            })
            .collect();
        batch.apply_1q_per_lane(&chosen, q);
        batch.normalize_lanes();
    }
}

/// [`kraus_prob_lane`] for every lane in one lanes-contiguous sweep: the
/// per-lane accumulation order (ascending base loop, row 0 before row 1)
/// is identical, so `kraus_probs_all_lanes(..)[lane]` is bit-identical to
/// `kraus_prob_lane(.., lane, ..)`.
fn kraus_probs_all_lanes(batch: &StateBatch, k: &Mat2, q: usize) -> Vec<f64> {
    let l = batch.lanes();
    let stride = 1usize << q;
    let len = 1usize << batch.num_qubits();
    let (re, im) = (batch.re(), batch.im());
    let [m00, m01, m10, m11] = k.m;
    let mut acc = vec![0.0; l];
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let (r0, i0) = (&re[i * l..(i + 1) * l], &im[i * l..(i + 1) * l]);
            let j = i + stride;
            let (r1, i1) = (&re[j * l..(j + 1) * l], &im[j * l..(j + 1) * l]);
            for (lane, a) in acc.iter_mut().enumerate() {
                let a0 = C64::new(r0[lane], i0[lane]);
                let a1 = C64::new(r1[lane], i1[lane]);
                *a += (m00 * a0 + m01 * a1).norm_sqr();
                *a += (m10 * a0 + m11 * a1).norm_sqr();
            }
        }
        base += stride << 1;
    }
    acc
}

/// [`kraus_prob`] for one lane of a batch: the same base-loop accumulation
/// order over that lane's amplitudes.
fn kraus_prob_lane(batch: &StateBatch, lane: usize, k: &Mat2, q: usize) -> f64 {
    let l = batch.lanes();
    let stride = 1usize << q;
    let len = 1usize << batch.num_qubits();
    let [m00, m01, m10, m11] = k.m;
    let mut acc = 0.0;
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let a0 = batch.amp(i * l + lane);
            let a1 = batch.amp((i + stride) * l + lane);
            acc += (m00 * a0 + m01 * a1).norm_sqr();
            acc += (m10 * a0 + m11 * a1).norm_sqr();
        }
        base += stride << 1;
    }
    acc
}

/// `|| K |ψ> ||²` for a one-qubit operator on qubit `q`.
fn kraus_prob(state: &StateVec, k: &Mat2, q: usize) -> f64 {
    let stride = 1usize << q;
    let amps = state.amplitudes();
    let [m00, m01, m10, m11] = k.m;
    let mut acc = 0.0;
    let len = amps.len();
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let a0 = amps[i];
            let a1 = amps[i + stride];
            acc += (m00 * a0 + m01 * a1).norm_sqr();
            acc += (m10 * a0 + m11 * a1).norm_sqr();
        }
        base += stride << 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_channels_are_trace_preserving() {
        for ch in [
            KrausChannel::depolarizing(0.1),
            KrausChannel::bit_flip(0.3),
            KrausChannel::phase_flip(0.05),
            KrausChannel::thermal_relaxation(50_000.0, 70_000.0, 300.0),
        ] {
            assert!(ch.is_trace_preserving(1e-10));
        }
    }

    #[test]
    fn zero_probability_channels_are_identity() {
        let ch = KrausChannel::depolarizing(0.0);
        let mut s = StateVec::zero_state(1);
        s.apply_1q(&Mat2::hadamard(), 0);
        let before = s.clone();
        let mut rng = StdRng::seed_from_u64(1);
        ch.apply_trajectory(&mut s, 0, &mut rng);
        assert!((s.inner(&before).abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_damps_expectation_on_average() {
        // <Z> of |0> under depolarizing(p) decays to (1-p) in expectation.
        let p = 0.4;
        let ch = KrausChannel::depolarizing(p);
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let mut s = StateVec::zero_state(1);
            ch.apply_trajectory(&mut s, 0, &mut rng);
            sum += s.expect_z(0);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - (1.0 - p)).abs() < 0.02,
            "mean {mean} vs expected {}",
            1.0 - p
        );
    }

    #[test]
    fn bit_flip_flips_with_given_rate() {
        let p = 0.25;
        let ch = KrausChannel::bit_flip(p);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mut flipped = 0;
        for _ in 0..n {
            let mut s = StateVec::zero_state(1);
            ch.apply_trajectory(&mut s, 0, &mut rng);
            if s.probability(1) > 0.5 {
                flipped += 1;
            }
        }
        let rate = flipped as f64 / n as f64;
        assert!((rate - p).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn thermal_relaxation_decays_excited_state() {
        // After t = T1, P(|1>) should be ~ e^{-1}.
        let t1 = 1000.0;
        let ch = KrausChannel::thermal_relaxation(t1, 1.2 * t1, t1);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut p1_sum = 0.0;
        for _ in 0..n {
            let mut s = StateVec::zero_state(1);
            s.apply_1q(&Mat2::pauli_x(), 0);
            ch.apply_trajectory(&mut s, 0, &mut rng);
            p1_sum += s.probability(1);
        }
        let p1 = p1_sum / n as f64;
        assert!((p1 - (-1.0f64).exp()).abs() < 0.02, "p1 {p1}");
    }

    #[test]
    #[should_panic(expected = "T2 must be <= 2*T1")]
    fn unphysical_t2_panics() {
        let _ = KrausChannel::thermal_relaxation(100.0, 300.0, 10.0);
    }

    #[test]
    fn lane_trajectory_is_bit_identical_to_single_state() {
        // Same seed stream: applying a channel to a batch lane must make
        // exactly the same draws and produce exactly the same amplitudes as
        // the standalone single-state trajectory.
        for ch in [
            KrausChannel::depolarizing(0.3),
            KrausChannel::thermal_relaxation(50_000.0, 70_000.0, 300.0),
            KrausChannel::new(vec![Mat2::pauli_x()]), // single-op fast path
        ] {
            let mut batch = StateBatch::zero_state(2, 3);
            batch.apply_1q(&Mat2::hadamard(), 0);
            let mut single = batch.lane_state(1);
            let mut rng_b = StdRng::seed_from_u64(42);
            let mut rng_s = StdRng::seed_from_u64(42);
            for _ in 0..20 {
                ch.apply_trajectory_lane(&mut batch, 1, 0, &mut rng_b);
                ch.apply_trajectory(&mut single, 0, &mut rng_s);
            }
            assert_eq!(batch.lane_state(1).amplitudes(), single.amplitudes());
        }
    }

    #[test]
    fn all_lanes_trajectory_is_bit_identical_to_per_lane() {
        // The lanes-contiguous batched channel step must make the same
        // draws and produce the same amplitudes as applying the channel
        // lane by lane — and therefore as the single-state path.
        for ch in [
            KrausChannel::depolarizing(0.3),
            KrausChannel::thermal_relaxation(50_000.0, 70_000.0, 300.0),
            KrausChannel::new(vec![Mat2::pauli_x()]), // single-op fast path
        ] {
            let lanes = 5;
            let mut fast = StateBatch::zero_state(3, lanes);
            fast.apply_1q(&Mat2::hadamard(), 0);
            fast.apply_1q(&Mat2::hadamard(), 2);
            let mut slow = fast.clone();
            let mut rngs_f: Vec<StdRng> = (0..lanes)
                .map(|l| StdRng::seed_from_u64(90 + l as u64))
                .collect();
            let mut rngs_s = rngs_f.clone();
            for step in 0..30 {
                let q = step % 3;
                ch.apply_trajectory_all_lanes(&mut fast, q, &mut rngs_f);
                for (lane, rng) in rngs_s.iter_mut().enumerate() {
                    ch.apply_trajectory_lane(&mut slow, lane, q, rng);
                }
            }
            for lane in 0..lanes {
                assert_eq!(
                    fast.lane_state(lane).amplitudes(),
                    slow.lane_state(lane).amplitudes(),
                    "lane {lane} diverged"
                );
            }
        }
    }

    #[test]
    fn trajectory_preserves_norm() {
        let ch = KrausChannel::depolarizing(0.5);
        let mut rng = StdRng::seed_from_u64(77);
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 0);
        for _ in 0..50 {
            ch.apply_trajectory(&mut s, 0, &mut rng);
            ch.apply_trajectory(&mut s, 1, &mut rng);
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
