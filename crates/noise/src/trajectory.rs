//! Monte-Carlo trajectory execution of circuits under device noise.
//!
//! Trajectories for one candidate are independent, so they fan out over the
//! qns-runtime work-stealing engine when the executor is given more than one
//! worker. Per-trajectory RNG seeds are derived deterministically from a
//! structural digest of the candidate (circuit + resolved parameters +
//! layout + base seed), so results are a pure function of the candidate and
//! bit-identical for any worker count: the engine returns per-trajectory
//! results in input order and the fold over them is sequential.

use crate::{Device, KrausChannel};
use qns_circuit::{Circuit, GateMatrix};
use qns_runtime::{EvalEngine, StructuralHasher, Workers};
use qns_sim::{MpsConfig, MpsState, SimBackend, StateBatch, StateVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trajectories per [`StateBatch`] on the fast path. A **fixed** constant
/// (never derived from the worker count): the chunk layout determines which
/// trajectories share a batched sweep, so it must be identical for any
/// `Workers` policy to keep results bitwise-stable. Single-sourced from the
/// simulator's micro-kernel tile width so one trajectory chunk is a whole
/// number of planar tiles; 16 lanes bound the batch buffer (16 × 2ⁿ
/// amplitudes) while amortizing gate dispatch.
const LANE_CHUNK: usize = qns_sim::LANE_CHUNK;

/// Configuration for the trajectory executor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of stochastic trajectories to average. The paper's noisy
    /// simulations use density matrices; ~30 trajectories give the same
    /// ranking signal at a fraction of the cost.
    pub trajectories: usize,
    /// RNG seed; each trajectory derives its own stream.
    pub seed: u64,
    /// Whether readout (SPAM) error is applied to the results.
    pub readout: bool,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            trajectories: 32,
            seed: 0,
            readout: true,
        }
    }
}

/// Result of a noisy expectation run.
#[derive(Clone, Debug, PartialEq)]
pub struct NoisyResult {
    /// Readout-adjusted `<Z_q>` per circuit qubit.
    pub expect_z: Vec<f64>,
}

/// Executes circuits under a device noise model by averaging stochastic
/// Kraus trajectories.
///
/// The noise model matches the paper's description of IBMQ calibration
/// models: **depolarizing** error per gate (two-qubit gates approximated as
/// independent depolarizing on both operands — the Pauli-twirl
/// approximation), **thermal relaxation** from per-qubit T1/T2 over each
/// gate's duration, and **readout error** as a per-qubit confusion matrix.
///
/// Circuits are expressed over a dense set of "circuit qubits"; `phys_of`
/// maps circuit qubit `i` to the physical qubit whose calibration applies.
/// This is what the transpiler produces, and it keeps the state vector
/// small even on 65-qubit devices.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_noise::{Device, TrajectoryConfig, TrajectoryExecutor};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let dev = Device::yorktown();
/// let exec = TrajectoryExecutor::new(dev, TrajectoryConfig::default());
/// let noisy = exec.expect_z(&c, &[], &[], &[2, 3]);
/// // Noise shrinks |<Z>| toward 0 but cannot exceed 1.
/// assert!(noisy.expect_z.iter().all(|e| e.abs() <= 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct TrajectoryExecutor {
    device: Device,
    config: TrajectoryConfig,
    workers: Workers,
    backend: SimBackend,
}

impl TrajectoryExecutor {
    /// Creates an executor for a device. Trajectories run sequentially and
    /// on the fast kernels by default; see [`TrajectoryExecutor::with_workers`]
    /// and [`TrajectoryExecutor::with_backend`].
    pub fn new(device: Device, config: TrajectoryConfig) -> Self {
        assert!(config.trajectories > 0, "need at least one trajectory");
        TrajectoryExecutor {
            device,
            config,
            workers: Workers::Fixed(1),
            backend: SimBackend::Fast,
        }
    }

    /// Sets the worker policy for fanning trajectories over the runtime
    /// engine. Results are bit-identical for any worker count.
    pub fn with_workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the simulation backend for the unitary part of each trajectory.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The wrapped device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration.
    pub fn config(&self) -> &TrajectoryConfig {
        &self.config
    }

    /// Structural digest of one candidate evaluation: circuit shape,
    /// resolved parameters, layout, and the base seed. Seeds every
    /// trajectory, so equal candidates share noise streams and different
    /// candidates (or parameter sets) decorrelate.
    fn candidate_digest(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
    ) -> u64 {
        let mut h = StructuralHasher::new();
        h.write_u64(self.config.seed);
        h.write_usize(circuit.num_qubits());
        for op in circuit.iter() {
            h.write_str(op.kind.name());
            h.write_usize(op.qubits[0]);
            h.write_usize(op.qubits[1]);
            for p in op.resolve_params(train, input) {
                h.write_f64(p);
            }
        }
        for &p in phys_of {
            h.write_usize(p);
        }
        let key = h.finish();
        key.lo ^ key.hi
    }

    /// Seeds for each trajectory index: a splitmix64 finalizer over the
    /// candidate digest and the index.
    fn trajectory_seeds(&self, digest: u64) -> Vec<u64> {
        (0..self.config.trajectories as u64)
            .map(|t| {
                let mut z = digest ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// Runs one noisy trajectory of `circuit` and returns the final state.
    fn run_one(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        rng: &mut StdRng,
    ) -> StateVec {
        let mut state = StateVec::zero_state(circuit.num_qubits());
        for op in circuit.iter() {
            let params = op.resolve_params(train, input);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => {
                    let q = op.qubits[0];
                    match self.backend {
                        SimBackend::Reference => state.apply_1q_reference(&m, q),
                        _ => state.apply_1q(&m, q),
                    }
                    self.apply_gate_noise(&mut state, q, phys_of, false, rng);
                }
                GateMatrix::Two(m) => {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    match self.backend {
                        SimBackend::Reference => state.apply_2q_reference(&m, a, b),
                        _ => state.apply_2q(&m, a, b),
                    }
                    let e2 = self.device.err_2q(phys_of[a], phys_of[b]);
                    for &q in &[a, b] {
                        let ch = KrausChannel::depolarizing(e2.min(1.0));
                        ch.apply_trajectory(&mut state, q, rng);
                        self.apply_gate_noise(&mut state, q, phys_of, true, rng);
                    }
                }
            }
        }
        state
    }

    /// [`TrajectoryExecutor::run_one`] on a matrix-product state: the same
    /// gate/noise application order and the same per-channel RNG protocol
    /// ([`KrausChannel::apply_trajectory_mps`]), densified to a state
    /// vector at the end so result extraction is backend-agnostic. In the
    /// exact regime (generous `max_bond`) every Born probability matches
    /// the dense path to simulator tolerance, so the draw outcomes — and
    /// the trajectory average — agree with the `Reference` oracle.
    fn run_one_mps(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        config: MpsConfig,
        rng: &mut StdRng,
    ) -> StateVec {
        let mut mps = MpsState::zero_state(circuit.num_qubits(), config);
        for op in circuit.iter() {
            let params = op.resolve_params(train, input);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => {
                    let q = op.qubits[0];
                    mps.apply_1q(&m, q);
                    self.apply_gate_noise_mps(&mut mps, q, phys_of, false, rng);
                }
                GateMatrix::Two(m) => {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    mps.apply_2q(&m, a, b);
                    let e2 = self.device.err_2q(phys_of[a], phys_of[b]);
                    for &q in &[a, b] {
                        let ch = KrausChannel::depolarizing(e2.min(1.0));
                        ch.apply_trajectory_mps(&mut mps, q, rng);
                        self.apply_gate_noise_mps(&mut mps, q, phys_of, true, rng);
                    }
                }
            }
        }
        mps.to_statevec()
    }

    /// [`TrajectoryExecutor::apply_gate_noise`] on a matrix-product state:
    /// identical channel construction and application order.
    fn apply_gate_noise_mps(
        &self,
        mps: &mut MpsState,
        q: usize,
        phys_of: &[usize],
        two_qubit: bool,
        rng: &mut StdRng,
    ) {
        let phys = phys_of[q];
        let calib = self.device.qubit(phys);
        if !two_qubit {
            let ch = KrausChannel::depolarizing(calib.err_1q.min(1.0));
            ch.apply_trajectory_mps(mps, q, rng);
        }
        let dur = if two_qubit {
            self.device.dur_2q_ns()
        } else {
            self.device.dur_1q_ns()
        };
        let relax = KrausChannel::thermal_relaxation(calib.t1_ns, calib.t2_ns, dur);
        relax.apply_trajectory_mps(mps, q, rng);
    }

    /// Runs one chunk of trajectories as lanes of a [`StateBatch`]: the
    /// shared unitary gates sweep every lane at once, and each stochastic
    /// Kraus channel is applied to all lanes in one lanes-contiguous pass
    /// ([`KrausChannel::apply_trajectory_all_lanes`]) drawing from each
    /// lane's own RNG stream.
    ///
    /// Lane `l` is bit-identical to [`TrajectoryExecutor::run_one`] with
    /// `rngs[l]`: per lane the gate/noise application order, every Born
    /// probability, and every RNG draw are the same (lanes hold
    /// independent RNGs, so batching a channel across lanes never reorders
    /// any single lane's draws), and channel construction (hoisted out of
    /// the lane loop) is deterministic.
    fn run_chunk(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        rngs: &mut [StdRng],
    ) -> StateBatch {
        let mut batch = StateBatch::zero_state(circuit.num_qubits(), rngs.len());
        for op in circuit.iter() {
            let params = op.resolve_params(train, input);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => {
                    let q = op.qubits[0];
                    batch.apply_1q(&m, q);
                    let calib = self.device.qubit(phys_of[q]);
                    let depol = KrausChannel::depolarizing(calib.err_1q.min(1.0));
                    let relax = KrausChannel::thermal_relaxation(
                        calib.t1_ns,
                        calib.t2_ns,
                        self.device.dur_1q_ns(),
                    );
                    depol.apply_trajectory_all_lanes(&mut batch, q, rngs);
                    relax.apply_trajectory_all_lanes(&mut batch, q, rngs);
                }
                GateMatrix::Two(m) => {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    batch.apply_2q(&m, a, b);
                    let e2 = self.device.err_2q(phys_of[a], phys_of[b]);
                    let depol = KrausChannel::depolarizing(e2.min(1.0));
                    let relax: Vec<KrausChannel> = [a, b]
                        .iter()
                        .map(|&q| {
                            let calib = self.device.qubit(phys_of[q]);
                            KrausChannel::thermal_relaxation(
                                calib.t1_ns,
                                calib.t2_ns,
                                self.device.dur_2q_ns(),
                            )
                        })
                        .collect();
                    for (qi, &q) in [a, b].iter().enumerate() {
                        depol.apply_trajectory_all_lanes(&mut batch, q, rngs);
                        relax[qi].apply_trajectory_all_lanes(&mut batch, q, rngs);
                    }
                }
            }
        }
        batch
    }

    /// Runs every seeded trajectory and extracts one result per trajectory,
    /// in seed order.
    ///
    /// Fast backend: trajectories run as lanes of [`StateBatch`] chunks of
    /// [`LANE_CHUNK`]; the chunks (not individual trajectories) fan out over
    /// the runtime engine. Reference backend: the original per-trajectory
    /// oracle path. `extract` receives the trajectory index, its final
    /// state, and its RNG (positioned exactly after the circuit's noise
    /// draws, for shot sampling).
    #[allow(clippy::too_many_arguments)]
    fn run_trajectories<U: Send + Clone + Sync>(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        seeds: &[u64],
        extract: impl Fn(usize, &StateVec, &mut StdRng) -> U + Sync,
        default: U,
    ) -> Vec<U> {
        let engine = EvalEngine::new(self.workers);
        match self.backend {
            SimBackend::Reference => {
                let items: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
                engine.run(
                    &items,
                    |&(idx, s)| {
                        let mut rng = StdRng::seed_from_u64(s);
                        let state = self.run_one(circuit, train, input, phys_of, &mut rng);
                        extract(idx, &state, &mut rng)
                    },
                    default,
                )
            }
            SimBackend::Mps(config) => {
                let items: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
                engine.run(
                    &items,
                    |&(idx, s)| {
                        let mut rng = StdRng::seed_from_u64(s);
                        let state =
                            self.run_one_mps(circuit, train, input, phys_of, config, &mut rng);
                        extract(idx, &state, &mut rng)
                    },
                    default,
                )
            }
            SimBackend::Fast => {
                let chunks: Vec<(usize, &[u64])> = seeds
                    .chunks(LANE_CHUNK)
                    .enumerate()
                    .map(|(ci, c)| (ci * LANE_CHUNK, c))
                    .collect();
                let per_chunk = engine.run(
                    &chunks,
                    |&(start, chunk_seeds)| {
                        let mut rngs: Vec<StdRng> = chunk_seeds
                            .iter()
                            .map(|&s| StdRng::seed_from_u64(s))
                            .collect();
                        let batch = self.run_chunk(circuit, train, input, phys_of, &mut rngs);
                        (0..chunk_seeds.len())
                            .map(|lane| {
                                let state = batch.lane_state(lane);
                                extract(start + lane, &state, &mut rngs[lane])
                            })
                            .collect::<Vec<U>>()
                    },
                    Vec::new(),
                );
                // Flatten in chunk order; a panicked chunk comes back as the
                // empty on-panic default and is backfilled per trajectory.
                let mut out = Vec::with_capacity(seeds.len());
                for (res, (_, chunk_seeds)) in per_chunk.into_iter().zip(&chunks) {
                    if res.len() == chunk_seeds.len() {
                        out.extend(res);
                    } else {
                        out.extend((0..chunk_seeds.len()).map(|_| default.clone()));
                    }
                }
                out
            }
        }
    }

    /// Thermal relaxation (always) plus depolarizing for 1-qubit gates.
    fn apply_gate_noise(
        &self,
        state: &mut StateVec,
        q: usize,
        phys_of: &[usize],
        two_qubit: bool,
        rng: &mut StdRng,
    ) {
        let phys = phys_of[q];
        let calib = self.device.qubit(phys);
        if !two_qubit {
            let ch = KrausChannel::depolarizing(calib.err_1q.min(1.0));
            ch.apply_trajectory(state, q, rng);
        }
        let dur = if two_qubit {
            self.device.dur_2q_ns()
        } else {
            self.device.dur_1q_ns()
        };
        let relax = KrausChannel::thermal_relaxation(calib.t1_ns, calib.t2_ns, dur);
        relax.apply_trajectory(state, q, rng);
    }

    /// Noisy `<Z_q>` per circuit qubit, averaged over trajectories and
    /// adjusted for readout error via the affine map
    /// `E' = (1 − p01 − p10) E + (p10 − p01)`.
    ///
    /// # Panics
    ///
    /// Panics if `phys_of.len() != circuit.num_qubits()` or maps outside
    /// the device.
    pub fn expect_z(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
    ) -> NoisyResult {
        self.validate(circuit, phys_of);
        let n = circuit.num_qubits();
        let digest = self.candidate_digest(circuit, train, input, phys_of);
        let seeds = self.trajectory_seeds(digest);
        // Per-trajectory results come back in input order; the fold below is
        // sequential, so the average is bit-identical for any worker count.
        let per_traj = self.run_trajectories(
            circuit,
            train,
            input,
            phys_of,
            &seeds,
            |_, state, _| state.expect_z_all(),
            vec![f64::NAN; n],
        );
        let mut acc = vec![0.0; n];
        for v in &per_traj {
            for (a, e) in acc.iter_mut().zip(v) {
                *a += e;
            }
        }
        let mut expect_z: Vec<f64> = acc
            .into_iter()
            .map(|a| a / self.config.trajectories as f64)
            .collect();
        if self.config.readout {
            for (q, e) in expect_z.iter_mut().enumerate() {
                let c = self.device.qubit(phys_of[q]);
                *e = (1.0 - c.readout_p01 - c.readout_p10) * *e + (c.readout_p10 - c.readout_p01);
            }
        }
        NoisyResult { expect_z }
    }

    /// Noisy expectation of `⊗_{q ∈ mask} Z_q` for each bit mask over
    /// circuit qubits, averaged over trajectories.
    ///
    /// Readout error is applied multiplicatively per involved qubit
    /// (`Π_q (1 − p01 − p10)`), the symmetric-confusion approximation;
    /// additive asymmetry terms are second-order for multi-qubit strings.
    ///
    /// # Panics
    ///
    /// Panics if a mask addresses qubits beyond the circuit width.
    pub fn expect_z_masks(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        masks: &[u64],
    ) -> Vec<f64> {
        self.validate(circuit, phys_of);
        let n = circuit.num_qubits();
        for &m in masks {
            assert!(m >> n == 0, "mask addresses qubits beyond circuit width");
        }
        let digest = self.candidate_digest(circuit, train, input, phys_of);
        let seeds = self.trajectory_seeds(digest);
        let per_traj = self.run_trajectories(
            circuit,
            train,
            input,
            phys_of,
            &seeds,
            |_, state, _| {
                masks
                    .iter()
                    .map(|&mask| expect_parity(state, mask))
                    .collect::<Vec<f64>>()
            },
            vec![f64::NAN; masks.len()],
        );
        let mut acc = vec![0.0; masks.len()];
        for v in &per_traj {
            for (a, e) in acc.iter_mut().zip(v) {
                *a += e;
            }
        }
        let mut out: Vec<f64> = acc
            .into_iter()
            .map(|a| a / self.config.trajectories as f64)
            .collect();
        if self.config.readout {
            for (e, &mask) in out.iter_mut().zip(masks) {
                let mut factor = 1.0;
                for (q, &phys) in phys_of.iter().enumerate() {
                    if mask & (1 << q) != 0 {
                        let c = self.device.qubit(phys);
                        factor *= 1.0 - c.readout_p01 - c.readout_p10;
                    }
                }
                *e *= factor;
            }
        }
        out
    }

    /// Samples `shots` noisy measurement outcomes, including readout bit
    /// flips, split evenly across trajectories. Returns `(index, count)`
    /// pairs sorted by index.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        phys_of: &[usize],
        shots: usize,
    ) -> Vec<(usize, u32)> {
        self.validate(circuit, phys_of);
        let per_traj = shots.div_ceil(self.config.trajectories);
        let digest = self.candidate_digest(circuit, train, input, phys_of);
        let mut seeds = self.trajectory_seeds(digest);
        // Shot allotment per trajectory; trajectories with nothing to draw
        // are dropped entirely, exactly as before batching.
        let mut takes: Vec<usize> = Vec::with_capacity(seeds.len());
        let mut remaining = shots;
        for _ in &seeds {
            if remaining == 0 {
                break;
            }
            let take = per_traj.min(remaining);
            remaining -= take;
            takes.push(take);
        }
        seeds.truncate(takes.len());
        // Each trajectory returns its readout-flipped shot outcomes,
        // sampled from the RNG stream it used for its circuit noise;
        // merging happens sequentially in input order below.
        let per_shot = self.run_trajectories(
            circuit,
            train,
            input,
            phys_of,
            &seeds,
            |traj, state, rng| {
                let take = takes[traj];
                let mut outcomes: Vec<usize> = Vec::with_capacity(take);
                for (idx, c) in state.sample_counts(take, rng) {
                    for _ in 0..c {
                        let mut read = idx;
                        if self.config.readout {
                            for (q, &phys) in phys_of.iter().enumerate() {
                                let cal = self.device.qubit(phys);
                                let bit = read & (1 << q) != 0;
                                let flip_p = if bit {
                                    cal.readout_p10
                                } else {
                                    cal.readout_p01
                                };
                                if rng.gen::<f64>() < flip_p {
                                    read ^= 1 << q;
                                }
                            }
                        }
                        outcomes.push(read);
                    }
                }
                outcomes
            },
            Vec::new(),
        );
        let mut counts: std::collections::BTreeMap<usize, u32> = std::collections::BTreeMap::new();
        for outcomes in per_shot {
            for read in outcomes {
                *counts.entry(read).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    fn validate(&self, circuit: &Circuit, phys_of: &[usize]) {
        assert_eq!(
            phys_of.len(),
            circuit.num_qubits(),
            "one physical qubit per circuit qubit"
        );
        for &p in phys_of {
            assert!(p < self.device.num_qubits(), "physical qubit out of range");
        }
    }
}

/// `<ψ| ⊗_{q ∈ mask} Z_q |ψ>`: parity-weighted probability sum.
fn expect_parity(state: &StateVec, mask: u64) -> f64 {
    let mut e = 0.0;
    for (i, a) in state.amplitudes().iter().enumerate() {
        let p = a.norm_sqr();
        if p == 0.0 {
            continue;
        }
        if ((i as u64) & mask).count_ones().is_multiple_of(2) {
            e += p;
        } else {
            e -= p;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::GateKind;
    use qns_sim::{run, ExecMode};

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c
    }

    #[test]
    fn noiseless_limit_matches_ideal() {
        // Scale errors to ~0 and disable readout: must match the ideal sim.
        let dev = Device::santiago().scaled_errors(1e-9);
        let exec = TrajectoryExecutor::new(
            dev,
            TrajectoryConfig {
                trajectories: 4,
                seed: 3,
                readout: false,
            },
        );
        let c = bell();
        let noisy = exec.expect_z(&c, &[], &[], &[0, 1]);
        let ideal = run(&c, &[], &[], ExecMode::Dynamic);
        for q in 0..2 {
            assert!(
                (noisy.expect_z[q] - ideal.expect_z(q)).abs() < 0.02,
                "qubit {q}"
            );
        }
    }

    #[test]
    fn noise_shrinks_z_magnitude() {
        // |0> has <Z> = 1 ideally; under noise it must be strictly less.
        let mut c = Circuit::new(1);
        c.push(GateKind::X, &[0], &[]);
        c.push(GateKind::X, &[0], &[]);
        for _ in 0..10 {
            c.push(GateKind::X, &[0], &[]);
            c.push(GateKind::X, &[0], &[]);
        }
        let exec = TrajectoryExecutor::new(Device::yorktown(), TrajectoryConfig::default());
        let noisy = exec.expect_z(&c, &[], &[], &[0]);
        assert!(noisy.expect_z[0] < 0.999);
        assert!(
            noisy.expect_z[0] > 0.5,
            "noise should not destroy the state"
        );
    }

    #[test]
    fn noisier_device_gives_lower_fidelity() {
        let mut c = Circuit::new(2);
        for _ in 0..6 {
            c.push(GateKind::CX, &[0, 1], &[]);
            c.push(GateKind::CX, &[0, 1], &[]);
        }
        let cfg = TrajectoryConfig {
            trajectories: 64,
            seed: 11,
            readout: false,
        };
        let quiet =
            TrajectoryExecutor::new(Device::santiago(), cfg).expect_z(&c, &[], &[], &[0, 1]);
        let loud = TrajectoryExecutor::new(Device::santiago().scaled_errors(10.0), cfg).expect_z(
            &c,
            &[],
            &[],
            &[0, 1],
        );
        // Identity circuit: ideal <Z> = 1 on both qubits.
        assert!(quiet.expect_z[0] > loud.expect_z[0]);
    }

    #[test]
    fn readout_error_biases_expectations() {
        let c = {
            let mut c = Circuit::new(1);
            c.push(GateKind::I, &[0], &[]);
            c
        };
        let dev = Device::yorktown().scaled_errors(1e-9);
        // Rebuild a device with large readout error by scaling: scaled_errors
        // scales readout too, so construct a loud-readout device directly.
        let loud = Device::synthetic("loudread", 5, crate::Topology::Plus, 3e-3, 8, 1);
        let with = TrajectoryExecutor::new(
            loud,
            TrajectoryConfig {
                trajectories: 4,
                seed: 0,
                readout: true,
            },
        )
        .expect_z(&c, &[], &[], &[0]);
        let without = TrajectoryExecutor::new(
            dev,
            TrajectoryConfig {
                trajectories: 4,
                seed: 0,
                readout: false,
            },
        )
        .expect_z(&c, &[], &[], &[0]);
        assert!(with.expect_z[0] < without.expect_z[0]);
    }

    #[test]
    fn masked_parity_on_bell_state() {
        // Bell state: <Z0 Z1> = 1 ideally, individual <Z> = 0.
        let c = bell();
        let dev = Device::santiago().scaled_errors(1e-9);
        let exec = TrajectoryExecutor::new(
            dev,
            TrajectoryConfig {
                trajectories: 4,
                seed: 2,
                readout: false,
            },
        );
        let out = exec.expect_z_masks(&c, &[], &[], &[0, 1], &[0b11, 0b01]);
        assert!((out[0] - 1.0).abs() < 0.02, "ZZ parity {}", out[0]);
        assert!(out[1].abs() < 0.1, "single Z {}", out[1]);
    }

    #[test]
    fn sampled_counts_total_shots() {
        let exec = TrajectoryExecutor::new(Device::belem(), TrajectoryConfig::default());
        let counts = exec.sample_counts(&bell(), &[], &[], &[0, 1], 512);
        let total: u32 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 512);
        // Bell state: dominated by |00> and |11>.
        let dominant: u32 = counts
            .iter()
            .filter(|(i, _)| *i == 0 || *i == 3)
            .map(|(_, c)| c)
            .sum();
        assert!(dominant > 400, "dominant {dominant}");
    }

    #[test]
    #[should_panic(expected = "physical qubit out of range")]
    fn invalid_mapping_panics() {
        let exec = TrajectoryExecutor::new(Device::belem(), TrajectoryConfig::default());
        let _ = exec.expect_z(&bell(), &[], &[], &[0, 99]);
    }

    #[test]
    fn parallel_trajectories_bit_identical_to_sequential() {
        let cfg = TrajectoryConfig {
            trajectories: 16,
            seed: 5,
            readout: true,
        };
        let c = bell();
        let seq = TrajectoryExecutor::new(Device::belem(), cfg).expect_z(&c, &[], &[], &[0, 1]);
        let par = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_workers(Workers::Fixed(4))
            .expect_z(&c, &[], &[], &[0, 1]);
        assert_eq!(seq.expect_z, par.expect_z, "worker count changed results");
        let seq_counts =
            TrajectoryExecutor::new(Device::belem(), cfg).sample_counts(&c, &[], &[], &[0, 1], 300);
        let par_counts = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_workers(Workers::Auto)
            .sample_counts(&c, &[], &[], &[0, 1], 300);
        assert_eq!(seq_counts, par_counts);
    }

    #[test]
    fn batched_chunk_lanes_are_bit_identical_to_run_one() {
        // Each lane of a batched trajectory chunk must reproduce the
        // standalone per-trajectory run exactly (amplitudes and RNG
        // position), for circuits mixing 1q and 2q gates.
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RX, &[2], &[qns_circuit::Param::Train(0)]);
        c.push(GateKind::CZ, &[1, 2], &[]);
        let exec = TrajectoryExecutor::new(Device::belem(), TrajectoryConfig::default());
        let seeds = [3u64, 99, 1234, 77, 5];
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let batch = exec.run_chunk(&c, &[0.7], &[], &[0, 1, 2], &mut rngs);
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let single = exec.run_one(&c, &[0.7], &[], &[0, 1, 2], &mut rng);
            assert_eq!(
                batch.lane_state(lane).amplitudes(),
                single.amplitudes(),
                "lane {lane}"
            );
            // RNG streams must be at the same position afterwards.
            assert_eq!(rngs[lane].gen::<u64>(), rng.gen::<u64>(), "lane {lane} rng");
        }
    }

    #[test]
    fn fast_batched_results_match_reference_oracle() {
        // The batched fast path must agree with the per-trajectory
        // reference oracle to simulator tolerance (both average the same
        // seeded trajectories; kernels differ).
        let cfg = TrajectoryConfig {
            trajectories: 24,
            seed: 8,
            readout: true,
        };
        let c = bell();
        let fast = TrajectoryExecutor::new(Device::belem(), cfg).expect_z(&c, &[], &[], &[0, 1]);
        let oracle = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_backend(SimBackend::Reference)
            .expect_z(&c, &[], &[], &[0, 1]);
        for (q, (f, r)) in fast.expect_z.iter().zip(&oracle.expect_z).enumerate() {
            assert!((f - r).abs() < 1e-10, "qubit {q}: {f} vs {r}");
        }
    }

    #[test]
    fn mps_trajectories_match_reference_oracle() {
        // Exact-regime MPS trajectories draw the same Kraus outcomes as
        // the dense reference path (Born probabilities agree to simulator
        // tolerance), so the averages must coincide.
        let cfg = TrajectoryConfig {
            trajectories: 16,
            seed: 8,
            readout: true,
        };
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RX, &[2], &[qns_circuit::Param::Train(0)]);
        c.push(GateKind::CZ, &[0, 2], &[]);
        let mps = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_backend(SimBackend::Mps(qns_sim::MpsConfig::exact()))
            .expect_z(&c, &[0.7], &[], &[0, 1, 2]);
        let oracle = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_backend(SimBackend::Reference)
            .expect_z(&c, &[0.7], &[], &[0, 1, 2]);
        for (q, (f, r)) in mps.expect_z.iter().zip(&oracle.expect_z).enumerate() {
            assert!((f - r).abs() < 1e-10, "qubit {q}: {f} vs {r}");
        }
        // And the fan-out over workers is bit-identical to sequential.
        let par = TrajectoryExecutor::new(Device::belem(), cfg)
            .with_backend(SimBackend::Mps(qns_sim::MpsConfig::exact()))
            .with_workers(Workers::Fixed(4))
            .expect_z(&c, &[0.7], &[], &[0, 1, 2]);
        assert_eq!(mps.expect_z, par.expect_z, "worker count changed results");
    }

    #[test]
    fn seeds_are_a_function_of_the_candidate() {
        // Different parameter values must decorrelate the noise streams:
        // digest-derived seeds differ, so the trajectories differ.
        let cfg = TrajectoryConfig {
            trajectories: 2,
            seed: 9,
            readout: false,
        };
        let exec = TrajectoryExecutor::new(Device::belem(), cfg);
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[qns_circuit::Param::Train(0)]);
        let d1 = exec.candidate_digest(&c, &[0.3], &[], &[0]);
        let d2 = exec.candidate_digest(&c, &[0.4], &[], &[0]);
        assert_ne!(d1, d2, "parameter change must change the digest");
        // Same candidate twice: identical results (pure function).
        let a = exec.expect_z(&c, &[0.3], &[], &[0]);
        let b = exec.expect_z(&c, &[0.3], &[], &[0]);
        assert_eq!(a.expect_z, b.expect_z);
    }
}
