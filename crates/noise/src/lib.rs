//! Quantum noise: error channels, synthetic device models, Monte-Carlo
//! trajectory execution, and the success-rate estimator.
//!
//! The QuantumNAS paper evaluates circuits against IBMQ calibration noise
//! models containing depolarizing, thermal-relaxation, and readout (SPAM)
//! errors. This crate rebuilds that stack from scratch:
//!
//! - [`KrausChannel`] — one- and two-qubit error channels with stochastic
//!   (trajectory) unraveling,
//! - [`Device`] — ten synthetic quantum computers mirroring the paper's
//!   machines (same qubit counts, coupling topologies and calibration-data
//!   magnitudes; see `DESIGN.md` for the substitution argument),
//! - [`TrajectoryExecutor`] — noisy circuit execution by averaging Kraus
//!   trajectories, with readout-error-adjusted expectations and shot
//!   sampling,
//! - [`circuit_success_rate`] / [`augmented_loss`] — the paper's fast second
//!   estimator: noise-free loss divided by the product of per-gate success
//!   rates,
//! - [`DriftingDevice`] — a slow random walk over calibration data, used to
//!   reproduce the noise-drift effect in Table VI.
//!
//! # Examples
//!
//! ```
//! use qns_noise::Device;
//! let dev = Device::yorktown();
//! assert_eq!(dev.num_qubits(), 5);
//! assert!(dev.err_2q(0, 2) > 0.0);
//! ```

mod channel;
mod density;
mod device;
mod drift;
mod mitigation;
mod success;
mod trajectory;

pub use channel::KrausChannel;
pub use density::{density_expect_masks, density_expect_z, DensityMatrix};
pub use device::{Device, QubitCalib, Topology};
pub use drift::DriftingDevice;
pub use mitigation::ReadoutMitigator;
pub use success::{augmented_loss, circuit_success_rate};
pub use trajectory::{NoisyResult, TrajectoryConfig, TrajectoryExecutor};
