//! Synthetic quantum-device models mirroring the paper's ten IBMQ machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Coupling-graph family of a device.
///
/// The paper studies how the '+', 'T' and '−' 5-qubit topologies interact
/// with QuantumNAS (Figure 20); larger machines use a heavy-hex-like sparse
/// grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Star of 5: center qubit connected to the other four (Yorktown-like).
    Plus,
    /// 'T' shape: `0-1-2` with `1-3-4` hanging off (Belem/Quito/Lima-like).
    T,
    /// Linear chain (Santiago/Athens/Rome-like).
    Line,
    /// Two parallel chains with rung connections (Melbourne-like).
    Ladder,
    /// Heavy-hex-like sparse grid (Guadalupe/Toronto/Manhattan-like).
    HeavyHex,
    /// The 7-qubit 'H' fragment of heavy-hex (Jakarta/Casablanca-like).
    HSeven,
}

/// Per-qubit calibration data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QubitCalib {
    /// Relaxation time, nanoseconds.
    pub t1_ns: f64,
    /// Dephasing time, nanoseconds (`<= 2 * t1_ns`).
    pub t2_ns: f64,
    /// Readout error `P(read 1 | prepared 0)`.
    pub readout_p01: f64,
    /// Readout error `P(read 0 | prepared 1)`.
    pub readout_p10: f64,
    /// Average single-qubit gate error on this qubit.
    pub err_1q: f64,
}

/// A synthetic quantum computer: topology plus calibration data.
///
/// Calibration values are drawn from seeded distributions whose magnitudes
/// match published IBMQ calibrations (single-qubit error ~1e-3, two-qubit
/// error ~1e-2, readout error 1–6%, T1/T2 50–120 µs). Each named device has
/// a fixed seed so experiments are reproducible; the per-device `base_err`
/// ordering follows the paper (Santiago least noisy, Yorktown most noisy
/// among the 5-qubit machines).
///
/// # Examples
///
/// ```
/// use qns_noise::Device;
/// let five_q: Vec<_> = Device::all_5q();
/// assert_eq!(five_q.len(), 7);
/// let santiago = Device::santiago();
/// let yorktown = Device::yorktown();
/// assert!(santiago.mean_err_2q() < yorktown.mean_err_2q());
/// ```
#[derive(Clone, Debug)]
pub struct Device {
    name: String,
    topology: Topology,
    edges: Vec<(usize, usize)>,
    qubits: Vec<QubitCalib>,
    err_2q: HashMap<(usize, usize), f64>,
    quantum_volume: u32,
    dur_1q_ns: f64,
    dur_2q_ns: f64,
    dur_readout_ns: f64,
}

impl Device {
    /// Builds a synthetic device.
    ///
    /// `base_err` is the average single-qubit gate error; two-qubit errors
    /// are ~8× larger and readout errors ~15× larger, matching the ratios in
    /// IBMQ calibration data. All per-qubit/per-edge values are drawn from
    /// a seeded log-normal-ish spread around those means.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is too small for the topology.
    pub fn synthetic(
        name: &str,
        n_qubits: usize,
        topology: Topology,
        base_err: f64,
        quantum_volume: u32,
        seed: u64,
    ) -> Self {
        let edges = build_edges(topology, n_qubits);
        let mut rng = StdRng::seed_from_u64(seed);
        let spread = |rng: &mut StdRng, mean: f64| -> f64 {
            let g: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            mean * (0.45 * g).exp()
        };
        let qubits: Vec<QubitCalib> = (0..n_qubits)
            .map(|_| {
                let t1 = spread(&mut rng, 80_000.0).clamp(20_000.0, 250_000.0);
                let t2 = (spread(&mut rng, 70_000.0)).clamp(10_000.0, 2.0 * t1);
                QubitCalib {
                    t1_ns: t1,
                    t2_ns: t2,
                    readout_p01: spread(&mut rng, 15.0 * base_err).clamp(1e-4, 0.2),
                    readout_p10: spread(&mut rng, 20.0 * base_err).clamp(1e-4, 0.25),
                    err_1q: spread(&mut rng, base_err).clamp(1e-5, 0.05),
                }
            })
            .collect();
        let err_2q: HashMap<(usize, usize), f64> = edges
            .iter()
            .map(|&(a, b)| {
                let key = (a.min(b), a.max(b));
                (key, spread(&mut rng, 8.0 * base_err).clamp(1e-4, 0.15))
            })
            .collect();
        Device {
            name: name.to_string(),
            topology,
            edges,
            qubits,
            err_2q,
            quantum_volume,
            dur_1q_ns: 35.0,
            dur_2q_ns: 330.0,
            dur_readout_ns: 3500.0,
        }
    }

    // --- the paper's ten machines ---

    /// IBMQ-Yorktown analogue: 5 qubits, '+' topology, the noisiest 5Q
    /// machine (QV 8).
    pub fn yorktown() -> Self {
        Device::synthetic("yorktown", 5, Topology::Plus, 2.6e-3, 8, 0xB01)
    }

    /// IBMQ-Belem analogue: 5 qubits, 'T' topology (QV 16).
    pub fn belem() -> Self {
        Device::synthetic("belem", 5, Topology::T, 1.4e-3, 16, 0xB02)
    }

    /// IBMQ-Quito analogue: 5 qubits, 'T' topology (QV 16).
    pub fn quito() -> Self {
        Device::synthetic("quito", 5, Topology::T, 1.5e-3, 16, 0xB03)
    }

    /// IBMQ-Lima analogue: 5 qubits, 'T' topology (QV 8).
    pub fn lima() -> Self {
        Device::synthetic("lima", 5, Topology::T, 1.6e-3, 8, 0xB04)
    }

    /// IBMQ-Santiago analogue: 5 qubits, line topology, the least noisy 5Q
    /// machine (QV 32).
    pub fn santiago() -> Self {
        Device::synthetic("santiago", 5, Topology::Line, 0.9e-3, 32, 0xB05)
    }

    /// IBMQ-Athens analogue: 5 qubits, line topology (QV 32).
    pub fn athens() -> Self {
        Device::synthetic("athens", 5, Topology::Line, 1.1e-3, 32, 0xB06)
    }

    /// IBMQ-Rome analogue: 5 qubits, line topology (QV 32).
    pub fn rome() -> Self {
        Device::synthetic("rome", 5, Topology::Line, 1.3e-3, 32, 0xB07)
    }

    /// IBMQ-Jakarta analogue: 7 qubits, 'H' heavy-hex fragment (QV 16).
    pub fn jakarta() -> Self {
        Device::synthetic("jakarta", 7, Topology::HSeven, 1.3e-3, 16, 0xB0C)
    }

    /// IBMQ-Melbourne analogue: 15 qubits, ladder topology (QV 8).
    pub fn melbourne() -> Self {
        Device::synthetic("melbourne", 15, Topology::Ladder, 2.2e-3, 8, 0xB08)
    }

    /// IBMQ-Guadalupe analogue: 16 qubits, heavy-hex topology (QV 32).
    pub fn guadalupe() -> Self {
        Device::synthetic("guadalupe", 16, Topology::HeavyHex, 1.2e-3, 32, 0xB09)
    }

    /// IBMQ-Toronto analogue: 27 qubits, heavy-hex topology (QV 32).
    pub fn toronto() -> Self {
        Device::synthetic("toronto", 27, Topology::HeavyHex, 1.4e-3, 32, 0xB0A)
    }

    /// IBMQ-Manhattan analogue: 65 qubits, heavy-hex topology (QV 32).
    pub fn manhattan() -> Self {
        Device::synthetic("manhattan", 65, Topology::HeavyHex, 1.6e-3, 32, 0xB0B)
    }

    /// Every shipped synthetic device, smallest to largest.
    pub fn all() -> Vec<Device> {
        vec![
            Device::santiago(),
            Device::athens(),
            Device::rome(),
            Device::belem(),
            Device::quito(),
            Device::lima(),
            Device::yorktown(),
            Device::jakarta(),
            Device::melbourne(),
            Device::guadalupe(),
            Device::toronto(),
            Device::manhattan(),
        ]
    }

    /// All seven 5-qubit machines, from least to most noisy.
    pub fn all_5q() -> Vec<Device> {
        vec![
            Device::santiago(),
            Device::athens(),
            Device::rome(),
            Device::belem(),
            Device::quito(),
            Device::lima(),
            Device::yorktown(),
        ]
    }

    /// Looks a device up by name.
    pub fn by_name(name: &str) -> Option<Device> {
        match name {
            "yorktown" => Some(Device::yorktown()),
            "belem" => Some(Device::belem()),
            "quito" => Some(Device::quito()),
            "lima" => Some(Device::lima()),
            "santiago" => Some(Device::santiago()),
            "athens" => Some(Device::athens()),
            "rome" => Some(Device::rome()),
            "jakarta" => Some(Device::jakarta()),
            "melbourne" => Some(Device::melbourne()),
            "guadalupe" => Some(Device::guadalupe()),
            "toronto" => Some(Device::toronto()),
            "manhattan" => Some(Device::manhattan()),
            _ => None,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Topology family.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Undirected coupling edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Reported quantum volume.
    pub fn quantum_volume(&self) -> u32 {
        self.quantum_volume
    }

    /// Calibration data for qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitCalib {
        &self.qubits[q]
    }

    /// Single-qubit gate error on qubit `q`.
    pub fn err_1q(&self, q: usize) -> f64 {
        self.qubits[q].err_1q
    }

    /// Two-qubit gate error on edge `(a, b)`.
    ///
    /// Returns the worst on-device error if the edge is not in the coupling
    /// map (routing should have prevented that; this keeps estimators total).
    pub fn err_2q(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        match self.err_2q.get(&key) {
            Some(&e) => e,
            // lint:allow(nondet-iter) — max over finite errors is
            // order-insensitive; the result is identical in any order
            None => self.err_2q.values().cloned().fold(0.02, f64::max),
        }
    }

    /// Whether `(a, b)` is directly coupled.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.err_2q.contains_key(&key)
    }

    /// Neighbors of qubit `q` in the coupling graph.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Mean two-qubit error across all edges.
    ///
    /// Summed in edge-list order, not map order: this mean feeds proxy
    /// features and search reports, so the float reduction must be
    /// bitwise-identical across processes.
    pub fn mean_err_2q(&self) -> f64 {
        let sum: f64 = self.edges.iter().map(|&(a, b)| self.err_2q(a, b)).sum();
        sum / self.edges.len() as f64
    }

    /// Duration of a single-qubit gate, ns.
    pub fn dur_1q_ns(&self) -> f64 {
        self.dur_1q_ns
    }

    /// Duration of a two-qubit gate, ns.
    pub fn dur_2q_ns(&self) -> f64 {
        self.dur_2q_ns
    }

    /// Duration of readout, ns.
    pub fn dur_readout_ns(&self) -> f64 {
        self.dur_readout_ns
    }

    /// Returns a copy with every gate/readout error scaled by `factor`
    /// (clamped to valid probability ranges). Used by the drift model and
    /// the error-rate sweeps of Figure 20.
    pub fn scaled_errors(&self, factor: f64) -> Device {
        let mut out = self.clone();
        for q in &mut out.qubits {
            q.err_1q = (q.err_1q * factor).clamp(0.0, 0.5);
            q.readout_p01 = (q.readout_p01 * factor).clamp(0.0, 0.5);
            q.readout_p10 = (q.readout_p10 * factor).clamp(0.0, 0.5);
        }
        // lint:allow(nondet-iter) — per-entry scaling; no value depends
        // on visit order
        for e in out.err_2q.values_mut() {
            *e = (*e * factor).clamp(0.0, 0.5);
        }
        out.name = format!("{}(x{:.2})", self.name, factor);
        out
    }
}

/// Builds the undirected edge list of a topology over `n` qubits.
fn build_edges(topology: Topology, n: usize) -> Vec<(usize, usize)> {
    match topology {
        Topology::Plus => {
            assert!(n == 5, "'+' topology is a 5-qubit layout");
            vec![(2, 0), (2, 1), (2, 3), (2, 4)]
        }
        Topology::T => {
            assert!(n == 5, "'T' topology is a 5-qubit layout");
            vec![(0, 1), (1, 2), (1, 3), (3, 4)]
        }
        Topology::Line => {
            assert!(n >= 2, "line needs at least 2 qubits");
            (0..n - 1).map(|i| (i, i + 1)).collect()
        }
        Topology::Ladder => {
            assert!(n >= 4, "ladder needs at least 4 qubits");
            let top = n.div_ceil(2);
            let mut e = Vec::new();
            for i in 0..top - 1 {
                e.push((i, i + 1));
            }
            for i in top..n - 1 {
                e.push((i, i + 1));
            }
            for i in top..n {
                e.push((i - top, i));
            }
            e
        }
        Topology::HSeven => {
            assert!(n == 7, "'H' topology is a 7-qubit layout");
            vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]
        }
        Topology::HeavyHex => {
            assert!(n >= 5, "heavy-hex needs at least 5 qubits");
            // Heavy-hex-like: rows of lines, with vertical connectors on a
            // period-4 stagger (degree <= 3 everywhere).
            let row = ((n as f64).sqrt().ceil() as usize).max(3);
            let mut e = Vec::new();
            for q in 0..n {
                let (r, c) = (q / row, q % row);
                if c + 1 < row && q + 1 < n {
                    e.push((q, q + 1));
                }
                let stagger = if r % 2 == 0 { 0 } else { 2 };
                if c % 4 == stagger && q + row < n {
                    e.push((q, q + row));
                }
            }
            e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_devices_have_paper_qubit_counts() {
        assert_eq!(Device::yorktown().num_qubits(), 5);
        assert_eq!(Device::melbourne().num_qubits(), 15);
        assert_eq!(Device::guadalupe().num_qubits(), 16);
        assert_eq!(Device::toronto().num_qubits(), 27);
        assert_eq!(Device::manhattan().num_qubits(), 65);
    }

    #[test]
    fn topologies_match_paper_labels() {
        assert_eq!(Device::yorktown().topology(), Topology::Plus);
        assert_eq!(Device::belem().topology(), Topology::T);
        assert_eq!(Device::santiago().topology(), Topology::Line);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = Device::belem();
        let b = Device::belem();
        assert_eq!(a.qubit(0), b.qubit(0));
        assert_eq!(a.err_2q(0, 1), b.err_2q(0, 1));
    }

    #[test]
    fn error_magnitudes_are_realistic() {
        for dev in Device::all_5q() {
            for q in 0..dev.num_qubits() {
                let c = dev.qubit(q);
                assert!(c.err_1q > 1e-5 && c.err_1q < 0.05, "{}", dev.name());
                assert!(c.readout_p01 < 0.25);
                assert!(c.t2_ns <= 2.0 * c.t1_ns + 1e-6);
            }
            for &(a, b) in dev.edges() {
                let e = dev.err_2q(a, b);
                assert!(e > 1e-4 && e < 0.15);
            }
        }
    }

    #[test]
    fn graphs_are_connected() {
        for dev in [
            Device::yorktown(),
            Device::belem(),
            Device::santiago(),
            Device::melbourne(),
            Device::guadalupe(),
            Device::toronto(),
            Device::manhattan(),
        ] {
            let n = dev.num_qubits();
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(q) = stack.pop() {
                for nb in dev.neighbors(q) {
                    if !seen[nb] {
                        seen[nb] = true;
                        stack.push(nb);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "{} coupling graph is disconnected",
                dev.name()
            );
        }
    }

    #[test]
    fn plus_topology_centers_on_qubit_2() {
        let dev = Device::yorktown();
        assert_eq!(dev.neighbors(2).len(), 4);
        assert!(dev.connected(2, 0) && !dev.connected(0, 1));
    }

    #[test]
    fn mean_err_2q_is_bitwise_stable_in_edge_order() {
        // Regression for a QA005 finding: the mean used to sum
        // `err_2q.values()` in HashMap order, so its float rounding (and
        // therefore the twoq_topology proxy feature built on it) differed
        // between processes. The sum must follow the edge list.
        for dev in [Device::belem(), Device::toronto(), Device::manhattan()] {
            let spec: f64 = dev
                .edges()
                .iter()
                .map(|&(a, b)| dev.err_2q(a, b))
                .sum::<f64>()
                / dev.edges().len() as f64;
            assert_eq!(
                dev.mean_err_2q().to_bits(),
                spec.to_bits(),
                "{}",
                dev.name()
            );
        }
    }

    #[test]
    fn unknown_edge_error_falls_back_to_worst() {
        let dev = Device::santiago();
        // (0, 4) is not an edge on a line of 5.
        assert!(!dev.connected(0, 4));
        let worst = dev
            .edges()
            .iter()
            .map(|&(a, b)| dev.err_2q(a, b))
            .fold(0.0, f64::max);
        assert!(dev.err_2q(0, 4) >= worst);
    }

    #[test]
    fn scaled_errors_scale() {
        let dev = Device::rome();
        let double = dev.scaled_errors(2.0);
        assert!((double.err_1q(0) - 2.0 * dev.err_1q(0)).abs() < 1e-12);
        assert!((double.err_2q(0, 1) - 2.0 * dev.err_2q(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn by_name_roundtrips() {
        for name in ["yorktown", "santiago", "manhattan"] {
            assert_eq!(Device::by_name(name).expect("known").name(), name);
        }
        assert!(Device::by_name("nonexistent").is_none());
    }

    #[test]
    fn heavy_hex_degree_bounded() {
        let dev = Device::toronto();
        for q in 0..dev.num_qubits() {
            assert!(dev.neighbors(q).len() <= 3, "qubit {q} degree too high");
        }
    }
}
