//! Property-based tests for noise channels and device models.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::{circuit_success_rate, Device, KrausChannel, TrajectoryConfig, TrajectoryExecutor};
use qns_sim::StateVec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every parameterized channel is trace preserving across its domain.
    #[test]
    fn channels_are_trace_preserving(p in 0.0..1.0f64) {
        prop_assert!(KrausChannel::depolarizing(p).is_trace_preserving(1e-10));
        prop_assert!(KrausChannel::bit_flip(p).is_trace_preserving(1e-10));
        prop_assert!(KrausChannel::phase_flip(p).is_trace_preserving(1e-10));
    }

    /// Thermal relaxation is trace preserving for any physical T1/T2/t.
    #[test]
    fn relaxation_is_physical(
        t1 in 1_000.0..200_000.0f64,
        ratio in 0.05..2.0f64,
        t in 0.0..10_000.0f64,
    ) {
        let t2 = t1 * ratio;
        let ch = KrausChannel::thermal_relaxation(t1, t2, t);
        prop_assert!(ch.is_trace_preserving(1e-9));
    }

    /// Trajectories always preserve the state norm.
    #[test]
    fn trajectories_preserve_norm(p in 0.0..1.0f64, seed in 0u64..64) {
        use rand::SeedableRng;
        let ch = KrausChannel::depolarizing(p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&qns_tensor::Mat2::hadamard(), 0);
        for _ in 0..10 {
            ch.apply_trajectory(&mut s, 0, &mut rng);
        }
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Success rate is multiplicative and monotone in circuit length.
    #[test]
    fn success_rate_is_monotone(n_gates in 1usize..30) {
        let dev = Device::belem();
        let mut c = Circuit::new(2);
        for _ in 0..n_gates {
            c.push(GateKind::CX, &[0, 1], &[]);
        }
        let r = circuit_success_rate(&c, &dev, &[0, 1], false);
        let single = {
            let mut c1 = Circuit::new(2);
            c1.push(GateKind::CX, &[0, 1], &[]);
            circuit_success_rate(&c1, &dev, &[0, 1], false)
        };
        prop_assert!((r - single.powi(n_gates as i32)).abs() < 1e-9);
        prop_assert!(r <= single + 1e-12);
    }

    /// Error scaling is linear on every device quantity it touches.
    #[test]
    fn scaled_errors_are_linear(factor in 0.1..5.0f64) {
        let dev = Device::quito();
        let scaled = dev.scaled_errors(factor);
        for q in 0..dev.num_qubits() {
            let expected = (dev.err_1q(q) * factor).clamp(0.0, 0.5);
            prop_assert!((scaled.err_1q(q) - expected).abs() < 1e-12);
        }
        for &(a, b) in dev.edges() {
            let expected = (dev.err_2q(a, b) * factor).clamp(0.0, 0.5);
            prop_assert!((scaled.err_2q(a, b) - expected).abs() < 1e-12);
        }
    }

    /// Noisy expectations remain in [-1, 1] for arbitrary circuits.
    #[test]
    fn noisy_expectations_are_bounded(angles in prop::collection::vec(-3.0..3.0f64, 4)) {
        let mut c = Circuit::new(2);
        c.push(GateKind::RY, &[0], &[Param::Fixed(angles[0])]);
        c.push(GateKind::RX, &[1], &[Param::Fixed(angles[1])]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(angles[2])]);
        c.push(GateKind::RY, &[1], &[Param::Fixed(angles[3])]);
        let exec = TrajectoryExecutor::new(
            Device::yorktown(),
            TrajectoryConfig {
                trajectories: 4,
                seed: 1,
                readout: true,
            },
        );
        let out = exec.expect_z(&c, &[], &[], &[0, 1]);
        for e in out.expect_z {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        }
    }
}
