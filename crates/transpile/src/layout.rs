//! Logical→physical qubit layouts and coupling-graph distances.

use qns_noise::Device;
use rand::seq::SliceRandom;
use rand::Rng;

/// All-pairs shortest-path distances on the device coupling graph (BFS).
///
/// `result[a][b]` is the number of coupling edges between physical qubits
/// `a` and `b`; `usize::MAX / 2` marks unreachable pairs (never the case on
/// the shipped devices, whose graphs are connected).
pub fn distance_matrix(device: &Device) -> Vec<Vec<usize>> {
    let n = device.num_qubits();
    let far = usize::MAX / 2;
    let mut dist = vec![vec![far; n]; n];
    #[allow(clippy::needless_range_loop)] // `start` is a qubit id, not a slice walk
    for start in 0..n {
        let mut queue = std::collections::VecDeque::new();
        dist[start][start] = 0;
        queue.push_back(start);
        while let Some(q) = queue.pop_front() {
            for nb in device.neighbors(q) {
                if dist[start][nb] == far {
                    dist[start][nb] = dist[start][q] + 1;
                    queue.push_back(nb);
                }
            }
        }
    }
    dist
}

/// An injective map from logical circuit qubits to physical device qubits.
///
/// In QuantumNAS the layout is part of the evolutionary gene: the searched
/// mapping is handed to the compiler as its initial layout.
///
/// # Examples
///
/// ```
/// use qns_transpile::Layout;
/// let l = Layout::trivial(3);
/// assert_eq!(l.phys_of(2), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    phys_of: Vec<usize>,
}

impl Layout {
    /// Identity layout: logical `i` on physical `i`.
    pub fn trivial(n_logical: usize) -> Self {
        Layout {
            phys_of: (0..n_logical).collect(),
        }
    }

    /// Builds a layout from an explicit map.
    ///
    /// # Panics
    ///
    /// Panics if the map contains duplicate physical qubits.
    pub fn from_vec(phys_of: Vec<usize>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &p in &phys_of {
            assert!(seen.insert(p), "duplicate physical qubit {p} in layout");
        }
        Layout { phys_of }
    }

    /// A uniformly random injective layout onto `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than `n_logical`.
    pub fn random<R: Rng + ?Sized>(n_logical: usize, device: &Device, rng: &mut R) -> Self {
        assert!(
            device.num_qubits() >= n_logical,
            "device too small for layout"
        );
        let mut phys: Vec<usize> = (0..device.num_qubits()).collect();
        phys.shuffle(rng);
        phys.truncate(n_logical);
        Layout { phys_of: phys }
    }

    /// Noise-adaptive greedy layout (the Murali et al. baseline): grow a
    /// connected physical subgraph starting from the most reliable coupling
    /// edge, always attaching the frontier qubit whose best connection has
    /// the lowest two-qubit error (readout error breaking ties).
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than `n_logical`.
    pub fn noise_adaptive(n_logical: usize, device: &Device) -> Self {
        assert!(
            device.num_qubits() >= n_logical,
            "device too small for layout"
        );
        if n_logical == 1 {
            // Pick the qubit with the lowest combined 1q + readout error.
            let best = (0..device.num_qubits())
                .min_by(|&a, &b| {
                    let ca = device.qubit(a);
                    let cb = device.qubit(b);
                    let sa = ca.err_1q + 0.5 * (ca.readout_p01 + ca.readout_p10);
                    let sb = cb.err_1q + 0.5 * (cb.readout_p01 + cb.readout_p10);
                    sa.partial_cmp(&sb).expect("finite errors")
                })
                .expect("device has qubits");
            return Layout {
                phys_of: vec![best],
            };
        }
        let mut best_edge = device.edges()[0];
        let mut best_err = f64::INFINITY;
        for &(a, b) in device.edges() {
            let e = device.err_2q(a, b);
            if e < best_err {
                best_err = e;
                best_edge = (a, b);
            }
        }
        let mut chosen = vec![best_edge.0, best_edge.1];
        while chosen.len() < n_logical {
            let mut candidate: Option<(usize, f64)> = None;
            for &q in &chosen {
                for nb in device.neighbors(q) {
                    if chosen.contains(&nb) {
                        continue;
                    }
                    let c = device.qubit(nb);
                    let score =
                        device.err_2q(q, nb) + 0.1 * (c.readout_p01 + c.readout_p10) + c.err_1q;
                    if candidate.map(|(_, s)| score < s).unwrap_or(true) {
                        candidate = Some((nb, score));
                    }
                }
            }
            match candidate {
                Some((q, _)) => chosen.push(q),
                // Disconnected frontier (cannot happen on shipped devices):
                // fall back to any unused qubit.
                None => {
                    let q = (0..device.num_qubits())
                        .find(|q| !chosen.contains(q))
                        .expect("device is large enough");
                    chosen.push(q);
                }
            }
        }
        Layout { phys_of: chosen }
    }

    /// Number of logical qubits mapped.
    pub fn num_logical(&self) -> usize {
        self.phys_of.len()
    }

    /// Physical qubit hosting logical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn phys_of(&self, l: usize) -> usize {
        self.phys_of[l]
    }

    /// Borrow of the full map.
    pub fn as_slice(&self) -> &[usize] {
        &self.phys_of
    }

    /// Checks validity against a device: all physical qubits in range.
    pub fn is_valid_for(&self, device: &Device) -> bool {
        self.phys_of.iter().all(|&p| p < device.num_qubits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_on_a_line() {
        let dev = Device::santiago();
        let d = distance_matrix(&dev);
        assert_eq!(d[0][0], 0);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[0][4], 4);
        assert_eq!(d[4][0], 4);
    }

    #[test]
    fn distances_on_plus() {
        let dev = Device::yorktown();
        let d = distance_matrix(&dev);
        assert_eq!(d[0][2], 1);
        assert_eq!(d[0][1], 2); // via the center
        assert_eq!(d[3][4], 2);
    }

    #[test]
    fn random_layout_is_injective() {
        let dev = Device::toronto();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let l = Layout::random(10, &dev, &mut rng);
            let mut seen = std::collections::HashSet::new();
            assert!(l.as_slice().iter().all(|&p| seen.insert(p)));
            assert!(l.is_valid_for(&dev));
        }
    }

    #[test]
    fn noise_adaptive_layout_is_connected() {
        for dev in qns_noise::Device::all_5q() {
            let l = Layout::noise_adaptive(4, &dev);
            assert_eq!(l.num_logical(), 4);
            // Every chosen qubit (after the first) neighbors another chosen.
            let chosen = l.as_slice();
            for (i, &q) in chosen.iter().enumerate().skip(1) {
                let attached = chosen[..i]
                    .iter()
                    .chain(chosen[i + 1..].iter())
                    .any(|&o| dev.connected(q, o));
                assert!(attached, "{}: qubit {q} is isolated", dev.name());
            }
        }
    }

    #[test]
    fn noise_adaptive_picks_best_edge_first() {
        let dev = Device::belem();
        let l = Layout::noise_adaptive(2, &dev);
        let (a, b) = (l.phys_of(0), l.phys_of(1));
        let chosen_err = dev.err_2q(a, b);
        for &(x, y) in dev.edges() {
            assert!(chosen_err <= dev.err_2q(x, y) + 1e-12);
        }
    }

    #[test]
    fn single_qubit_layout_picks_quiet_qubit() {
        let dev = Device::lima();
        let l = Layout::noise_adaptive(1, &dev);
        assert_eq!(l.num_logical(), 1);
        assert!(l.is_valid_for(&dev));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_mapping_panics() {
        let _ = Layout::from_vec(vec![0, 1, 1]);
    }
}
