//! The full transpilation pipeline and its output type.

use crate::{optimize, to_ibm_basis, try_route, Layout, TranspileError};
use qns_circuit::Circuit;
use qns_noise::Device;
use qns_verify::{PassContract, VerifyLevel};

/// Knobs for [`transpile_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TranspileOptions {
    /// Per-stage contract checking (default [`VerifyLevel::Off`], which adds
    /// zero work to the pipeline).
    pub verify: VerifyLevel,
}

impl TranspileOptions {
    /// Options with contract checking at `level`.
    pub fn verified(level: VerifyLevel) -> Self {
        TranspileOptions { verify: level }
    }
}

/// The result of [`transpile`]: an executable physical circuit plus the
/// bookkeeping needed to run and read it out.
///
/// The circuit is expressed over a *dense* set of qubits (only the physical
/// qubits actually used), so simulating a 4-qubit circuit mapped onto a
/// 65-qubit machine costs 2⁴ amplitudes, not 2⁶⁵.
#[derive(Clone, Debug)]
pub struct Transpiled {
    /// IBM-basis circuit over dense qubit indices.
    pub circuit: Circuit,
    /// `phys_of[d]` = physical device qubit behind dense index `d`.
    pub phys_of: Vec<usize>,
    /// `dense_of_logical[l]` = dense index holding logical qubit `l` at
    /// measurement time (SWAP insertion moves logical qubits around).
    pub dense_of_logical: Vec<usize>,
    /// Number of SWAPs the router inserted.
    pub swaps_inserted: usize,
}

impl Transpiled {
    /// Compiled depth (ASAP schedule over basis gates).
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// `(total, one_qubit, cnot)` compiled gate counts — the numbers the
    /// paper's Table IV reports.
    pub fn gate_counts(&self) -> (usize, usize, usize) {
        let one = self.circuit.count_1q();
        let two = self.circuit.count_2q();
        (one + two, one, two)
    }
}

/// Runs the full pipeline: SABRE routing from `layout`, lowering to the IBM
/// basis, peephole optimization at `opt_level`, and compaction to dense
/// qubit indices.
///
/// The paper sets the searched qubit mapping as the compiler's
/// `initial_layout` and uses optimization level 2 by default (level 3 for
/// some baselines); this function is that entry point.
///
/// # Panics
///
/// Panics if `layout` width differs from `circuit` width or maps outside
/// `device`.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_noise::Device;
/// use qns_transpile::{transpile, Layout};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::RY, &[0], &[Param::Train(0)]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let t = transpile(&c, &Device::belem(), &Layout::trivial(2), 2);
/// assert_eq!(t.dense_of_logical.len(), 2);
/// assert!(t.circuit.num_train_params() >= 1);
/// ```
pub fn transpile(circuit: &Circuit, device: &Device, layout: &Layout, opt_level: u8) -> Transpiled {
    match transpile_with(
        circuit,
        device,
        layout,
        opt_level,
        TranspileOptions::default(),
    ) {
        Ok(t) => t,
        // lint:allow(no-panic) — documented panicking wrapper over `transpile_with`
        Err(e) => panic!("transpile failed: {e}"),
    }
}

/// [`transpile`] with options: invalid layouts come back as typed errors,
/// and [`TranspileOptions::verify`] turns on per-stage [`PassContract`]
/// checks (layout → route → basis → optimize → output) whose violations
/// surface as [`TranspileError::Verify`] with stage-tagged diagnostics.
///
/// With verification off this is exactly the [`transpile`] pipeline plus
/// two integer comparisons — no measurable overhead.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_noise::Device;
/// use qns_transpile::{transpile_with, Layout, TranspileOptions};
/// use qns_verify::VerifyLevel;
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let opts = TranspileOptions::verified(VerifyLevel::Full);
/// let t = transpile_with(&c, &Device::belem(), &Layout::trivial(2), 2, opts).unwrap();
/// assert_eq!(t.dense_of_logical.len(), 2);
///
/// // A layout outside the device is an error, not a panic.
/// let bad = Layout::from_vec(vec![0, 17]);
/// assert!(transpile_with(&c, &Device::belem(), &bad, 2, opts).is_err());
/// ```
pub fn transpile_with(
    circuit: &Circuit,
    device: &Device,
    layout: &Layout,
    opt_level: u8,
    options: TranspileOptions,
) -> Result<Transpiled, TranspileError> {
    let contract = PassContract::new(circuit, device, options.verify);
    contract.check_layout(layout.as_slice()).into_result()?;
    let routed = try_route(circuit, device, layout)?;
    contract
        .check_routed(layout.as_slice(), &routed.circuit, &routed.final_phys_of)
        .into_result()?;
    let lowered = to_ibm_basis(&routed.circuit);
    contract.check_lowered(&lowered).into_result()?;
    let optimized = optimize(&lowered, opt_level);
    contract.check_optimized(&optimized).into_result()?;

    // Compact: keep qubits that carry gates or hold a logical qubit.
    let mut used = vec![false; device.num_qubits()];
    for op in optimized.iter() {
        for &q in &op.qubits[..op.num_qubits()] {
            used[q] = true;
        }
    }
    for &p in &routed.final_phys_of {
        used[p] = true;
    }
    let phys_of: Vec<usize> = (0..device.num_qubits()).filter(|&q| used[q]).collect();
    let mut dense_of_phys = vec![usize::MAX; device.num_qubits()];
    for (d, &p) in phys_of.iter().enumerate() {
        dense_of_phys[p] = d;
    }

    let mapping: Vec<usize> = (0..device.num_qubits())
        .map(|p| if used[p] { dense_of_phys[p] } else { 0 })
        .collect();
    // remap_qubits requires a total map; unused qubits never appear in ops,
    // so mapping them to 0 is inert.
    let dense_circuit = remap_dense(&optimized, &mapping, phys_of.len());

    let dense_of_logical: Vec<usize> = routed
        .final_phys_of
        .iter()
        .map(|&p| dense_of_phys[p])
        .collect();

    let out = Transpiled {
        circuit: dense_circuit,
        phys_of,
        dense_of_logical,
        swaps_inserted: routed.swaps_inserted,
    };
    contract
        .check_output(&out.circuit, &out.phys_of, &out.dense_of_logical)
        .into_result()?;
    Ok(out)
}

fn remap_dense(circuit: &Circuit, mapping: &[usize], new_width: usize) -> Circuit {
    let mut out = Circuit::new(new_width.max(1));
    for op in circuit.iter() {
        let qs: Vec<usize> = op.qubits[..op.num_qubits()]
            .iter()
            .map(|&q| mapping[q])
            .collect();
        out.push(op.kind, &qs, &op.params);
    }
    if out.num_train_params() < circuit.num_train_params() {
        out.set_num_train_params(circuit.num_train_params());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{GateKind, Param};
    use qns_sim::{run, ExecMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// End-to-end check: logical expectations survive the whole pipeline.
    fn check_pipeline(c: &Circuit, device: &Device, layout: &Layout, opt: u8, train: &[f64]) {
        let t = transpile(c, device, layout, opt);
        let ideal = run(c, train, &[], ExecMode::Dynamic);
        let compiled = run(&t.circuit, train, &[], ExecMode::Dynamic);
        for l in 0..c.num_qubits() {
            let a = ideal.expect_z(l);
            let b = compiled.expect_z(t.dense_of_logical[l]);
            assert!(
                (a - b).abs() < 1e-8,
                "logical {l}: ideal {a} vs compiled {b} (opt {opt})"
            );
        }
        // All 2q gates respect the coupling map.
        for op in t.circuit.iter() {
            if op.num_qubits() == 2 {
                let pa = t.phys_of[op.qubits[0]];
                let pb = t.phys_of[op.qubits[1]];
                assert!(device.connected(pa, pb), "uncoupled gate {pa}-{pb}");
            }
        }
    }

    fn random_vqc(n: usize, blocks: usize, seed: u64) -> (Circuit, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        let mut train = Vec::new();
        for _ in 0..blocks {
            for q in 0..n {
                train.extend((0..3).map(|_| rng.gen_range(-2.0..2.0)));
                let base = train.len() - 3;
                c.push(
                    GateKind::U3,
                    &[q],
                    &[
                        Param::Train(base),
                        Param::Train(base + 1),
                        Param::Train(base + 2),
                    ],
                );
            }
            for q in 0..n {
                let tgt = (q + 1) % n;
                if tgt != q {
                    train.extend((0..3).map(|_| rng.gen_range(-2.0..2.0)));
                    let base = train.len() - 3;
                    c.push(
                        GateKind::CU3,
                        &[q, tgt],
                        &[
                            Param::Train(base),
                            Param::Train(base + 1),
                            Param::Train(base + 2),
                        ],
                    );
                }
            }
        }
        (c, train)
    }

    #[test]
    fn u3cu3_pipeline_on_all_5q_devices() {
        for dev in Device::all_5q() {
            let (c, train) = random_vqc(4, 1, 3);
            check_pipeline(&c, &dev, &Layout::trivial(4), 2, &train);
        }
    }

    #[test]
    fn all_opt_levels_are_equivalent() {
        let dev = Device::yorktown();
        let (c, train) = random_vqc(4, 2, 8);
        for opt in 0..=3 {
            check_pipeline(&c, &dev, &Layout::trivial(4), opt, &train);
        }
    }

    #[test]
    fn higher_opt_levels_do_not_grow_circuits() {
        let dev = Device::belem();
        let (c, _) = random_vqc(4, 2, 12);
        let sizes: Vec<usize> = (0..=3)
            .map(|opt| {
                transpile(&c, &dev, &Layout::trivial(4), opt)
                    .circuit
                    .num_ops()
            })
            .collect();
        assert!(sizes[1] <= sizes[0]);
        assert!(sizes[2] <= sizes[1]);
    }

    #[test]
    fn compaction_keeps_only_used_qubits() {
        let dev = Device::manhattan();
        let (c, train) = random_vqc(4, 1, 5);
        let layout = Layout::from_vec(vec![10, 11, 12, 13]);
        let t = transpile(&c, &dev, &layout, 2);
        assert!(
            t.circuit.num_qubits() <= 10,
            "width {}",
            t.circuit.num_qubits()
        );
        check_pipeline(&c, &dev, &layout, 2, &train);
    }

    #[test]
    fn noise_adaptive_layout_end_to_end() {
        let dev = Device::quito();
        let (c, train) = random_vqc(4, 1, 21);
        let layout = Layout::noise_adaptive(4, &dev);
        check_pipeline(&c, &dev, &layout, 2, &train);
    }

    #[test]
    fn metrics_are_consistent() {
        let dev = Device::santiago();
        let (c, _) = random_vqc(4, 2, 30);
        let t = transpile(&c, &dev, &Layout::trivial(4), 2);
        let (total, one, two) = t.gate_counts();
        assert_eq!(total, one + two);
        assert!(t.depth() > 0 && t.depth() <= total);
    }
}
