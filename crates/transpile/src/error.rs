//! Typed transpilation errors.
//!
//! The search loop hands the compiler *searched* layouts, so invalid input
//! is an expected runtime condition, not a programming bug: it must come
//! back as a value the caller can report and score, never as a worker
//! panic.

use qns_verify::VerifyError;
use std::fmt;

/// Why a transpile (or a single routing pass) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum TranspileError {
    /// The layout maps a different number of logical qubits than the
    /// circuit has.
    LayoutWidthMismatch {
        /// Logical qubits the layout maps.
        layout: usize,
        /// Qubits the circuit acts on.
        circuit: usize,
    },
    /// The layout maps a logical qubit outside the device, or maps two
    /// logical qubits to the same physical qubit.
    InvalidLayout {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The router's swap heuristic could not make progress — only possible
    /// on a disconnected coupling graph (no shipped device has one).
    RoutingStuck {
        /// Index of the logical op being routed when progress stopped.
        op_index: usize,
    },
    /// A verification pass contract failed; the report pinpoints the stage
    /// and rule.
    Verify(VerifyError),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::LayoutWidthMismatch { layout, circuit } => write!(
                f,
                "layout maps {layout} logical qubits, circuit has {circuit}"
            ),
            TranspileError::InvalidLayout { reason } => {
                write!(f, "invalid layout: {reason}")
            }
            TranspileError::RoutingStuck { op_index } => {
                write!(f, "routing made no progress at op {op_index}")
            }
            TranspileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TranspileError {}

impl From<VerifyError> for TranspileError {
    fn from(e: VerifyError) -> Self {
        TranspileError::Verify(e)
    }
}
