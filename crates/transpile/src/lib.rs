//! Quantum transpiler: layout, routing, basis translation, optimization.
//!
//! QuantumNAS co-searches circuits *with their qubit mapping*, so the
//! compiler is part of the search loop: the searched mapping becomes the
//! initial layout, SWAPs are inserted for the device coupling map, gates are
//! lowered to the IBM basis `{CX, SX, RZ, X}`, and peephole optimization
//! runs at Qiskit-style levels 0–3. This crate rebuilds that pipeline:
//!
//! - [`Layout`] — logical→physical maps: trivial, random, searched, and the
//!   noise-adaptive greedy baseline (Murali et al. style),
//! - [`route`] — SABRE-style swap insertion with a lookahead heuristic,
//! - [`to_ibm_basis`] — exact decomposition of the full gate library into
//!   the IBM basis, preserving symbolic (trainable/input) parameters as
//!   affine slots, with the U3 zero-parameter specializations of the
//!   paper's Table II,
//! - [`optimize`] — gate cancellation, rotation merging, and single-qubit
//!   resynthesis passes,
//! - [`transpile`] — the full pipeline producing a [`Transpiled`] circuit
//!   with compiled metrics (depth, gate counts) and measurement mapping,
//! - [`transpile_with`] / [`try_route`] — the same pipeline with typed
//!   [`TranspileError`] results and optional per-stage verification
//!   ([`qns_verify::PassContract`]) selected by [`TranspileOptions`].
//!
//! # Examples
//!
//! ```
//! use qns_circuit::{Circuit, GateKind};
//! use qns_noise::Device;
//! use qns_transpile::{transpile, Layout};
//!
//! let mut c = Circuit::new(3);
//! c.push(GateKind::H, &[0], &[]);
//! c.push(GateKind::CX, &[0, 2], &[]); // not adjacent on a line: needs a SWAP
//! let dev = Device::santiago();
//! let t = transpile(&c, &dev, &Layout::trivial(3), 2);
//! assert!(t.circuit.count_2q() >= 1);
//! ```

mod basis;
mod error;
mod layout;
mod passes;
mod pipeline;
mod router;

pub use basis::{to_ibm_basis, zyz_angles};
pub use error::TranspileError;
pub use layout::{distance_matrix, Layout};
pub use passes::optimize;
pub use pipeline::{transpile, transpile_with, TranspileOptions, Transpiled};
pub use router::{route, try_route, RoutedCircuit};
