//! Peephole optimization passes over IBM-basis circuits.

use crate::basis::zyz_angles;
use qns_circuit::{Circuit, GateKind, GateMatrix, Op, Param};
use qns_tensor::Mat2;

const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// Optimizes an IBM-basis circuit at a Qiskit-style level.
///
/// - level 0 — no optimization,
/// - level 1 — gate cancellation: merge/drop adjacent `RZ`s, cancel `CX·CX`
///   and `X·X` pairs, fuse `SX·SX → X`,
/// - level 2 — level 1 plus single-qubit resynthesis: maximal runs of fixed
///   one-qubit gates are re-expressed as at most 5 basis gates via ZYZ,
/// - level 3 — level 2 plus commuting `RZ`s through `CX` controls before a
///   second resynthesis round (heavier, occasionally wins, occasionally
///   doesn't — matching the paper's observation in Table VI).
///
/// Parameterized (trainable/input) gates are barriers for resynthesis but
/// still merge with adjacent fixed `RZ`s.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_transpile::optimize;
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RZ, &[0], &[Param::Fixed(0.4)]);
/// c.push(GateKind::RZ, &[0], &[Param::Fixed(-0.4)]);
/// assert_eq!(optimize(&c, 1).num_ops(), 0);
/// ```
pub fn optimize(circuit: &Circuit, level: u8) -> Circuit {
    match level {
        0 => circuit.clone(),
        1 => cancel_fixpoint(circuit),
        2 => {
            let c = cancel_fixpoint(circuit);
            let c = resynthesize_1q(&c);
            cancel_fixpoint(&c)
        }
        _ => {
            let c = cancel_fixpoint(circuit);
            let c = resynthesize_1q(&c);
            let c = cancel_fixpoint(&c);
            let c = commute_rz_through_cx(&c);
            let c = resynthesize_1q(&c);
            cancel_fixpoint(&c)
        }
    }
}

/// Repeats the cancellation pass until no change.
fn cancel_fixpoint(circuit: &Circuit) -> Circuit {
    let mut cur = circuit.clone();
    loop {
        let next = cancel_once(&cur);
        if next.num_ops() == cur.num_ops() {
            return next;
        }
        cur = next;
    }
}

/// Merges an `RZ` pair when statically possible.
fn merge_rz(a: Param, b: Param) -> Option<Param> {
    match (a, b) {
        (Param::Fixed(x), Param::Fixed(y)) => Some(Param::Fixed(x + y)),
        (Param::Fixed(x), other) => Some(other.affine(1.0, x)),
        (other, Param::Fixed(y)) => Some(other.affine(1.0, y)),
        (
            Param::AffineTrain {
                index: i,
                scale: s1,
                offset: o1,
            },
            Param::AffineTrain {
                index: j,
                scale: s2,
                offset: o2,
            },
        ) if i == j => Some(Param::AffineTrain {
            index: i,
            scale: s1 + s2,
            offset: o1 + o2,
        }),
        _ => None,
    }
}

fn is_zero_rz(p: Param) -> bool {
    match p {
        Param::Fixed(v) => {
            let r = v.rem_euclid(TWO_PI);
            r < 1e-12 || (TWO_PI - r) < 1e-12
        }
        Param::AffineTrain { scale, .. } | Param::AffineInput { scale, .. } => scale == 0.0,
        _ => false,
    }
}

/// One sweep of adjacent-gate cancellation.
///
/// Processes ops in order, keeping an output list; an incoming op may merge
/// with a previous output op only when that op is the *latest* output op on
/// every qubit the incoming op touches (so nothing interleaves).
fn cancel_once(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out_ops: Vec<Option<Op>> = Vec::with_capacity(circuit.num_ops());
    // last_on[q] = index into out_ops of the latest live op touching q.
    let mut last_on: Vec<Option<usize>> = vec![None; n];

    let rescan = |out_ops: &[Option<Op>], q: usize| -> Option<usize> {
        out_ops.iter().enumerate().rev().find_map(|(i, op)| {
            op.as_ref()
                .filter(|op| op.qubits[..op.num_qubits()].contains(&q))
                .map(|_| i)
        })
    };

    for op in circuit.iter() {
        let nq = op.num_qubits();
        let qs = &op.qubits[..nq];
        if op.kind == GateKind::RZ && is_zero_rz(op.params[0]) {
            continue;
        }

        // The merge target: all our qubits must point at the same live op.
        let target = match qs.iter().map(|&q| last_on[q]).collect::<Vec<_>>()[..] {
            [Some(j)] => Some(j),
            [Some(j), Some(k)] if j == k => Some(j),
            _ => None,
        };
        let mut merged = MergeResult::None;
        if let Some(j) = target {
            if let Some(prev) = out_ops[j].clone() {
                merged = try_merge(&prev, op);
            }
        }
        match merged {
            MergeResult::Annihilate => {
                let j = target.expect("target exists when merged");
                let prev = out_ops[j].take().expect("target is live");
                for &q in &prev.qubits[..prev.num_qubits()] {
                    last_on[q] = rescan(&out_ops, q);
                }
            }
            MergeResult::Replace(new_op) => {
                let j = target.expect("target exists when merged");
                out_ops[j] = Some(new_op);
            }
            MergeResult::None => {
                let idx = out_ops.len();
                out_ops.push(Some(op.clone()));
                for &q in qs {
                    last_on[q] = Some(idx);
                }
            }
        }
    }

    let mut out = Circuit::new(n);
    for op in out_ops.into_iter().flatten() {
        if op.kind == GateKind::RZ && is_zero_rz(op.params[0]) {
            continue;
        }
        let nq = op.num_qubits();
        out.push(op.kind, &op.qubits[..nq], &op.params);
    }
    if out.num_train_params() < circuit.num_train_params() {
        out.set_num_train_params(circuit.num_train_params());
    }
    out
}

enum MergeResult {
    None,
    Annihilate,
    Replace(Op),
}

/// Can `prev` (earlier, adjacency already established) merge with `op`?
fn try_merge(prev: &Op, op: &Op) -> MergeResult {
    let nq = op.num_qubits();
    if prev.num_qubits() != nq {
        return MergeResult::None;
    }
    let same_support = prev.qubits[..nq]
        .iter()
        .all(|&q| op.qubits[..nq].contains(&q))
        && op.qubits[..nq]
            .iter()
            .all(|&q| prev.qubits[..nq].contains(&q));
    if !same_support {
        return MergeResult::None;
    }
    match (prev.kind, op.kind) {
        (GateKind::RZ, GateKind::RZ) => {
            if let Some(p) = merge_rz(prev.params[0], op.params[0]) {
                if is_zero_rz(p) {
                    MergeResult::Annihilate
                } else {
                    MergeResult::Replace(Op {
                        kind: GateKind::RZ,
                        qubits: op.qubits,
                        params: vec![p],
                    })
                }
            } else {
                MergeResult::None
            }
        }
        (GateKind::X, GateKind::X) => MergeResult::Annihilate,
        (GateKind::SX, GateKind::SX) => MergeResult::Replace(Op {
            kind: GateKind::X,
            qubits: op.qubits,
            params: vec![],
        }),
        (GateKind::CX, GateKind::CX) => {
            if prev.qubits == op.qubits {
                MergeResult::Annihilate
            } else {
                MergeResult::None
            }
        }
        _ => MergeResult::None,
    }
}

/// Re-synthesizes maximal runs of fixed one-qubit gates into ≤5 basis
/// gates, keeping the original run when it is already shorter.
fn resynthesize_1q(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out = Circuit::new(n);
    // Pending run of fixed 1q ops per qubit, plus its accumulated unitary.
    let mut pending: Vec<Vec<Op>> = vec![Vec::new(); n];

    let flush = |out: &mut Circuit, pending: &mut Vec<Vec<Op>>, q: usize| {
        let run = std::mem::take(&mut pending[q]);
        if run.is_empty() {
            return;
        }
        let mut acc = Mat2::identity();
        for op in &run {
            let vals: Vec<f64> = op
                .params
                .iter()
                .map(|p| match p {
                    Param::Fixed(v) => *v,
                    _ => unreachable!("run holds fixed ops only"),
                })
                .collect();
            let m = match op.kind.matrix(&vals) {
                GateMatrix::One(m) => m,
                _ => unreachable!("run holds 1q ops only"),
            };
            acc = m.mul_mat(&acc);
        }
        let replacement = synthesize_mat2(q, &acc);
        if replacement.num_ops() < run.len() {
            for op in replacement.iter() {
                out.push(op.kind, &op.qubits[..1], &op.params);
            }
        } else {
            for op in run {
                out.push(op.kind, &op.qubits[..1], &op.params);
            }
        }
    };

    for op in circuit.iter() {
        let nq = op.num_qubits();
        let fixed = op.params.iter().all(|p| matches!(p, Param::Fixed(_)));
        if nq == 1 && fixed {
            pending[op.qubits[0]].push(op.clone());
        } else {
            for &q in &op.qubits[..nq] {
                flush(&mut out, &mut pending, q);
            }
            out.push(op.kind, &op.qubits[..nq], &op.params);
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    if out.num_train_params() < circuit.num_train_params() {
        out.set_num_train_params(circuit.num_train_params());
    }
    out
}

/// Synthesizes a fixed 2×2 unitary as ≤5 basis gates (empty for identity
/// up to global phase).
fn synthesize_mat2(q: usize, m: &Mat2) -> Circuit {
    let mut out = Circuit::new(q + 1);
    let phase_only = m.m[1].abs() < 1e-12
        && m.m[2].abs() < 1e-12
        && (m.m[0].conj() * m.m[3] - qns_tensor::C64::ONE).abs() < 1e-12;
    if phase_only {
        return out;
    }
    let (_, theta, phi, lambda) = zyz_angles(m);
    let mut tmp = Circuit::new(q + 1);
    tmp.push(
        GateKind::U3,
        &[q],
        &[Param::Fixed(theta), Param::Fixed(phi), Param::Fixed(lambda)],
    );
    let lowered = crate::basis::to_ibm_basis(&tmp);
    for op in lowered.iter() {
        out.push(op.kind, &op.qubits[..op.num_qubits()], &op.params);
    }
    out
}

/// Moves `RZ` gates acting on a CX *control* to the other side of the CX
/// (they commute), which exposes more merges for the next cancel pass.
fn commute_rz_through_cx(circuit: &Circuit) -> Circuit {
    let ops: Vec<Op> = circuit.ops().to_vec();
    let mut out_ops: Vec<Op> = Vec::with_capacity(ops.len());
    for op in ops {
        if op.kind == GateKind::CX {
            // Pull any RZ just before us on the control to just after us.
            if let Some(last) = out_ops.last().cloned() {
                if last.kind == GateKind::RZ && last.qubits[0] == op.qubits[0] {
                    out_ops.pop();
                    out_ops.push(op);
                    out_ops.push(last);
                    continue;
                }
            }
        }
        out_ops.push(op);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for op in out_ops {
        out.push(op.kind, &op.qubits[..op.num_qubits()], &op.params);
    }
    if out.num_train_params() < circuit.num_train_params() {
        out.set_num_train_params(circuit.num_train_params());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_ibm_basis;
    use qns_sim::{run, ExecMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fidelity(a: &Circuit, b: &Circuit, train: &[f64]) -> f64 {
        let sa = run(a, train, &[], ExecMode::Dynamic);
        let sb = run(b, train, &[], ExecMode::Dynamic);
        sa.inner(&sb).abs()
    }

    #[test]
    fn rz_pair_merges() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(0.3)]);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(0.4)]);
        let o = optimize(&c, 1);
        assert_eq!(o.num_ops(), 1);
        assert!((fidelity(&c, &o, &[]) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cx_pair_cancels() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        assert_eq!(optimize(&c, 1).num_ops(), 0);
    }

    #[test]
    fn reversed_cx_pair_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[1, 0], &[]);
        assert_eq!(optimize(&c, 1).num_ops(), 2);
    }

    #[test]
    fn interleaved_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::X, &[1], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        let o = optimize(&c, 1);
        assert_eq!(o.num_ops(), 3);
    }

    #[test]
    fn sx_pair_becomes_x() {
        let mut c = Circuit::new(1);
        c.push(GateKind::SX, &[0], &[]);
        c.push(GateKind::SX, &[0], &[]);
        let o = optimize(&c, 1);
        assert_eq!(o.num_ops(), 1);
        assert_eq!(o.ops()[0].kind, GateKind::X);
    }

    #[test]
    fn fixed_rz_merges_into_symbolic() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(0.5)]);
        c.push(GateKind::RZ, &[0], &[Param::Train(0)]);
        let o = optimize(&c, 1);
        assert_eq!(o.num_ops(), 1);
        assert!((fidelity(&c, &o, &[0.77]) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn resynthesis_shrinks_long_1q_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Circuit::new(1);
        for _ in 0..10 {
            c.push(
                GateKind::RZ,
                &[0],
                &[Param::Fixed(rng.gen_range(-3.0..3.0))],
            );
            c.push(GateKind::SX, &[0], &[]);
        }
        let o = optimize(&c, 2);
        assert!(o.num_ops() <= 5, "resynthesized to {} ops", o.num_ops());
        assert!((fidelity(&c, &o, &[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimization_preserves_semantics_on_random_compiled_circuits() {
        let mut rng = StdRng::seed_from_u64(9);
        for level in 1..=3 {
            for seed in 0..4 {
                let _ = seed;
                let mut c = Circuit::new(3);
                let mut train = Vec::new();
                for _ in 0..20 {
                    match rng.gen_range(0..4) {
                        0 => {
                            let q = rng.gen_range(0..3);
                            train.push(rng.gen_range(-3.0..3.0));
                            c.push(GateKind::RY, &[q], &[Param::Train(train.len() - 1)]);
                        }
                        1 => {
                            let q = rng.gen_range(0..3);
                            c.push(GateKind::H, &[q], &[]);
                        }
                        2 => {
                            let a = rng.gen_range(0..3);
                            let b = (a + 1) % 3;
                            c.push(GateKind::CX, &[a, b], &[]);
                        }
                        _ => {
                            let q = rng.gen_range(0..3);
                            c.push(
                                GateKind::U3,
                                &[q],
                                &[
                                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                                ],
                            );
                        }
                    }
                }
                let compiled = to_ibm_basis(&c);
                let o = optimize(&compiled, level);
                assert!(o.num_ops() <= compiled.num_ops());
                let f = fidelity(&compiled, &o, &train);
                assert!((f - 1.0).abs() < 1e-8, "level {level}: fidelity {f}");
            }
        }
    }

    #[test]
    fn commute_pass_merges_rz_across_cx_control() {
        let mut c = Circuit::new(2);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(0.4)]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(-0.4)]);
        let o = optimize(&c, 3);
        assert_eq!(o.num_ops(), 1, "both RZs merge away across the CX");
        assert!((fidelity(&c, &o, &[]) - 1.0).abs() < 1e-10);
    }
}
