//! Exact decomposition of the gate library into the IBM basis
//! `{CX, SX, RZ, X}`.
//!
//! Parameterized gates stay symbolic: a `U3(Train(i), …)` becomes basis
//! gates whose angles are affine in `Train(i)`, so compiled circuits remain
//! trainable and per-sample encodable. Fixed parameters get the
//! zero-specializations of the paper's Table II (a `U3(0, φ, λ)` compiles
//! to a single `RZ`).

use qns_circuit::{Circuit, GateKind, Param};
use qns_tensor::Mat2;

const TWO_PI: f64 = 2.0 * std::f64::consts::PI;
const PI: f64 = std::f64::consts::PI;
const FRAC_PI_2: f64 = std::f64::consts::FRAC_PI_2;

/// Is a fixed angle ≡ 0 (mod 2π)?
fn is_zero_angle(p: Param) -> bool {
    match p {
        Param::Fixed(v) => {
            let r = v.rem_euclid(TWO_PI);
            r < 1e-12 || (TWO_PI - r) < 1e-12
        }
        _ => false,
    }
}

/// ZYZ angles of a 2×2 unitary: returns `(alpha, theta, phi, lambda)` with
/// `m = e^{iα} · U3(θ, φ, λ)`.
///
/// # Panics
///
/// Panics if `m` is not unitary to within `1e-8`.
///
/// # Examples
///
/// ```
/// use qns_tensor::Mat2;
/// let (_, theta, _, _) = qns_transpile::zyz_angles(&Mat2::pauli_x());
/// assert!((theta - std::f64::consts::PI).abs() < 1e-10);
/// ```
pub fn zyz_angles(m: &Mat2) -> (f64, f64, f64, f64) {
    assert!(m.is_unitary(1e-8), "matrix must be unitary");
    let c = m.m[0].abs();
    let s = m.m[2].abs();
    let theta = 2.0 * s.atan2(c);
    if s < 1e-9 {
        // Diagonal: e^{iα} diag(1, e^{i(φ+λ)}); put everything in φ.
        let alpha = m.m[0].arg();
        let phi = m.m[3].arg() - alpha;
        (alpha, 0.0, phi, 0.0)
    } else if c < 1e-9 {
        // Anti-diagonal: u10 = e^{i(α+φ)}, u01 = -e^{i(α+λ)}; put λ = 0.
        let alpha = (-m.m[1]).arg();
        let phi = m.m[2].arg() - alpha;
        (alpha, PI, phi, 0.0)
    } else {
        let alpha = m.m[0].arg();
        let phi = m.m[2].arg() - alpha;
        let lambda = (-m.m[1]).arg() - alpha;
        (alpha, theta, phi, lambda)
    }
}

/// Collector for emitted basis gates.
struct Emitter {
    out: Circuit,
}

impl Emitter {
    fn rz(&mut self, q: usize, p: Param) {
        if !is_zero_angle(p) {
            self.out.push(GateKind::RZ, &[q], &[p]);
        }
    }

    fn sx(&mut self, q: usize) {
        self.out.push(GateKind::SX, &[q], &[]);
    }

    fn x(&mut self, q: usize) {
        self.out.push(GateKind::X, &[q], &[]);
    }

    fn cx(&mut self, c: usize, t: usize) {
        self.out.push(GateKind::CX, &[c, t], &[]);
    }

    /// `U3(θ, φ, λ)` → `RZ(λ) · SX · RZ(θ+π) · SX · RZ(φ+π)` (op order),
    /// with the Table II specializations when parameters are fixed zeros.
    fn u3(&mut self, q: usize, theta: Param, phi: Param, lambda: Param) {
        if is_zero_angle(theta) {
            // Pure phase: RZ(φ + λ).
            match (phi, lambda) {
                (Param::Fixed(a), Param::Fixed(b)) => self.rz(q, Param::Fixed(a + b)),
                _ => {
                    self.rz(q, phi);
                    self.rz(q, lambda);
                }
            }
            return;
        }
        self.rz(q, lambda);
        self.sx(q);
        self.rz(q, theta.affine(1.0, PI));
        self.sx(q);
        self.rz(q, phi.affine(1.0, PI));
    }

    /// `RY(θ) = U3(θ, 0, 0)`; skipped entirely for a fixed zero angle.
    fn ry(&mut self, q: usize, theta: Param) {
        if is_zero_angle(theta) {
            return;
        }
        self.u3(q, theta, Param::Fixed(0.0), Param::Fixed(0.0));
    }

    /// Hadamard: `RZ(π/2) · SX · RZ(π/2)` up to global phase.
    fn h(&mut self, q: usize) {
        self.rz(q, Param::Fixed(FRAC_PI_2));
        self.sx(q);
        self.rz(q, Param::Fixed(FRAC_PI_2));
    }

    /// A fixed 2×2 unitary via ZYZ extraction.
    fn mat2(&mut self, q: usize, m: &Mat2) {
        let (_, theta, phi, lambda) = zyz_angles(m);
        self.u3(
            q,
            Param::Fixed(theta),
            Param::Fixed(phi),
            Param::Fixed(lambda),
        );
    }

    /// `RZZ(θ)` → `CX · RZ(θ)_t · CX` (exact).
    fn rzz(&mut self, a: usize, b: usize, theta: Param) {
        if is_zero_angle(theta) {
            return;
        }
        self.cx(a, b);
        self.rz(b, theta);
        self.cx(a, b);
    }

    /// Controlled-`U3(θ, φ, λ)` via the two-CX ABC construction.
    fn cu3(&mut self, c: usize, t: usize, theta: Param, phi: Param, lambda: Param) {
        // C = RZ((λ−φ)/2)
        self.rz(t, lambda.affine(0.5, 0.0));
        self.rz(t, phi.affine(-0.5, 0.0));
        self.cx(c, t);
        // B = RY(−θ/2) · RZ(−(φ+λ)/2)  (RZ applied first)
        self.rz(t, phi.affine(-0.5, 0.0));
        self.rz(t, lambda.affine(-0.5, 0.0));
        self.ry(t, theta.affine(-0.5, 0.0));
        self.cx(c, t);
        // A = RZ(φ) · RY(θ/2)  (RY applied first)
        self.ry(t, theta.affine(0.5, 0.0));
        self.rz(t, phi);
        // Phase e^{i(φ+λ)/2} on the control.
        self.rz(c, phi.affine(0.5, 0.0));
        self.rz(c, lambda.affine(0.5, 0.0));
    }
}

/// Lowers every gate of `circuit` to the IBM basis `{CX, SX, RZ, X}`.
///
/// Exact up to global phase; trainable/input parameters are preserved as
/// affine parameter slots. The output has the same width as the input.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_transpile::to_ibm_basis;
///
/// let mut c = Circuit::new(1);
/// // U3 with all three parameters nonzero compiles to 5 basis gates.
/// c.push(
///     GateKind::U3,
///     &[0],
///     &[Param::Fixed(0.3), Param::Fixed(0.4), Param::Fixed(0.5)],
/// );
/// assert_eq!(to_ibm_basis(&c).num_ops(), 5);
/// ```
pub fn to_ibm_basis(circuit: &Circuit) -> Circuit {
    let mut e = Emitter {
        out: Circuit::new(circuit.num_qubits()),
    };
    for op in circuit.iter() {
        let q = op.qubits[0];
        let p = |i: usize| op.params[i];
        match op.kind {
            GateKind::I => {}
            GateKind::X => e.x(q),
            GateKind::SX => e.sx(q),
            GateKind::RZ => e.rz(q, p(0)),
            GateKind::U1 => e.rz(q, p(0)),
            GateKind::Z => e.rz(q, Param::Fixed(PI)),
            GateKind::S => e.rz(q, Param::Fixed(FRAC_PI_2)),
            GateKind::Sdg => e.rz(q, Param::Fixed(-FRAC_PI_2)),
            GateKind::T => e.rz(q, Param::Fixed(PI / 4.0)),
            GateKind::Tdg => e.rz(q, Param::Fixed(-PI / 4.0)),
            GateKind::H => e.h(q),
            GateKind::Y | GateKind::SH | GateKind::SXdg => {
                let m = match op.kind.matrix(&[]) {
                    qns_circuit::GateMatrix::One(m) => m,
                    _ => unreachable!(),
                };
                e.mat2(q, &m);
            }
            GateKind::RX => e.u3(q, p(0), Param::Fixed(-FRAC_PI_2), Param::Fixed(FRAC_PI_2)),
            GateKind::RY => e.ry(q, p(0)),
            GateKind::U2 => e.u3(q, Param::Fixed(FRAC_PI_2), p(0), p(1)),
            GateKind::U3 => e.u3(q, p(0), p(1), p(2)),
            GateKind::CX => e.cx(q, op.qubits[1]),
            GateKind::CZ => {
                let t = op.qubits[1];
                e.h(t);
                e.cx(q, t);
                e.h(t);
            }
            GateKind::CY => {
                let t = op.qubits[1];
                e.rz(t, Param::Fixed(-FRAC_PI_2));
                e.cx(q, t);
                e.rz(t, Param::Fixed(FRAC_PI_2));
            }
            GateKind::CH => e.cu3(
                q,
                op.qubits[1],
                Param::Fixed(FRAC_PI_2),
                Param::Fixed(0.0),
                Param::Fixed(PI),
            ),
            GateKind::Swap => {
                let t = op.qubits[1];
                e.cx(q, t);
                e.cx(t, q);
                e.cx(q, t);
            }
            GateKind::SqrtSwap => {
                let t = op.qubits[1];
                // √SWAP = e^{iπ/8} RXX(π/4) RYY(π/4) RZZ(π/4) (commuting).
                emit_rxx(&mut e, q, t, Param::Fixed(PI / 4.0));
                emit_ryy(&mut e, q, t, Param::Fixed(PI / 4.0));
                e.rzz(q, t, Param::Fixed(PI / 4.0));
            }
            GateKind::CRX => e.cu3(
                q,
                op.qubits[1],
                p(0),
                Param::Fixed(-FRAC_PI_2),
                Param::Fixed(FRAC_PI_2),
            ),
            GateKind::CRY => e.cu3(q, op.qubits[1], p(0), Param::Fixed(0.0), Param::Fixed(0.0)),
            GateKind::CRZ => {
                // CRZ(θ) = RZ(θ/2)_t · CX · RZ(−θ/2)_t · CX (exact).
                let t = op.qubits[1];
                e.rz(t, p(0).affine(0.5, 0.0));
                e.cx(q, t);
                e.rz(t, p(0).affine(-0.5, 0.0));
                e.cx(q, t);
            }
            GateKind::CU1 => {
                // CU1(λ) = RZ(λ/2)_c · RZ(λ/2)_t · CX · RZ(−λ/2)_t · CX.
                let t = op.qubits[1];
                e.rz(q, p(0).affine(0.5, 0.0));
                e.rz(t, p(0).affine(0.5, 0.0));
                e.cx(q, t);
                e.rz(t, p(0).affine(-0.5, 0.0));
                e.cx(q, t);
            }
            GateKind::CU3 => e.cu3(q, op.qubits[1], p(0), p(1), p(2)),
            GateKind::RZZ => e.rzz(q, op.qubits[1], p(0)),
            GateKind::RZX => {
                let t = op.qubits[1];
                e.h(t);
                e.rzz(q, t, p(0));
                e.h(t);
            }
            GateKind::RXX => emit_rxx(&mut e, q, op.qubits[1], p(0)),
            GateKind::RYY => emit_ryy(&mut e, q, op.qubits[1], p(0)),
        }
    }
    let mut out = e.out;
    // Preserve the declared trainable width even if high indices vanished.
    if out.num_train_params() < circuit.num_train_params() {
        out.set_num_train_params(circuit.num_train_params());
    }
    out
}

fn emit_rxx(e: &mut Emitter, a: usize, b: usize, theta: Param) {
    e.h(a);
    e.h(b);
    e.rzz(a, b, theta);
    e.h(a);
    e.h(b);
}

fn emit_ryy(e: &mut Emitter, a: usize, b: usize, theta: Param) {
    // Y = C Z C† with C = RX(−π/2): conjugate RZZ by RX(π/2) on both.
    for q in [a, b] {
        e.u3(
            q,
            Param::Fixed(FRAC_PI_2),
            Param::Fixed(-FRAC_PI_2),
            Param::Fixed(FRAC_PI_2),
        );
    }
    e.rzz(a, b, theta);
    for q in [a, b] {
        e.u3(
            q,
            Param::Fixed(-FRAC_PI_2),
            Param::Fixed(-FRAC_PI_2),
            Param::Fixed(FRAC_PI_2),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_sim::{run, ExecMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fidelity between the original and compiled circuit on a random
    /// product-state input (global phase cancels).
    fn check_gate(kind: GateKind, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nq = kind.num_qubits().max(2);
        let mut c = Circuit::new(nq);
        // Random preamble so we don't test on |0..0> only.
        for q in 0..nq {
            c.push(
                GateKind::U3,
                &[q],
                &[
                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                    Param::Fixed(rng.gen_range(-3.0..3.0)),
                ],
            );
        }
        let qs: Vec<usize> = (0..kind.num_qubits()).collect();
        let ps: Vec<Param> = (0..kind.num_params())
            .map(|_| Param::Fixed(rng.gen_range(-3.0..3.0)))
            .collect();
        c.push(kind, &qs, &ps);

        let compiled = to_ibm_basis(&c);
        for op in compiled.iter() {
            assert!(
                matches!(
                    op.kind,
                    GateKind::CX | GateKind::SX | GateKind::RZ | GateKind::X
                ),
                "{} leaked non-basis gate {}",
                kind,
                op.kind
            );
        }
        let a = run(&c, &[], &[], ExecMode::Dynamic);
        let b = run(&compiled, &[], &[], ExecMode::Dynamic);
        let f = a.inner(&b).abs();
        assert!((f - 1.0).abs() < 1e-9, "{kind}: fidelity {f}");
    }

    #[test]
    fn every_gate_compiles_exactly() {
        for (i, &kind) in GateKind::all().iter().enumerate() {
            for rep in 0..3 {
                check_gate(kind, (i * 10 + rep) as u64);
            }
        }
    }

    #[test]
    fn table_ii_u3_gate_counts() {
        // The paper's Table II: #compiled gates per zeroed-parameter pattern.
        let cases: [(f64, f64, f64, usize); 6] = [
            (0.3, 0.4, 0.5, 5), // (θ, φ, λ)
            (0.0, 0.4, 0.5, 1), // (0, φ, λ)
            (0.3, 0.4, 0.0, 4), // (θ, φ, 0)
            (0.3, 0.0, 0.0, 4), // (θ, 0, 0)
            (0.0, 0.4, 0.0, 1), // (0, φ, 0)
            (0.0, 0.0, 0.5, 1), // (0, 0, λ)
        ];
        for (theta, phi, lambda, expected) in cases {
            let mut c = Circuit::new(1);
            c.push(
                GateKind::U3,
                &[0],
                &[Param::Fixed(theta), Param::Fixed(phi), Param::Fixed(lambda)],
            );
            let n = to_ibm_basis(&c).num_ops();
            assert_eq!(
                n, expected,
                "U3({theta},{phi},{lambda}) compiled to {n} gates"
            );
        }
    }

    #[test]
    fn symbolic_params_survive_compilation() {
        let mut c = Circuit::new(2);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        c.push(
            GateKind::CU3,
            &[0, 1],
            &[Param::Train(0), Param::Train(1), Param::Train(2)],
        );
        let compiled = to_ibm_basis(&c);
        assert_eq!(compiled.num_train_params(), 3);
        assert_eq!(compiled.num_inputs(), 1);
        // Equivalence at several parameter points.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let train: Vec<f64> = (0..3).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let input = vec![rng.gen_range(-3.0..3.0)];
            let a = run(&c, &train, &input, ExecMode::Dynamic);
            let b = run(&compiled, &train, &input, ExecMode::Dynamic);
            let f = a.inner(&b).abs();
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
        }
    }

    #[test]
    fn zyz_roundtrip_on_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let (t, p, l) = (
                rng.gen_range(0.0..PI),
                rng.gen_range(-PI..PI),
                rng.gen_range(-PI..PI),
            );
            let m = match GateKind::U3.matrix(&[t, p, l]) {
                qns_circuit::GateMatrix::One(m) => m,
                _ => unreachable!(),
            };
            let (alpha, t2, p2, l2) = zyz_angles(&m);
            let rebuilt = match GateKind::U3.matrix(&[t2, p2, l2]) {
                qns_circuit::GateMatrix::One(m) => m,
                _ => unreachable!(),
            };
            let phased = rebuilt.scale(qns_tensor::C64::cis(alpha));
            assert!(phased.approx_eq(&m, 1e-8), "zyz roundtrip failed");
        }
    }

    #[test]
    fn identity_gates_compile_to_nothing() {
        let mut c = Circuit::new(1);
        c.push(GateKind::I, &[0], &[]);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(0.0)]);
        c.push(GateKind::RZ, &[0], &[Param::Fixed(TWO_PI)]);
        assert_eq!(to_ibm_basis(&c).num_ops(), 0);
    }
}
