//! SABRE-style routing: SWAP insertion for the device coupling map.

use crate::{distance_matrix, Layout, TranspileError};
use qns_circuit::{Circuit, GateKind};
use qns_noise::Device;

/// How many upcoming two-qubit gates the swap heuristic looks ahead.
const LOOKAHEAD: usize = 8;
/// Weight of lookahead terms relative to the current gate's distance.
const LOOKAHEAD_WEIGHT: f64 = 0.5;

/// The output of [`route`]: a physical-qubit circuit plus the final
/// positions of the logical qubits (SWAPs move them around).
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// Circuit over the full device width; every two-qubit gate acts on a
    /// coupled pair. SWAP gates are left symbolic (`GateKind::Swap`) for the
    /// basis pass to expand.
    pub circuit: Circuit,
    /// `final_phys_of[l]` = physical qubit holding logical `l` at the end.
    pub final_phys_of: Vec<usize>,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
}

/// Routes a logical circuit onto `device` starting from `layout`, inserting
/// SWAPs so every two-qubit gate acts on coupled qubits.
///
/// The heuristic is SABRE-flavored: when the next two-qubit gate is not
/// executable, candidate SWAPs on edges adjacent to either operand are
/// scored by the resulting coupling distance of the current gate plus a
/// discounted sum over the next `LOOKAHEAD` (8) two-qubit gates; the
/// lexicographically best candidate is applied. Because the swap that walks
/// one operand along a shortest path is always a candidate, distance to the
/// current gate strictly decreases and routing terminates.
///
/// # Panics
///
/// Panics if the layout width differs from the circuit width or maps
/// outside the device. Search loops feeding *searched* (possibly invalid)
/// layouts should call [`try_route`] instead.
pub fn route(circuit: &Circuit, device: &Device, layout: &Layout) -> RoutedCircuit {
    match try_route(circuit, device, layout) {
        Ok(routed) => routed,
        // lint:allow(no-panic) — documented panicking wrapper over `try_route`
        Err(e) => panic!("routing failed: {e}"),
    }
}

/// [`route`], but invalid input comes back as a [`TranspileError`] instead
/// of a panic — the form the search loop wants, since searched layouts are
/// untrusted data, not programmer invariants.
pub fn try_route(
    circuit: &Circuit,
    device: &Device,
    layout: &Layout,
) -> Result<RoutedCircuit, TranspileError> {
    if layout.num_logical() != circuit.num_qubits() {
        return Err(TranspileError::LayoutWidthMismatch {
            layout: layout.num_logical(),
            circuit: circuit.num_qubits(),
        });
    }
    if !layout.is_valid_for(device) {
        return Err(TranspileError::InvalidLayout {
            reason: format!(
                "layout {:?} maps outside device {} ({} qubits)",
                layout.as_slice(),
                device.name(),
                device.num_qubits()
            ),
        });
    }
    let dist = distance_matrix(device);
    let n_phys = device.num_qubits();

    let mut l2p: Vec<usize> = layout.as_slice().to_vec();
    let mut out = Circuit::new(n_phys);
    let mut swaps = 0usize;

    // Pre-collect the positions of 2q ops for lookahead.
    let ops: Vec<_> = circuit.iter().collect();
    let two_q_indices: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.num_qubits() == 2)
        .map(|(i, _)| i)
        .collect();

    for (op_idx, op) in ops.iter().enumerate() {
        match op.num_qubits() {
            1 => {
                out.push(op.kind, &[l2p[op.qubits[0]]], &op.params);
            }
            2 => {
                let (la, lb) = (op.qubits[0], op.qubits[1]);
                // Insert SWAPs until the operands are adjacent.
                while dist[l2p[la]][l2p[lb]] > 1 {
                    let (pa, pb) = (l2p[la], l2p[lb]);
                    // Candidate swaps: edges adjacent to either operand.
                    let mut best: Option<((usize, usize), (usize, f64))> = None;
                    for &anchor in &[pa, pb] {
                        for nb in device.neighbors(anchor) {
                            let (x, y) = (anchor, nb);
                            // Simulate the swap on a scratch mapping.
                            let swap_pos = |p: usize| {
                                if p == x {
                                    y
                                } else if p == y {
                                    x
                                } else {
                                    p
                                }
                            };
                            let cur = dist[swap_pos(pa)][swap_pos(pb)];
                            let mut look = 0.0;
                            let mut weight = LOOKAHEAD_WEIGHT;
                            let upcoming = two_q_indices
                                .iter()
                                .filter(|&&i| i > op_idx)
                                .take(LOOKAHEAD);
                            for &i in upcoming {
                                let g = ops[i];
                                let (ga, gb) = (l2p[g.qubits[0]], l2p[g.qubits[1]]);
                                look += weight * dist[swap_pos(ga)][swap_pos(gb)] as f64;
                                weight *= 0.8;
                            }
                            let score = (cur, look);
                            let better = match &best {
                                None => true,
                                Some((_, (bc, bl))) => {
                                    score.0 < *bc || (score.0 == *bc && score.1 < *bl - 1e-12)
                                }
                            };
                            if better {
                                best = Some(((x, y), score));
                            }
                        }
                    }
                    // On a connected coupling graph a shortest-path swap is
                    // always a candidate; no candidate or no progress means
                    // the operands are unreachable from each other.
                    let Some(((x, y), (after, _))) = best else {
                        return Err(TranspileError::RoutingStuck { op_index: op_idx });
                    };
                    if after >= dist[pa][pb] {
                        return Err(TranspileError::RoutingStuck { op_index: op_idx });
                    }
                    out.push(GateKind::Swap, &[x, y], &[]);
                    swaps += 1;
                    // Update the mapping: any logical on x/y moves.
                    for p in l2p.iter_mut() {
                        if *p == x {
                            *p = y;
                        } else if *p == y {
                            *p = x;
                        }
                    }
                }
                out.push(op.kind, &[l2p[la], l2p[lb]], &op.params);
            }
            _ => unreachable!("gates are 1q or 2q"),
        }
    }

    Ok(RoutedCircuit {
        circuit: out,
        final_phys_of: l2p,
        swaps_inserted: swaps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::Param;
    use qns_sim::{run, ExecMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference semantics: simulate the routed circuit over the device
    /// width and compare logical-qubit expectations against the unrouted
    /// circuit, accounting for final positions.
    fn check_equivalent(circuit: &Circuit, device: &Device, layout: &Layout) {
        let routed = route(circuit, device, layout);
        // Every 2q gate must act on a coupled pair.
        for op in routed.circuit.iter() {
            if op.num_qubits() == 2 {
                assert!(
                    device.connected(op.qubits[0], op.qubits[1]),
                    "gate on uncoupled pair {:?}",
                    &op.qubits
                );
            }
        }
        let ideal = run(circuit, &[], &[], ExecMode::Dynamic);
        let physical = run(&routed.circuit, &[], &[], ExecMode::Dynamic);
        for l in 0..circuit.num_qubits() {
            let e_ideal = ideal.expect_z(l);
            let e_phys = physical.expect_z(routed.final_phys_of[l]);
            assert!(
                (e_ideal - e_phys).abs() < 1e-9,
                "logical {l}: {e_ideal} vs {e_phys}"
            );
        }
    }

    fn random_logical(n: usize, ops: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..ops {
            if rng.gen_bool(0.5) {
                let q = rng.gen_range(0..n);
                c.push(
                    GateKind::RY,
                    &[q],
                    &[Param::Fixed(rng.gen_range(-3.0..3.0))],
                );
            } else {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(GateKind::CX, &[a, b], &[]);
            }
        }
        c
    }

    #[test]
    fn routing_preserves_semantics_on_line() {
        let dev = Device::santiago();
        for seed in 0..5 {
            let c = random_logical(5, 20, seed);
            check_equivalent(&c, &dev, &Layout::trivial(5));
        }
    }

    #[test]
    fn routing_preserves_semantics_on_plus_and_t() {
        for dev in [Device::yorktown(), Device::belem()] {
            for seed in 10..13 {
                let c = random_logical(5, 15, seed);
                check_equivalent(&c, &dev, &Layout::trivial(5));
            }
        }
    }

    #[test]
    fn routing_with_nontrivial_layout() {
        let dev = Device::santiago();
        let layout = Layout::from_vec(vec![4, 0, 2]);
        let c = random_logical(3, 12, 77);
        check_equivalent(&c, &dev, &layout);
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let dev = Device::santiago();
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[1, 0], &[]);
        let routed = route(&c, &dev, &Layout::trivial(2));
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.final_phys_of, vec![0, 1]);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let dev = Device::santiago();
        let mut c = Circuit::new(5);
        c.push(GateKind::CX, &[0, 4], &[]);
        let routed = route(&c, &dev, &Layout::trivial(5));
        assert!(routed.swaps_inserted >= 3, "0 and 4 are distance 4 apart");
    }

    #[test]
    fn routing_on_larger_device() {
        let dev = Device::guadalupe();
        let c = random_logical(8, 30, 5);
        let layout = Layout::from_vec((0..8).collect());
        let routed = route(&c, &dev, &layout);
        for op in routed.circuit.iter() {
            if op.num_qubits() == 2 {
                assert!(device_connected(&dev, op.qubits[0], op.qubits[1]));
            }
        }
    }

    fn device_connected(dev: &Device, a: usize, b: usize) -> bool {
        dev.connected(a, b)
    }
}
