//! Verified-transpile tests: the pass contracts accept every honest
//! pipeline run and catch injected miscompiles.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::Device;
use qns_transpile::{route, transpile_with, Layout, TranspileError, TranspileOptions};
use qns_verify::{verify_circuit, PassContract, Rule, VerifyLevel};

#[derive(Debug, Clone)]
struct OpSpec {
    kind_idx: usize,
    a: usize,
    b: usize,
    vals: Vec<f64>,
    // 0 = fixed, 1 = trainable, 2 = input
    param_mode: usize,
}

fn arb_ops(n_qubits: usize, max_ops: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    prop::collection::vec(
        (
            0usize..8,
            0..n_qubits,
            0..n_qubits,
            prop::collection::vec(-3.0..3.0f64, 3),
            0usize..3,
        ),
        1..max_ops,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(kind_idx, a, b, vals, param_mode)| OpSpec {
                kind_idx,
                a,
                b,
                vals,
                param_mode,
            })
            .collect()
    })
}

/// Builds a legal logical circuit, mixing fixed, trainable, and input
/// parameters so contract checks see symbolic slots.
fn build(n_qubits: usize, ops: &[OpSpec]) -> Circuit {
    let pool = [
        GateKind::H,
        GateKind::RX,
        GateKind::RY,
        GateKind::U3,
        GateKind::CX,
        GateKind::CU3,
        GateKind::RZZ,
        GateKind::CZ,
    ];
    let mut c = Circuit::new(n_qubits);
    let mut next_train = 0usize;
    let mut next_input = 0usize;
    for spec in ops {
        let kind = pool[spec.kind_idx];
        let qs: Vec<usize> = if kind.num_qubits() == 1 {
            vec![spec.a]
        } else if spec.a != spec.b {
            vec![spec.a, spec.b]
        } else {
            vec![spec.a, (spec.a + 1) % n_qubits]
        };
        let ps: Vec<Param> = (0..kind.num_params())
            .map(|k| match spec.param_mode {
                1 => {
                    next_train += 1;
                    Param::Train(next_train - 1)
                }
                2 => {
                    next_input += 1;
                    Param::Input(next_input - 1)
                }
                _ => Param::Fixed(spec.vals[k]),
            })
            .collect();
        c.push(kind, &qs, &ps);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits transpile verified-clean at [`VerifyLevel::Full`]
    /// across random devices, layouts, and every optimization level.
    #[test]
    fn random_transpiles_verify_clean(
        ops in arb_ops(4, 12),
        dev_idx in 0usize..12,
        layout_seed in 0u64..1000,
        opt in 0u8..=3,
    ) {
        use rand::SeedableRng;
        let circuit = build(4, &ops);
        prop_assert!(verify_circuit(&circuit).is_clean());
        let device = Device::all()[dev_idx].clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(layout_seed);
        let layout = Layout::random(4, &device, &mut rng);
        let opts = TranspileOptions::verified(VerifyLevel::Full);
        let t = transpile_with(&circuit, &device, &layout, opt, opts);
        prop_assert!(t.is_ok(), "{:?}", t.err());
    }
}

/// Deterministic sweep: every shipped device, every optimization level,
/// with full verification on — the "no false positives" guarantee the
/// search loop relies on.
#[test]
fn all_devices_all_opt_levels_verify_clean() {
    let specs: Vec<OpSpec> = (0..10)
        .map(|i| OpSpec {
            kind_idx: i % 8,
            a: i % 4,
            b: (i + 1) % 4,
            vals: vec![0.3 + i as f64 * 0.17, -0.9, 1.1],
            param_mode: i % 3,
        })
        .collect();
    let circuit = build(4, &specs);
    let devices = Device::all();
    assert!(devices.len() >= 11, "expected the full synthetic fleet");
    for device in &devices {
        for opt in 0..=3 {
            let opts = TranspileOptions::verified(VerifyLevel::Full);
            let t = transpile_with(&circuit, device, &Layout::trivial(4), opt, opts);
            assert!(t.is_ok(), "{} at opt {opt}: {:?}", device.name(), t.err());
        }
    }
}

/// The acceptance-criterion regression: a routing pass that silently drops
/// a SWAP is caught by the route contract (`QC102`), not by simulation.
#[test]
fn dropped_swap_is_caught() {
    let device = Device::santiago();
    let mut c = Circuit::new(5);
    c.push(GateKind::RY, &[0], &[Param::Train(0)]);
    c.push(GateKind::CX, &[0, 4], &[]); // distance 4 on the line: needs SWAPs
    let layout = Layout::trivial(5);
    let routed = route(&c, &device, &layout);
    assert!(routed.swaps_inserted >= 3);

    let pc = PassContract::new(&c, &device, VerifyLevel::Contracts);
    assert!(
        pc.check_routed(layout.as_slice(), &routed.circuit, &routed.final_phys_of)
            .is_clean(),
        "honest routing must pass"
    );

    // A buggy router: identical output minus the first inserted SWAP.
    let mut doctored = Circuit::new(routed.circuit.num_qubits());
    let mut dropped = false;
    for op in routed.circuit.iter() {
        if !dropped && op.kind == GateKind::Swap {
            dropped = true;
            continue;
        }
        doctored.push(op.kind, &op.qubits[..op.num_qubits()], &op.params);
    }
    assert!(dropped);
    let report = pc.check_routed(layout.as_slice(), &doctored, &routed.final_phys_of);
    assert!(
        !report.with_rule(Rule::ContractGateLoss).is_empty(),
        "dropped SWAP must trip QC102: {report}"
    );
}

/// Misreported final mappings (the other half of a SWAP miscompile) also
/// trip the route contract.
#[test]
fn wrong_final_mapping_is_caught() {
    let device = Device::athens();
    let mut c = Circuit::new(5);
    c.push(GateKind::CX, &[0, 3], &[]);
    let layout = Layout::trivial(5);
    let routed = route(&c, &device, &layout);
    let pc = PassContract::new(&c, &device, VerifyLevel::Contracts);
    let mut wrong = routed.final_phys_of.clone();
    wrong.swap(0, 1);
    let report = pc.check_routed(layout.as_slice(), &routed.circuit, &wrong);
    assert!(!report.with_rule(Rule::ContractGateLoss).is_empty());
}

/// Invalid layouts come back as typed errors from the verified pipeline.
#[test]
fn invalid_layouts_are_typed_errors() {
    let mut c = Circuit::new(2);
    c.push(GateKind::CX, &[0, 1], &[]);
    let device = Device::belem();
    let opts = TranspileOptions::default();

    let wide = Layout::trivial(3);
    match transpile_with(&c, &device, &wide, 2, opts) {
        Err(TranspileError::LayoutWidthMismatch {
            layout: 3,
            circuit: 2,
        }) => {}
        other => panic!("expected width mismatch, got {other:?}"),
    }

    let outside = Layout::from_vec(vec![0, 40]);
    match transpile_with(&c, &device, &outside, 2, opts) {
        Err(TranspileError::InvalidLayout { .. }) => {}
        other => panic!("expected invalid layout, got {other:?}"),
    }

    // With verification on, the contract reports it as QC101 instead.
    let verified = TranspileOptions::verified(VerifyLevel::Contracts);
    match transpile_with(&c, &device, &outside, 2, verified) {
        Err(TranspileError::Verify(e)) => {
            assert_eq!(e.first().rule, Rule::ContractInvalidLayout);
        }
        other => panic!("expected verify error, got {other:?}"),
    }
}

/// Seeded illegal circuits trip the expected rule codes end to end.
#[test]
fn illegal_circuits_report_stable_codes() {
    // Out-of-range qubit → QV001.
    let mut c = Circuit::new(2);
    c.push_unchecked(GateKind::X, &[5], &[]);
    let r = verify_circuit(&c);
    assert!(!r.with_rule(Rule::QubitOutOfRange).is_empty(), "{r}");

    // Non-adjacent CX on a line device → QV007.
    let mut c = Circuit::new(5);
    c.push(GateKind::CX, &[0, 4], &[]);
    let r = qns_verify::verify_coupling(&c, &Device::santiago(), None);
    assert!(!r.with_rule(Rule::UncoupledGate).is_empty(), "{r}");

    // NaN parameter → non-finite (QV004) and non-unitary (QV006).
    let mut c = Circuit::new(1);
    c.push(GateKind::RX, &[0], &[Param::Fixed(f64::NAN)]);
    let r = verify_circuit(&c);
    assert!(!r.with_rule(Rule::NonFiniteParam).is_empty(), "{r}");
    assert!(!r.with_rule(Rule::NonUnitaryMatrix).is_empty(), "{r}");
}
