//! Property-based tests: the transpiler preserves semantics on arbitrary
//! circuits, devices, and layouts.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::Device;
use qns_sim::{run, ExecMode};
use qns_transpile::{transpile, Layout};

#[derive(Debug, Clone)]
struct OpSpec {
    kind_idx: usize,
    a: usize,
    b: usize,
    vals: Vec<f64>,
}

fn arb_ops(n_qubits: usize, max_ops: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    prop::collection::vec(
        (
            0usize..8,
            0..n_qubits,
            0..n_qubits,
            prop::collection::vec(-3.0..3.0f64, 3),
        ),
        1..max_ops,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(kind_idx, a, b, vals)| OpSpec {
                kind_idx,
                a,
                b,
                vals,
            })
            .collect()
    })
}

fn build(n_qubits: usize, ops: &[OpSpec]) -> Circuit {
    let pool = [
        GateKind::H,
        GateKind::RX,
        GateKind::RY,
        GateKind::U3,
        GateKind::CX,
        GateKind::CU3,
        GateKind::RZZ,
        GateKind::CZ,
    ];
    let mut c = Circuit::new(n_qubits);
    for spec in ops {
        let kind = pool[spec.kind_idx];
        let qs: Vec<usize> = if kind.num_qubits() == 1 {
            vec![spec.a]
        } else if spec.a != spec.b {
            vec![spec.a, spec.b]
        } else {
            vec![spec.a, (spec.a + 1) % n_qubits]
        };
        let ps: Vec<Param> = (0..kind.num_params())
            .map(|k| Param::Fixed(spec.vals[k]))
            .collect();
        c.push(kind, &qs, &ps);
    }
    c
}

fn devices() -> Vec<Device> {
    vec![Device::yorktown(), Device::belem(), Device::santiago()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transpilation preserves every logical <Z> on every 5-qubit device,
    /// at every optimization level, for arbitrary circuits.
    #[test]
    fn transpile_preserves_logical_expectations(
        ops in arb_ops(4, 12),
        dev_idx in 0usize..3,
        opt in 0u8..=3,
    ) {
        let circuit = build(4, &ops);
        let device = devices()[dev_idx].clone();
        let t = transpile(&circuit, &device, &Layout::trivial(4), opt);
        let ideal = run(&circuit, &[], &[], ExecMode::Static);
        let compiled = run(&t.circuit, &[], &[], ExecMode::Static);
        for l in 0..4 {
            let a = ideal.expect_z(l);
            let b = compiled.expect_z(t.dense_of_logical[l]);
            prop_assert!((a - b).abs() < 1e-7, "logical {l}: {a} vs {b}");
        }
    }

    /// Every two-qubit gate in the output respects the coupling map, for
    /// arbitrary (valid) initial layouts.
    #[test]
    fn routing_respects_coupling(
        ops in arb_ops(4, 10),
        perm_seed in 0u64..50,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let circuit = build(4, &ops);
        let device = Device::yorktown();
        let mut phys: Vec<usize> = (0..5).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        phys.shuffle(&mut rng);
        phys.truncate(4);
        let layout = Layout::from_vec(phys);
        let t = transpile(&circuit, &device, &layout, 2);
        for op in t.circuit.iter() {
            if op.num_qubits() == 2 {
                prop_assert!(device.connected(
                    t.phys_of[op.qubits[0]],
                    t.phys_of[op.qubits[1]]
                ));
            }
        }
    }

    /// Optimization level 1+ never grows the gate count.
    #[test]
    fn optimization_never_grows(ops in arb_ops(4, 12)) {
        let circuit = build(4, &ops);
        let device = Device::belem();
        let l0 = transpile(&circuit, &device, &Layout::trivial(4), 0);
        let l2 = transpile(&circuit, &device, &Layout::trivial(4), 2);
        prop_assert!(l2.circuit.num_ops() <= l0.circuit.num_ops());
    }

    /// The output basis is exactly {CX, SX, RZ, X}.
    #[test]
    fn output_is_in_ibm_basis(ops in arb_ops(3, 10)) {
        let circuit = build(3, &ops);
        let t = transpile(&circuit, &Device::santiago(), &Layout::trivial(3), 2);
        for op in t.circuit.iter() {
            prop_assert!(matches!(
                op.kind,
                GateKind::CX | GateKind::SX | GateKind::RZ | GateKind::X
            ));
        }
    }
}
