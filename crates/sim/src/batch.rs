//! Thread-parallel batch evaluation over the persistent worker pool.

use crate::pool;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, TryRecvError};
use std::sync::OnceLock;
use std::time::Duration;

thread_local! {
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide worker-count override for [`parallel_map`]; 0 means
/// "auto" (use the detected core count). An `AtomicUsize`, not a
/// `OnceLock`, so a `--workers` flag can change it at any point in the
/// process — the original `OnceLock` latched the first value forever.
static PARALLELISM_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Hard floor below which [`parallel_map`] never consults the pool: maps
/// of 1–3 items run inline on the caller, full stop. Guarantees tiny maps
/// stay allocation- and synchronization-free regardless of what the
/// overhead calibration says.
pub const MIN_PARALLEL_ITEMS: usize = 4;

/// Default per-item work estimate (nanoseconds) for callers that pass no
/// hint: roughly one 8-qubit forward simulation. Callers with much
/// lighter items should use [`parallel_map_hinted`] with a real estimate.
const DEFAULT_ITEM_HINT_NS: u64 = 100_000;

/// Sets the process-wide worker count used by [`parallel_map`] when no
/// explicit count is passed. `0` restores auto-detection.
pub fn set_parallelism(workers: usize) {
    PARALLELISM_OVERRIDE.store(workers, Ordering::Relaxed);
}

/// Queries `available_parallelism` once per process: the core count does
/// not change under us, and the syscall is not free on the per-minibatch
/// hot path. (User-facing worker settings go through the override in
/// [`set_parallelism`] instead, which stays mutable.)
fn cached_parallelism() -> usize {
    static PARALLELISM: OnceLock<usize> = OnceLock::new();
    *PARALLELISM.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with [`parallel_map`] forced sequential on this thread.
///
/// Outer-level parallelism (e.g. a candidate-evaluation engine fanning a
/// population over workers) already saturates the cores; letting each
/// worker dispatch its own per-sample chunks would oversubscribe. The flag
/// is thread-local, so it must be set inside the worker closure, and it is
/// restored on exit even if `f` panics.
pub fn sequential_scope<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|flag| flag.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SEQUENTIAL.with(|flag| flag.replace(true)));
    f()
}

/// Items below which a dispatch is not worth it for the given per-item
/// work estimate: fanning out must buy back at least ~4 dispatch
/// round-trips of work, and the [`MIN_PARALLEL_ITEMS`] floor always
/// applies. Clamped so absurd hints cannot disable parallelism entirely.
fn parallel_cutoff(per_item_ns: u64) -> usize {
    let overhead = pool::dispatch_overhead_ns();
    let hint = per_item_ns.max(1);
    (overhead.saturating_mul(4).div_ceil(hint) as usize).clamp(MIN_PARALLEL_ITEMS, 4096)
}

/// Applies `f` to every item of `items`, splitting the work across the
/// persistent worker pool, and returns results in input order.
///
/// This is the batching primitive behind QML training: per-sample state
/// simulations are independent, so they map across cores as pool chunks.
/// Falls back to a sequential loop for tiny batches.
///
/// # Examples
///
/// ```
/// let squares = qns_sim::parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count. `workers == 0` defers
/// to the process-wide override from [`set_parallelism`], then to the
/// detected core count. [`sequential_scope`] still wins over everything:
/// a worker thread inside an outer engine must never fan out again.
pub fn parallel_map_with<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_hinted(items, workers, DEFAULT_ITEM_HINT_NS, f)
}

/// [`parallel_map_with`] with a per-item work estimate in nanoseconds.
///
/// The estimate feeds the tiny-batch cutoff: batches whose total work
/// cannot amortize the measured pool dispatch cost run inline instead.
/// The hint only gates *whether* to fan out — results are identical (and
/// in input order) either way.
pub fn parallel_map_hinted<T, U, F>(items: &[T], workers: usize, per_item_ns: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let requested = if workers > 0 {
        workers
    } else {
        match PARALLELISM_OVERRIDE.load(Ordering::Relaxed) {
            0 => cached_parallelism(),
            n => n,
        }
    };
    let threads = if FORCE_SEQUENTIAL.with(Cell::get) {
        1
    } else {
        requested.min(items.len().max(1))
    };
    // The MIN_PARALLEL_ITEMS floor comes first so 1–3-item maps return
    // before any pool access (including the overhead calibration).
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(&f).collect();
    }
    if items.len() < parallel_cutoff(per_item_ns) {
        return items.iter().map(&f).collect();
    }
    dispatch_chunks(items, threads, &f)
}

/// Fans `items` out as `threads` chunks: chunk 0 runs on the caller, the
/// rest go to the pool; results are reassembled in chunk order, and the
/// first panic (in chunk order, matching the old scoped `join` order) is
/// re-raised after every chunk has reported.
fn dispatch_chunks<T, U, F>(items: &[T], threads: usize, f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let chunk_size = items.len().div_ceil(threads);
    let (tx, rx) = channel::<(usize, std::thread::Result<Vec<U>>)>();

    let mut chunks = items.chunks(chunk_size);
    let own = chunks.next().expect("batch is non-empty here");
    let mut n_jobs = 0;
    for (idx, chunk) in chunks.enumerate() {
        let tx = tx.clone();
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let part = catch_unwind(AssertUnwindSafe(|| chunk.iter().map(f).collect::<Vec<U>>()));
            let _ = tx.send((idx + 1, part));
        });
        // SAFETY: the job borrows `items` and `f` from this frame. Erasing
        // the lifetime is sound because every job sends exactly one message
        // on `tx` as its final action (the closure never unwinds past the
        // `catch_unwind`), and this function does not return or unwind
        // before receiving exactly `n_jobs` messages below — so no job can
        // outlive the borrowed data.
        pool::submit(unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, pool::Job>(job)
        });
        n_jobs += 1;
    }
    pool::ensure_workers(n_jobs);

    // Run our own chunk, catching panics so the drain below always runs.
    let own_part = catch_unwind(AssertUnwindSafe(|| own.iter().map(f).collect::<Vec<U>>()));

    // Drain every outstanding chunk, helping with queued jobs while
    // waiting so nested dispatches on a saturated pool cannot deadlock.
    // `tx` stays alive in this frame, so the channel cannot disconnect.
    let mut parts: Vec<Option<std::thread::Result<Vec<U>>>> =
        (0..n_jobs + 1).map(|_| None).collect();
    parts[0] = Some(own_part);
    let mut received = 0;
    while received < n_jobs {
        match rx.try_recv() {
            Ok((idx, part)) => {
                parts[idx] = Some(part);
                received += 1;
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {
                if !pool::try_help() {
                    if let Ok((idx, part)) = rx.recv_timeout(Duration::from_micros(200)) {
                        parts[idx] = Some(part);
                        received += 1;
                    }
                }
            }
        }
    }

    let mut out: Vec<U> = Vec::with_capacity(items.len());
    for part in parts {
        match part.expect("every chunk reported above") {
            Ok(mut p) => out.append(&mut p),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Thread-identity assertions share the process-global pool, so they
    /// serialize against each other; result-value tests don't need to.
    static POOL_IDENTITY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], |&x| x * 2), vec![84]);
    }

    #[test]
    fn tiny_batches_never_touch_the_pool() {
        let _serial = POOL_IDENTITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let caller = std::thread::current().id();
        // Below MIN_PARALLEL_ITEMS the map must run inline even with an
        // explicit worker request and a zero-cost work hint.
        for n in 1..MIN_PARALLEL_ITEMS {
            let items: Vec<usize> = (0..n).collect();
            let ids = parallel_map_hinted(&items, 8, 1, |_| std::thread::current().id());
            assert!(
                ids.iter().all(|&id| id == caller),
                "{n}-item map must stay on the calling thread"
            );
        }
    }

    #[test]
    fn cheap_items_run_inline_past_the_floor() {
        let _serial = POOL_IDENTITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let caller = std::thread::current().id();
        // 8 one-nanosecond items can never amortize a dispatch: the
        // overhead-derived cutoff keeps them inline. (The cutoff's lower
        // clamp is MIN_PARALLEL_ITEMS, and real dispatch overhead is
        // thousands of nanoseconds, so 4 * overhead / 1ns >> 8.)
        let items: Vec<usize> = (0..8).collect();
        let ids = parallel_map_hinted(&items, 8, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn sequential_scope_suppresses_and_restores_parallelism() {
        let items: Vec<usize> = (0..64).collect();
        let inner = sequential_scope(|| {
            assert!(super::FORCE_SEQUENTIAL.with(Cell::get));
            parallel_map(&items, |&x| x * 2)
        });
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
        assert_eq!(inner, parallel_map(&items, |&x| x * 2));
        // Restored even when the scope panics.
        let _ = std::panic::catch_unwind(|| sequential_scope(|| panic!("boom")));
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
    }

    #[test]
    fn explicit_worker_count_controls_fanout() {
        let _serial = POOL_IDENTITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<usize> = (0..64).collect();
        // workers = 1: everything runs on the calling thread.
        let caller = std::thread::current().id();
        let ids = parallel_map_with(&items, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        // workers = 3: results still in order, work crosses threads. The
        // caller runs chunk 0 itself and parked workers are committed to
        // the queue before jobs arrive, so at least one pool thread shows
        // up. Items are slow enough that the chunks overlap in time.
        let ids = parallel_map_hinted(&items, 3, 1_000_000, |_| {
            std::thread::sleep(Duration::from_micros(200));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "3 workers must actually fan out");
        assert_eq!(
            parallel_map_with(&items, 3, |&x| x * 2),
            items.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_parallelism_takes_effect_mid_process() {
        let _serial = POOL_IDENTITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Regression: the worker count used to be latched in a OnceLock at
        // first use, so a later `--workers 1` silently kept the old value.
        struct ResetOverride;
        impl Drop for ResetOverride {
            fn drop(&mut self) {
                set_parallelism(0);
            }
        }
        let _reset = ResetOverride;
        let items: Vec<usize> = (0..64).collect();
        let caller = std::thread::current().id();

        set_parallelism(4);
        let _warm = parallel_map(&items, |&x| x); // would latch a OnceLock
        set_parallelism(1);
        let ids = parallel_map(&items, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "override to 1 worker after first use must be honored"
        );
    }

    #[test]
    fn works_with_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, |s| s.to_string());
        assert_eq!(
            out,
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]
        );
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map_with(&items, 4, |&x| {
                if x == 37 {
                    panic!("sample {x} exploded");
                }
                x
            })
        });
        let payload = caught.expect_err("must propagate the worker panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with args carries a String payload");
        assert!(msg.contains("sample 37 exploded"), "{msg}");
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        // An outer map whose items each run an inner map: with a saturated
        // pool the inner callers must help drain the queue themselves.
        let outer: Vec<usize> = (0..8).collect();
        let out = parallel_map_hinted(&outer, 4, 10_000_000, |&x| {
            let inner: Vec<usize> = (0..32).collect();
            parallel_map_hinted(&inner, 4, 10_000_000, |&y| x * 100 + y)
                .into_iter()
                .sum::<usize>()
        });
        for (x, got) in out.iter().enumerate() {
            let want: usize = (0..32).map(|y| x * 100 + y).sum();
            assert_eq!(*got, want);
        }
    }
}
