//! Thread-parallel batch evaluation.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

thread_local! {
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Queries `available_parallelism` once per process: the core count does
/// not change under us, and the syscall is not free on the per-minibatch
/// hot path.
fn cached_parallelism() -> usize {
    static PARALLELISM: OnceLock<usize> = OnceLock::new();
    *PARALLELISM.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with [`parallel_map`] forced sequential on this thread.
///
/// Outer-level parallelism (e.g. a candidate-evaluation engine fanning a
/// population over workers) already saturates the cores; letting each
/// worker spawn its own per-sample threads would oversubscribe. The flag
/// is thread-local, so it must be set inside the worker closure, and it is
/// restored on exit even if `f` panics.
pub fn sequential_scope<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|flag| flag.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SEQUENTIAL.with(|flag| flag.replace(true)));
    f()
}

/// Applies `f` to every item of `items`, splitting the work across worker
/// threads, and returns results in input order.
///
/// This is the batching primitive behind QML training: per-sample state
/// simulations are independent, so they map across cores with plain scoped
/// threads. Falls back to a sequential loop for tiny batches.
///
/// # Examples
///
/// ```
/// let squares = qns_sim::parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = if FORCE_SEQUENTIAL.with(Cell::get) {
        1
    } else {
        cached_parallelism().min(items.len().max(1))
    };
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }

    // Each worker produces its chunk's results as an ordinary Vec; joining
    // in spawn order and appending keeps input order without an
    // Option-per-slot buffer or any uninitialized memory.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|item_chunk| {
                let f = &f;
                scope.spawn(move || item_chunk.iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mut part) => out.append(&mut part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], |&x| x * 2), vec![84]);
    }

    #[test]
    fn sequential_scope_suppresses_and_restores_parallelism() {
        let items: Vec<usize> = (0..64).collect();
        let inner = sequential_scope(|| {
            assert!(super::FORCE_SEQUENTIAL.with(Cell::get));
            parallel_map(&items, |&x| x * 2)
        });
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
        assert_eq!(inner, parallel_map(&items, |&x| x * 2));
        // Restored even when the scope panics.
        let _ = std::panic::catch_unwind(|| sequential_scope(|| panic!("boom")));
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
    }

    #[test]
    fn works_with_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, |s| s.to_string());
        assert_eq!(
            out,
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]
        );
    }
}
