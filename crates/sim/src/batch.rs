//! Thread-parallel batch evaluation.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide worker-count override for [`parallel_map`]; 0 means
/// "auto" (use the detected core count). An `AtomicUsize`, not a
/// `OnceLock`, so a `--workers` flag can change it at any point in the
/// process — the original `OnceLock` latched the first value forever.
static PARALLELISM_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`parallel_map`] when no
/// explicit count is passed. `0` restores auto-detection.
pub fn set_parallelism(workers: usize) {
    PARALLELISM_OVERRIDE.store(workers, Ordering::Relaxed);
}

/// Queries `available_parallelism` once per process: the core count does
/// not change under us, and the syscall is not free on the per-minibatch
/// hot path. (User-facing worker settings go through the override in
/// [`set_parallelism`] instead, which stays mutable.)
fn cached_parallelism() -> usize {
    static PARALLELISM: OnceLock<usize> = OnceLock::new();
    *PARALLELISM.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with [`parallel_map`] forced sequential on this thread.
///
/// Outer-level parallelism (e.g. a candidate-evaluation engine fanning a
/// population over workers) already saturates the cores; letting each
/// worker spawn its own per-sample threads would oversubscribe. The flag
/// is thread-local, so it must be set inside the worker closure, and it is
/// restored on exit even if `f` panics.
pub fn sequential_scope<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|flag| flag.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SEQUENTIAL.with(|flag| flag.replace(true)));
    f()
}

/// Applies `f` to every item of `items`, splitting the work across worker
/// threads, and returns results in input order.
///
/// This is the batching primitive behind QML training: per-sample state
/// simulations are independent, so they map across cores with plain scoped
/// threads. Falls back to a sequential loop for tiny batches.
///
/// # Examples
///
/// ```
/// let squares = qns_sim::parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count. `workers == 0` defers
/// to the process-wide override from [`set_parallelism`], then to the
/// detected core count. [`sequential_scope`] still wins over everything:
/// a worker thread inside an outer engine must never fan out again.
pub fn parallel_map_with<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let requested = if workers > 0 {
        workers
    } else {
        match PARALLELISM_OVERRIDE.load(Ordering::Relaxed) {
            0 => cached_parallelism(),
            n => n,
        }
    };
    let threads = if FORCE_SEQUENTIAL.with(Cell::get) {
        1
    } else {
        requested.min(items.len().max(1))
    };
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }

    // Each worker produces its chunk's results as an ordinary Vec; joining
    // in spawn order and appending keeps input order without an
    // Option-per-slot buffer or any uninitialized memory.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|item_chunk| {
                let f = &f;
                scope.spawn(move || item_chunk.iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mut part) => out.append(&mut part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], |&x| x * 2), vec![84]);
    }

    #[test]
    fn sequential_scope_suppresses_and_restores_parallelism() {
        let items: Vec<usize> = (0..64).collect();
        let inner = sequential_scope(|| {
            assert!(super::FORCE_SEQUENTIAL.with(Cell::get));
            parallel_map(&items, |&x| x * 2)
        });
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
        assert_eq!(inner, parallel_map(&items, |&x| x * 2));
        // Restored even when the scope panics.
        let _ = std::panic::catch_unwind(|| sequential_scope(|| panic!("boom")));
        assert!(!super::FORCE_SEQUENTIAL.with(Cell::get));
    }

    #[test]
    fn explicit_worker_count_controls_fanout() {
        let items: Vec<usize> = (0..64).collect();
        // workers = 1: everything runs on the calling thread.
        let caller = std::thread::current().id();
        let ids = parallel_map_with(&items, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        // workers = 3: results still in order, multiple spawned threads.
        let ids = parallel_map_with(&items, 3, |_| std::thread::current().id());
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "3 workers must actually fan out");
        assert_eq!(
            parallel_map_with(&items, 3, |&x| x * 2),
            items.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_parallelism_takes_effect_mid_process() {
        // Regression: the worker count used to be latched in a OnceLock at
        // first use, so a later `--workers 1` silently kept the old value.
        struct ResetOverride;
        impl Drop for ResetOverride {
            fn drop(&mut self) {
                set_parallelism(0);
            }
        }
        let _reset = ResetOverride;
        let items: Vec<usize> = (0..64).collect();
        let caller = std::thread::current().id();

        set_parallelism(4);
        let _warm = parallel_map(&items, |&x| x); // would latch a OnceLock
        set_parallelism(1);
        let ids = parallel_map(&items, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "override to 1 worker after first use must be honored"
        );
    }

    #[test]
    fn works_with_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, |s| s.to_string());
        assert_eq!(
            out,
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]
        );
    }
}
