//! Circuit execution: dynamic (gate-at-a-time) and static (fused) modes.

use crate::mps::{MpsConfig, MpsState};
use crate::plan::{SimPlan, DEFAULT_FUSION_LEVEL};
use crate::StateVec;
use qns_circuit::{Circuit, GateMatrix};
use qns_tensor::{Mat2, Mat4};

/// How a circuit is executed against the state vector.
///
/// Mirrors the paper's QuantumEngine modes: *dynamic* simulates each gate
/// individually so intermediate states are inspectable; *static* fuses
/// adjacent gates into larger unitaries before touching the state vector,
/// trading debuggability for speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Apply each gate individually.
    #[default]
    Dynamic,
    /// Fuse adjacent gates into 2×2/4×4 blocks first.
    Static,
}

/// Which kernel family executes the circuit.
///
/// `Fast` is the production path: structure-specialized, cache-blocked
/// kernels plus fusion v2 in static mode. `Reference` replays the original
/// naive per-gate kernels with no fusion — slower, but trivially auditable,
/// and the oracle the differential test battery checks `Fast` against.
/// `Mps` simulates on a matrix-product state with bounded bond dimension:
/// exact while the bond limit is generous, controllably approximate past
/// the dense-state memory wall (see [`MpsConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// Naive per-gate kernels, no fusion: the differential-test oracle.
    Reference,
    /// Fused, cache-blocked, structure-specialized kernels.
    #[default]
    Fast,
    /// Matrix-product-state simulation with the given truncation policy.
    Mps(MpsConfig),
}

/// One fused unitary block ready to apply.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedOp {
    /// A 2×2 block on one qubit.
    One(usize, Mat2),
    /// A 4×4 block on a qubit pair (first = high bit).
    Two(usize, usize, Mat4),
}

/// A fused, parameter-resolved program: the static-mode compilation product.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_sim::FusedProgram;
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::X, &[0], &[]);
/// c.push(GateKind::H, &[0], &[]);
/// let prog = FusedProgram::compile(&c, &[], &[]);
/// // Three 1q gates on the same qubit fuse into one block (HXH = Z).
/// assert_eq!(prog.num_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FusedProgram {
    n_qubits: usize,
    blocks: Vec<FusedOp>,
}

impl FusedProgram {
    /// Resolves parameters and fuses gates at [`DEFAULT_FUSION_LEVEL`].
    ///
    /// Fusion rules (see [`crate::SimPlan`] for the level ladder):
    /// - consecutive one-qubit gates on the same qubit multiply into one 2×2,
    /// - a pending 2×2 on either operand of a two-qubit gate folds into its
    ///   4×4,
    /// - two-qubit gates on the same qubit pair multiply into one 4×4
    ///   (handling swapped operand order), merging across intervening blocks
    ///   on disjoint qubits,
    /// - trailing one-qubit gates fold into the last block on their qubit.
    pub fn compile(circuit: &Circuit, train: &[f64], input: &[f64]) -> Self {
        Self::compile_with_level(circuit, train, input, DEFAULT_FUSION_LEVEL)
    }

    /// Like [`FusedProgram::compile`] with an explicit fusion level 0..=3.
    pub fn compile_with_level(circuit: &Circuit, train: &[f64], input: &[f64], level: u8) -> Self {
        let plan = SimPlan::compile(circuit, level);
        FusedProgram {
            n_qubits: circuit.num_qubits(),
            blocks: plan.materialize(circuit, train, input),
        }
    }

    /// Number of fused blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow of the block list.
    pub fn blocks(&self) -> &[FusedOp] {
        &self.blocks
    }

    /// Applies the program to a state.
    ///
    /// # Panics
    ///
    /// Panics if the state width differs from the compiled width.
    pub fn apply(&self, state: &mut StateVec) {
        assert_eq!(state.num_qubits(), self.n_qubits, "width mismatch");
        for b in &self.blocks {
            match b {
                FusedOp::One(q, m) => state.apply_1q(m, *q),
                FusedOp::Two(a, b, m) => state.apply_2q(m, *a, *b),
            }
        }
    }
}

/// Runs `circuit` from `|0...0>` with the given trainable parameters and
/// per-sample input, returning the final state.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::{run, ExecMode};
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RX, &[0], &[Param::Train(0)]);
/// let s = run(&c, &[std::f64::consts::PI], &[], ExecMode::Static);
/// assert!((s.probability(1) - 1.0).abs() < 1e-12);
/// ```
pub fn run(circuit: &Circuit, train: &[f64], input: &[f64], mode: ExecMode) -> StateVec {
    run_with(circuit, train, input, mode, SimBackend::default())
}

/// Runs `circuit` from `|0...0>` on an explicit backend.
pub fn run_with(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    mode: ExecMode,
    backend: SimBackend,
) -> StateVec {
    let mut state = StateVec::zero_state(circuit.num_qubits());
    run_into_with(circuit, train, input, mode, backend, &mut state);
    state
}

/// Runs `circuit` into an existing (pre-reset) state buffer, avoiding
/// reallocation in hot loops.
///
/// The state is reset to `|0...0>` first.
///
/// # Panics
///
/// Panics if `state` has a different width than `circuit`, or if a
/// referenced parameter index is out of bounds.
pub fn run_into(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    mode: ExecMode,
    state: &mut StateVec,
) {
    run_into_with(circuit, train, input, mode, SimBackend::default(), state);
}

/// [`run_into`] with an explicit backend. `Reference` always executes gate
/// at a time with the naive kernels (fusion would defeat its purpose as an
/// oracle); `Fast` honors `mode`.
///
/// # Panics
///
/// Panics if `state` has a different width than `circuit`, or if a
/// referenced parameter index is out of bounds.
pub fn run_into_with(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    mode: ExecMode,
    backend: SimBackend,
    state: &mut StateVec,
) {
    assert_eq!(state.num_qubits(), circuit.num_qubits(), "width mismatch");
    match backend {
        SimBackend::Reference => {
            state.reset();
            for op in circuit.iter() {
                let params = op.resolve_params(train, input);
                match op.kind.matrix(&params) {
                    GateMatrix::One(m) => state.apply_1q_reference(&m, op.qubits[0]),
                    GateMatrix::Two(m) => state.apply_2q_reference(&m, op.qubits[0], op.qubits[1]),
                }
            }
        }
        SimBackend::Fast => match mode {
            ExecMode::Dynamic => {
                state.reset();
                for op in circuit.iter() {
                    let params = op.resolve_params(train, input);
                    match op.kind.matrix(&params) {
                        GateMatrix::One(m) => state.apply_1q(&m, op.qubits[0]),
                        GateMatrix::Two(m) => state.apply_2q(&m, op.qubits[0], op.qubits[1]),
                    }
                }
            }
            ExecMode::Static => {
                SimPlan::compile(circuit, DEFAULT_FUSION_LEVEL)
                    .execute_into(circuit, train, input, state);
            }
        },
        SimBackend::Mps(config) => {
            let mut mps = MpsState::zero_state(circuit.num_qubits(), config);
            run_mps(circuit, train, input, mode, &mut mps);
            mps.to_statevec_into(state);
        }
    }
}

/// Runs `circuit` from `|0...0>` on a fresh matrix-product state without
/// densifying — the native entry point for widths past state-vector reach.
///
/// Honors `mode` exactly like the `Fast` backend: `Static` replays the
/// fused block program ([`SimPlan`] at [`DEFAULT_FUSION_LEVEL`]), `Dynamic`
/// applies each gate individually.
pub fn run_mps(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    mode: ExecMode,
    mps: &mut MpsState,
) {
    assert_eq!(mps.num_qubits(), circuit.num_qubits(), "width mismatch");
    mps.reset();
    match mode {
        ExecMode::Dynamic => {
            for op in circuit.iter() {
                let params = op.resolve_params(train, input);
                match op.kind.matrix(&params) {
                    GateMatrix::One(m) => mps.apply_1q(&m, op.qubits[0]),
                    GateMatrix::Two(m) => mps.apply_2q(&m, op.qubits[0], op.qubits[1]),
                }
            }
        }
        ExecMode::Static => {
            let blocks =
                SimPlan::compile(circuit, DEFAULT_FUSION_LEVEL).materialize(circuit, train, input);
            for b in &blocks {
                match b {
                    FusedOp::One(q, m) => mps.apply_1q(m, *q),
                    FusedOp::Two(a, b2, m) => mps.apply_2q(m, *a, *b2),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{GateKind, Param};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random circuit over all gate kinds for equivalence testing.
    fn random_circuit(n_qubits: usize, n_ops: usize, seed: u64) -> (Circuit, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n_qubits);
        let kinds = GateKind::all();
        let mut train = Vec::new();
        for _ in 0..n_ops {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let q0 = rng.gen_range(0..n_qubits);
            let qs: Vec<usize> = if kind.num_qubits() == 1 {
                vec![q0]
            } else {
                let mut q1 = rng.gen_range(0..n_qubits);
                while q1 == q0 {
                    q1 = rng.gen_range(0..n_qubits);
                }
                vec![q0, q1]
            };
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|_| {
                    train.push(rng.gen_range(-3.0..3.0));
                    Param::Train(train.len() - 1)
                })
                .collect();
            c.push(kind, &qs, &ps);
        }
        (c, train)
    }

    #[test]
    fn dynamic_and_static_agree_on_random_circuits() {
        for seed in 0..8 {
            let (c, train) = random_circuit(4, 30, seed);
            let a = run(&c, &train, &[], ExecMode::Dynamic);
            let b = run(&c, &train, &[], ExecMode::Static);
            let fidelity = a.inner(&b).abs();
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "modes disagree on seed {seed}: fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn fusion_reduces_block_count() {
        let (c, train) = random_circuit(4, 60, 99);
        let prog = FusedProgram::compile(&c, &train, &[]);
        assert!(
            prog.num_blocks() < c.num_ops(),
            "expected fusion to shrink {} ops, got {} blocks",
            c.num_ops(),
            prog.num_blocks()
        );
    }

    #[test]
    fn hxh_fuses_to_z() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::X, &[0], &[]);
        c.push(GateKind::H, &[0], &[]);
        let prog = FusedProgram::compile(&c, &[], &[]);
        assert_eq!(prog.num_blocks(), 1);
        match &prog.blocks()[0] {
            FusedOp::One(0, m) => assert!(m.approx_eq(&qns_tensor::Mat2::pauli_z(), 1e-12)),
            other => panic!("unexpected block {:?}", other),
        }
    }

    #[test]
    fn two_q_merge_handles_swapped_order() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[1, 0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        let prog = FusedProgram::compile(&c, &[], &[]);
        assert_eq!(prog.num_blocks(), 1, "all three CX on one pair fuse");
        let a = run(&c, &[], &[], ExecMode::Dynamic);
        let b = run(&c, &[], &[], ExecMode::Static);
        assert!((a.inner(&b).abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reference_backend_matches_fast_amplitudes() {
        for seed in 0..6 {
            let (c, train) = random_circuit(4, 30, seed);
            let oracle = run_with(&c, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
            for mode in [ExecMode::Dynamic, ExecMode::Static] {
                let fast = run_with(&c, &train, &[], mode, SimBackend::Fast);
                for (i, (a, b)) in oracle
                    .amplitudes()
                    .iter()
                    .zip(fast.amplitudes())
                    .enumerate()
                {
                    assert!(
                        (*a - *b).norm_sqr().sqrt() < 1e-10,
                        "seed {seed} {mode:?}: amp {i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn input_params_are_resolved() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        let s = run(&c, &[], &[std::f64::consts::PI], ExecMode::Dynamic);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_into_reuses_buffer() {
        let mut c = Circuit::new(2);
        c.push(GateKind::X, &[0], &[]);
        let mut buf = StateVec::zero_state(2);
        run_into(&c, &[], &[], ExecMode::Dynamic, &mut buf);
        assert!((buf.probability(1) - 1.0).abs() < 1e-12);
        // Second run resets first.
        run_into(&c, &[], &[], ExecMode::Static, &mut buf);
        assert!((buf.probability(1) - 1.0).abs() < 1e-12);
    }
}
