//! Circuit execution: dynamic (gate-at-a-time) and static (fused) modes.

use crate::StateVec;
use qns_circuit::{Circuit, GateMatrix};
use qns_tensor::{Mat2, Mat4};

/// How a circuit is executed against the state vector.
///
/// Mirrors the paper's QuantumEngine modes: *dynamic* simulates each gate
/// individually so intermediate states are inspectable; *static* fuses
/// adjacent gates into larger unitaries before touching the state vector,
/// trading debuggability for speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Apply each gate individually.
    #[default]
    Dynamic,
    /// Fuse adjacent gates into 2×2/4×4 blocks first.
    Static,
}

/// One fused unitary block ready to apply.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedOp {
    /// A 2×2 block on one qubit.
    One(usize, Mat2),
    /// A 4×4 block on a qubit pair (first = high bit).
    Two(usize, usize, Mat4),
}

/// A fused, parameter-resolved program: the static-mode compilation product.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind};
/// use qns_sim::FusedProgram;
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::X, &[0], &[]);
/// c.push(GateKind::H, &[0], &[]);
/// let prog = FusedProgram::compile(&c, &[], &[]);
/// // Three 1q gates on the same qubit fuse into one block (HXH = Z).
/// assert_eq!(prog.num_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FusedProgram {
    n_qubits: usize,
    blocks: Vec<FusedOp>,
}

impl FusedProgram {
    /// Resolves parameters and greedily fuses adjacent gates.
    ///
    /// Fusion rules:
    /// - consecutive one-qubit gates on the same qubit multiply into one 2×2,
    /// - a pending 2×2 on either operand of a two-qubit gate folds into its
    ///   4×4,
    /// - consecutive two-qubit gates on the same qubit pair multiply into one
    ///   4×4 (handling swapped operand order).
    pub fn compile(circuit: &Circuit, train: &[f64], input: &[f64]) -> Self {
        let n = circuit.num_qubits();
        let mut pending: Vec<Option<Mat2>> = vec![None; n];
        let mut blocks: Vec<FusedOp> = Vec::new();

        for op in circuit.iter() {
            let params = op.resolve_params(train, input);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => {
                    let q = op.qubits[0];
                    pending[q] = Some(match pending[q] {
                        Some(prev) => m.mul_mat(&prev),
                        None => m,
                    });
                }
                GateMatrix::Two(m) => {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    // Fold pending 1q gates into the 4x4: U * (Pa ⊗ Pb).
                    let pa = pending[a].take().unwrap_or_else(Mat2::identity);
                    let pb = pending[b].take().unwrap_or_else(Mat2::identity);
                    let mut m4 = m.mul_mat(&pa.kron(&pb));
                    // Merge with a previous 2q block on the same pair.
                    if let Some(FusedOp::Two(pa2, pb2, prev)) = blocks.last() {
                        if (*pa2, *pb2) == (a, b) {
                            m4 = m4.mul_mat(prev);
                            blocks.pop();
                        } else if (*pa2, *pb2) == (b, a) {
                            m4 = m4.mul_mat(&prev.swap_qubits());
                            blocks.pop();
                        }
                    }
                    blocks.push(FusedOp::Two(a, b, m4));
                }
            }
        }
        for (q, p) in pending.into_iter().enumerate() {
            if let Some(m) = p {
                blocks.push(FusedOp::One(q, m));
            }
        }
        FusedProgram {
            n_qubits: n,
            blocks,
        }
    }

    /// Number of fused blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow of the block list.
    pub fn blocks(&self) -> &[FusedOp] {
        &self.blocks
    }

    /// Applies the program to a state.
    ///
    /// # Panics
    ///
    /// Panics if the state width differs from the compiled width.
    pub fn apply(&self, state: &mut StateVec) {
        assert_eq!(state.num_qubits(), self.n_qubits, "width mismatch");
        for b in &self.blocks {
            match b {
                FusedOp::One(q, m) => state.apply_1q(m, *q),
                FusedOp::Two(a, b, m) => state.apply_2q(m, *a, *b),
            }
        }
    }
}

/// Runs `circuit` from `|0...0>` with the given trainable parameters and
/// per-sample input, returning the final state.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::{run, ExecMode};
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RX, &[0], &[Param::Train(0)]);
/// let s = run(&c, &[std::f64::consts::PI], &[], ExecMode::Static);
/// assert!((s.probability(1) - 1.0).abs() < 1e-12);
/// ```
pub fn run(circuit: &Circuit, train: &[f64], input: &[f64], mode: ExecMode) -> StateVec {
    let mut state = StateVec::zero_state(circuit.num_qubits());
    run_into(circuit, train, input, mode, &mut state);
    state
}

/// Runs `circuit` into an existing (pre-reset) state buffer, avoiding
/// reallocation in hot loops.
///
/// The state is reset to `|0...0>` first.
///
/// # Panics
///
/// Panics if `state` has a different width than `circuit`, or if a
/// referenced parameter index is out of bounds.
pub fn run_into(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    mode: ExecMode,
    state: &mut StateVec,
) {
    assert_eq!(state.num_qubits(), circuit.num_qubits(), "width mismatch");
    state.reset();
    match mode {
        ExecMode::Dynamic => {
            for op in circuit.iter() {
                let params = op.resolve_params(train, input);
                match op.kind.matrix(&params) {
                    GateMatrix::One(m) => state.apply_1q(&m, op.qubits[0]),
                    GateMatrix::Two(m) => state.apply_2q(&m, op.qubits[0], op.qubits[1]),
                }
            }
        }
        ExecMode::Static => {
            FusedProgram::compile(circuit, train, input).apply(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{GateKind, Param};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random circuit over all gate kinds for equivalence testing.
    fn random_circuit(n_qubits: usize, n_ops: usize, seed: u64) -> (Circuit, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n_qubits);
        let kinds = GateKind::all();
        let mut train = Vec::new();
        for _ in 0..n_ops {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let q0 = rng.gen_range(0..n_qubits);
            let qs: Vec<usize> = if kind.num_qubits() == 1 {
                vec![q0]
            } else {
                let mut q1 = rng.gen_range(0..n_qubits);
                while q1 == q0 {
                    q1 = rng.gen_range(0..n_qubits);
                }
                vec![q0, q1]
            };
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|_| {
                    train.push(rng.gen_range(-3.0..3.0));
                    Param::Train(train.len() - 1)
                })
                .collect();
            c.push(kind, &qs, &ps);
        }
        (c, train)
    }

    #[test]
    fn dynamic_and_static_agree_on_random_circuits() {
        for seed in 0..8 {
            let (c, train) = random_circuit(4, 30, seed);
            let a = run(&c, &train, &[], ExecMode::Dynamic);
            let b = run(&c, &train, &[], ExecMode::Static);
            let fidelity = a.inner(&b).abs();
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "modes disagree on seed {seed}: fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn fusion_reduces_block_count() {
        let (c, train) = random_circuit(4, 60, 99);
        let prog = FusedProgram::compile(&c, &train, &[]);
        assert!(
            prog.num_blocks() < c.num_ops(),
            "expected fusion to shrink {} ops, got {} blocks",
            c.num_ops(),
            prog.num_blocks()
        );
    }

    #[test]
    fn hxh_fuses_to_z() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::X, &[0], &[]);
        c.push(GateKind::H, &[0], &[]);
        let prog = FusedProgram::compile(&c, &[], &[]);
        assert_eq!(prog.num_blocks(), 1);
        match &prog.blocks()[0] {
            FusedOp::One(0, m) => assert!(m.approx_eq(&qns_tensor::Mat2::pauli_z(), 1e-12)),
            other => panic!("unexpected block {:?}", other),
        }
    }

    #[test]
    fn two_q_merge_handles_swapped_order() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[1, 0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        let prog = FusedProgram::compile(&c, &[], &[]);
        assert_eq!(prog.num_blocks(), 1, "all three CX on one pair fuse");
        let a = run(&c, &[], &[], ExecMode::Dynamic);
        let b = run(&c, &[], &[], ExecMode::Static);
        assert!((a.inner(&b).abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn input_params_are_resolved() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        let s = run(&c, &[], &[std::f64::consts::PI], ExecMode::Dynamic);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_into_reuses_buffer() {
        let mut c = Circuit::new(2);
        c.push(GateKind::X, &[0], &[]);
        let mut buf = StateVec::zero_state(2);
        run_into(&c, &[], &[], ExecMode::Dynamic, &mut buf);
        assert!((buf.probability(1) - 1.0).abs() < 1e-12);
        // Second run resets first.
        run_into(&c, &[], &[], ExecMode::Static, &mut buf);
        assert!((buf.probability(1) - 1.0).abs() < 1e-12);
    }
}
