//! Gradients of expectation values: adjoint differentiation and the
//! parameter-shift rule.

use crate::plan::DEFAULT_FUSION_LEVEL;
use crate::{run, ExecMode, SimPlan, StateBatch, StateVec};
use qns_circuit::{Circuit, GateMatrix, Op};
use qns_tensor::{Mat2, Mat4, C64};

/// An observable the gradient engines can differentiate through.
///
/// The only requirement is being able to apply the (Hermitian) operator to a
/// state; expectation defaults to `Re <ψ|O|ψ>`.
pub trait Observable {
    /// Returns `O|ψ>`.
    fn apply(&self, state: &StateVec) -> StateVec;

    /// Expectation `<ψ|O|ψ>` (real for Hermitian `O`).
    fn expect(&self, state: &StateVec) -> f64 {
        state.inner(&self.apply(state)).re
    }
}

/// The diagonal observable `Σ_q w_q Z_q` used for QML readout.
///
/// A classification loss `L(E_0, …, E_{n-1})` over per-qubit Pauli-Z
/// expectations has gradient `dL/dθ = d<O_w>/dθ` with `w_q = ∂L/∂E_q`, so a
/// single adjoint pass with this observable differentiates the whole loss.
///
/// # Examples
///
/// ```
/// use qns_sim::{DiagObservable, StateVec};
/// use qns_sim::Observable as _;
/// let obs = DiagObservable::new(vec![1.0, -2.0]);
/// let s = StateVec::zero_state(2);
/// // <Z0> = <Z1> = 1 on |00>, so <O> = 1*1 + (-2)*1 = -1.
/// assert!((obs.expect(&s) + 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DiagObservable {
    weights: Vec<f64>,
}

impl DiagObservable {
    /// Creates the observable from one weight per qubit.
    pub fn new(weights: Vec<f64>) -> Self {
        DiagObservable { weights }
    }

    /// Borrow of the weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Diagonal entry for basis index `i`.
    #[inline]
    fn diag(&self, i: usize) -> f64 {
        let mut d = 0.0;
        for (q, w) in self.weights.iter().enumerate() {
            if i & (1 << q) == 0 {
                d += w;
            } else {
                d -= w;
            }
        }
        d
    }
}

impl Observable for DiagObservable {
    fn apply(&self, state: &StateVec) -> StateVec {
        assert_eq!(state.num_qubits(), self.weights.len(), "width mismatch");
        let mut out = state.clone();
        for (i, a) in out.amplitudes_mut().iter_mut().enumerate() {
            *a = a.scale(self.diag(i));
        }
        out
    }

    fn expect(&self, state: &StateVec) -> f64 {
        state.expect_weighted_z(&self.weights)
    }
}

/// `<bra| M |ket>` restricted to qubit `q`, computed in one pass without
/// materializing `M|ket>`.
fn bracket_1q(bra: &StateVec, ket: &StateVec, m: &Mat2, q: usize) -> C64 {
    let stride = 1usize << q;
    let b = bra.amplitudes();
    let k = ket.amplitudes();
    let [m00, m01, m10, m11] = m.m;
    let mut acc = C64::ZERO;
    let len = k.len();
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let k0 = k[i];
            let k1 = k[i + stride];
            acc += b[i].conj() * (m00 * k0 + m01 * k1);
            acc += b[i + stride].conj() * (m10 * k0 + m11 * k1);
        }
        base += stride << 1;
    }
    acc
}

/// `<bra| M |ket>` restricted to qubits `(qa, qb)` (qa = high bit).
fn bracket_2q(bra: &StateVec, ket: &StateVec, m: &Mat4, qa: usize, qb: usize) -> C64 {
    let ba = 1usize << qa;
    let bb = 1usize << qb;
    let mask = ba | bb;
    let b = bra.amplitudes();
    let k = ket.amplitudes();
    let mut acc = C64::ZERO;
    for i in 0..k.len() {
        if i & mask != 0 {
            continue;
        }
        let idx = [i, i | bb, i | ba, i | mask];
        let v = [k[idx[0]], k[idx[1]], k[idx[2]], k[idx[3]]];
        let mv = m.mul_vec(&v);
        for j in 0..4 {
            acc += b[idx[j]].conj() * mv[j];
        }
    }
    acc
}

/// Computes `<O>` and its gradient with respect to every trainable parameter
/// via reverse-mode adjoint differentiation.
///
/// Cost: one forward sweep plus one backward sweep over the circuit (each
/// gate applied twice more), independent of the number of parameters —
/// the state-vector analogue of backpropagation.
///
/// Returns `(expectation, gradient)` where `gradient.len() ==
/// circuit.num_train_params()`. Parameters referenced by several gates
/// accumulate their contributions.
///
/// # Panics
///
/// Panics if `train`/`input` are shorter than the circuit references.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::{adjoint_gradient, DiagObservable};
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RY, &[0], &[Param::Train(0)]);
/// let obs = DiagObservable::new(vec![1.0]);
/// let (e, g) = adjoint_gradient(&c, &[0.3], &[], &obs);
/// // <Z> = cos θ, d<Z>/dθ = -sin θ.
/// assert!((e - 0.3f64.cos()).abs() < 1e-12);
/// assert!((g[0] + 0.3f64.sin()).abs() < 1e-12);
/// ```
pub fn adjoint_gradient(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    obs: &impl Observable,
) -> (f64, Vec<f64>) {
    let psi = run(circuit, train, input, ExecMode::Dynamic);
    let expectation = obs.expect(&psi);

    let mut lam = obs.apply(&psi);
    let mut cur = psi;
    let mut grad = vec![0.0; circuit.num_train_params()];

    for op in circuit.iter().rev() {
        let params = op.resolve_params(train, input);
        // Un-apply the gate: cur becomes the state before this op.
        match op.kind.matrix(&params) {
            GateMatrix::One(m) => cur.apply_1q(&m.adjoint(), op.qubits[0]),
            GateMatrix::Two(m) => cur.apply_2q(&m.adjoint(), op.qubits[0], op.qubits[1]),
        }
        // Gradient contributions for each trainable slot of this op; affine
        // slots carry a chain-rule scale.
        for (which, slot) in op.params.iter().enumerate() {
            if let Some((ti, scale)) = slot.train_component() {
                let bracket = match op.kind.dmatrix(&params, which) {
                    GateMatrix::One(d) => bracket_1q(&lam, &cur, &d, op.qubits[0]),
                    GateMatrix::Two(d) => bracket_2q(&lam, &cur, &d, op.qubits[0], op.qubits[1]),
                };
                grad[ti] += 2.0 * scale * bracket.re;
            }
        }
        // Move the bra back as well.
        match op.kind.matrix(&params) {
            GateMatrix::One(m) => lam.apply_1q(&m.adjoint(), op.qubits[0]),
            GateMatrix::Two(m) => lam.apply_2q(&m.adjoint(), op.qubits[0], op.qubits[1]),
        }
    }
    (expectation, grad)
}

/// True when any parameter slot of `op` reads the per-sample input vector.
#[inline]
fn op_uses_input(op: &Op) -> bool {
    op.params.iter().any(|p| p.input_index().is_some())
}

/// Applies (or un-applies, with `adjoint`) one circuit op to a batch:
/// input-encoding ops resolve and apply per lane, every other op applies
/// its shared matrix to all lanes in one batched sweep.
fn apply_op_batch(
    batch: &mut StateBatch,
    op: &Op,
    train: &[f64],
    inputs: &[&[f64]],
    adjoint: bool,
) {
    if op_uses_input(op) {
        for (lane, input) in inputs.iter().enumerate() {
            let params = op.resolve_params(train, input);
            match op.kind.matrix(&params) {
                GateMatrix::One(m) => {
                    let m = if adjoint { m.adjoint() } else { m };
                    batch.lane_apply_1q(lane, &m, op.qubits[0]);
                }
                GateMatrix::Two(m) => {
                    let m = if adjoint { m.adjoint() } else { m };
                    batch.lane_apply_2q(lane, &m, op.qubits[0], op.qubits[1]);
                }
            }
        }
    } else {
        let params = op.resolve_params(train, &[]);
        match op.kind.matrix(&params) {
            GateMatrix::One(m) => {
                let m = if adjoint { m.adjoint() } else { m };
                batch.apply_1q(&m, op.qubits[0]);
            }
            GateMatrix::Two(m) => {
                let m = if adjoint { m.adjoint() } else { m };
                batch.apply_2q(&m, op.qubits[0], op.qubits[1]);
            }
        }
    }
}

/// Per-lane `<bra| M_s |ket>` restricted to qubit `q` for SEVERAL
/// derivative matrices in one amplitude sweep. The bracket is linear in
/// the matrix, so the sweep accumulates the per-lane transfer matrix
/// `T_jk = Σ_i bra_j(i)* ket_k(i)` once, and every slot's bracket is the
/// O(1) projection `Σ_jk m_jk T_jk` afterwards — multi-parameter gates
/// (U3, CU3) pay one sweep instead of one per trainable slot. `acc` is
/// slot-major: `acc[s * lanes + lane]`. The projection reassociates the
/// floating-point sum relative to [`bracket_1q`], changing results only
/// at the ~1e-15 level.
fn bracket_1q_lanes_multi(
    bra: &StateBatch,
    ket: &StateBatch,
    mats: &[Mat2],
    q: usize,
    acc: &mut [C64],
) {
    let l = bra.lanes();
    let stride = 1usize << q;
    let len = 1usize << bra.num_qubits();
    let mut t = vec![C64::ZERO; 4 * l];
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let e0 = i * l;
            let e1 = (i + stride) * l;
            for (lane, tl) in t.chunks_exact_mut(4).enumerate() {
                let k0 = ket.amp(e0 + lane);
                let k1 = ket.amp(e1 + lane);
                let b0 = bra.amp(e0 + lane).conj();
                let b1 = bra.amp(e1 + lane).conj();
                tl[0] += b0 * k0;
                tl[1] += b0 * k1;
                tl[2] += b1 * k0;
                tl[3] += b1 * k1;
            }
        }
        base += stride << 1;
    }
    for (s, m) in mats.iter().enumerate() {
        let [m00, m01, m10, m11] = m.m;
        for (lane, tl) in t.chunks_exact(4).enumerate() {
            acc[s * l + lane] = m00 * tl[0] + m01 * tl[1] + m10 * tl[2] + m11 * tl[3];
        }
    }
}

/// Two-qubit sibling of [`bracket_1q_lanes_multi`] (`qa` = high bit):
/// one sweep accumulates the per-lane 4×4 transfer matrix, then each
/// slot projects its derivative matrix against it.
fn bracket_2q_lanes_multi(
    bra: &StateBatch,
    ket: &StateBatch,
    mats: &[Mat4],
    qa: usize,
    qb: usize,
    acc: &mut [C64],
) {
    let l = bra.lanes();
    let ba = 1usize << qa;
    let bb = 1usize << qb;
    let mask = ba | bb;
    let len = 1usize << bra.num_qubits();
    let mut t = vec![C64::ZERO; 16 * l];
    for i in 0..len {
        if i & mask != 0 {
            continue;
        }
        let idx = [i, i | bb, i | ba, i | mask];
        for (lane, tl) in t.chunks_exact_mut(16).enumerate() {
            let v = [
                ket.amp(idx[0] * l + lane),
                ket.amp(idx[1] * l + lane),
                ket.amp(idx[2] * l + lane),
                ket.amp(idx[3] * l + lane),
            ];
            let bc = [
                bra.amp(idx[0] * l + lane).conj(),
                bra.amp(idx[1] * l + lane).conj(),
                bra.amp(idx[2] * l + lane).conj(),
                bra.amp(idx[3] * l + lane).conj(),
            ];
            for j in 0..4 {
                for (kk, &vk) in v.iter().enumerate() {
                    tl[j * 4 + kk] += bc[j] * vk;
                }
            }
        }
    }
    for (s, m) in mats.iter().enumerate() {
        for (lane, tl) in t.chunks_exact(16).enumerate() {
            let mut br = C64::ZERO;
            for (jk, &tjk) in tl.iter().enumerate() {
                br += m.m[jk] * tjk;
            }
            acc[s * l + lane] = br;
        }
    }
}

/// Single-lane variant of [`bracket_1q_lanes_multi`], for per-lane
/// derivative matrices (input-encoding ops): `acc[s]` is slot `s`'s
/// bracket on `lane`.
fn bracket_1q_lane_multi(
    bra: &StateBatch,
    ket: &StateBatch,
    lane: usize,
    mats: &[Mat2],
    q: usize,
    acc: &mut [C64],
) {
    let l = bra.lanes();
    let stride = 1usize << q;
    let len = 1usize << bra.num_qubits();
    let mut t = [C64::ZERO; 4];
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let e0 = i * l + lane;
            let e1 = (i + stride) * l + lane;
            let k0 = ket.amp(e0);
            let k1 = ket.amp(e1);
            let b0 = bra.amp(e0).conj();
            let b1 = bra.amp(e1).conj();
            t[0] += b0 * k0;
            t[1] += b0 * k1;
            t[2] += b1 * k0;
            t[3] += b1 * k1;
        }
        base += stride << 1;
    }
    for (s, m) in mats.iter().enumerate() {
        let [m00, m01, m10, m11] = m.m;
        acc[s] = m00 * t[0] + m01 * t[1] + m10 * t[2] + m11 * t[3];
    }
}

/// Single-lane variant of [`bracket_2q_lanes_multi`].
fn bracket_2q_lane_multi(
    bra: &StateBatch,
    ket: &StateBatch,
    lane: usize,
    mats: &[Mat4],
    qa: usize,
    qb: usize,
    acc: &mut [C64],
) {
    let l = bra.lanes();
    let ba = 1usize << qa;
    let bb = 1usize << qb;
    let mask = ba | bb;
    let len = 1usize << bra.num_qubits();
    let mut t = [C64::ZERO; 16];
    for i in 0..len {
        if i & mask != 0 {
            continue;
        }
        let idx = [i, i | bb, i | ba, i | mask];
        let v = [
            ket.amp(idx[0] * l + lane),
            ket.amp(idx[1] * l + lane),
            ket.amp(idx[2] * l + lane),
            ket.amp(idx[3] * l + lane),
        ];
        let bc = [
            bra.amp(idx[0] * l + lane).conj(),
            bra.amp(idx[1] * l + lane).conj(),
            bra.amp(idx[2] * l + lane).conj(),
            bra.amp(idx[3] * l + lane).conj(),
        ];
        for j in 0..4 {
            for (kk, &vk) in v.iter().enumerate() {
                t[j * 4 + kk] += bc[j] * vk;
            }
        }
    }
    for (s, m) in mats.iter().enumerate() {
        let mut br = C64::ZERO;
        for (jk, &tjk) in t.iter().enumerate() {
            br += m.m[jk] * tjk;
        }
        acc[s] = br;
    }
}

/// Derivative matrices of one op for each listed trainable slot — all
/// slots of an op share the gate's arity, so they collect into one list.
enum DMats {
    One(Vec<Mat2>),
    Two(Vec<Mat4>),
}

fn dmatrices(op: &Op, params: &[f64], slots: &[(usize, usize, f64)]) -> DMats {
    match op.kind.dmatrix(params, slots[0].0) {
        GateMatrix::One(first) => {
            let mut mats = vec![first];
            mats.extend(slots[1..].iter().filter_map(|&(which, _, _)| {
                match op.kind.dmatrix(params, which) {
                    GateMatrix::One(d) => Some(d),
                    GateMatrix::Two(_) => None, // arity is fixed per gate kind
                }
            }));
            debug_assert_eq!(mats.len(), slots.len());
            DMats::One(mats)
        }
        GateMatrix::Two(first) => {
            let mut mats = vec![first];
            mats.extend(slots[1..].iter().filter_map(|&(which, _, _)| {
                match op.kind.dmatrix(params, which) {
                    GateMatrix::Two(d) => Some(d),
                    GateMatrix::One(_) => None, // arity is fixed per gate kind
                }
            }));
            debug_assert_eq!(mats.len(), slots.len());
            DMats::Two(mats)
        }
    }
}

/// Batched adjoint differentiation: per-sample losses and the *summed*
/// parameter gradient for a whole minibatch in one forward + one backward
/// sweep over the circuit.
///
/// Lane `l` simulates the circuit with input vector `inputs[l]`; shared
/// trainable gates are applied to every lane in one batched kernel sweep
/// while input-encoding gates apply per lane. After the forward pass,
/// `loss_and_weights(lane, expect_z)` maps each lane's per-qubit Pauli-Z
/// expectations to that lane's scalar loss and the per-qubit weights
/// `w_q = ∂loss/∂<Z_q>` of its readout observable (the lane-local
/// [`DiagObservable`]); the backward sweep then accumulates every lane's
/// gradient simultaneously.
///
/// Returns `(losses, grad)` where `losses.len() == inputs.len()` and
/// `grad` is the element-wise sum over lanes (lane-ascending order) of the
/// per-sample gradients. Losses are bit-identical to per-sample runs (the
/// forward kernels sweep each lane with the exact single-state
/// arithmetic); the gradient matches running [`adjoint_gradient`] per
/// sample and summing in sample order to better than 1e-12 — the bracket
/// sweeps accumulate through a per-lane transfer matrix, which
/// reassociates the floating-point reduction.
///
/// # Panics
///
/// Panics if `inputs` is empty, a referenced parameter index is out of
/// bounds, or the callback returns a weight vector whose length differs
/// from the qubit count.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::adjoint_gradient_batch;
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RX, &[0], &[Param::Input(0)]);
/// c.push(GateKind::RY, &[0], &[Param::Train(0)]);
/// let xs: Vec<&[f64]> = vec![&[0.2], &[1.1]];
/// let (losses, grad) =
///     adjoint_gradient_batch(&c, &[0.3], &xs, |_, ez| (ez[0], vec![1.0]));
/// assert_eq!(losses.len(), 2);
/// assert_eq!(grad.len(), 1);
/// ```
pub fn adjoint_gradient_batch(
    circuit: &Circuit,
    train: &[f64],
    inputs: &[&[f64]],
    mut loss_and_weights: impl FnMut(usize, &[f64]) -> (f64, Vec<f64>),
) -> (Vec<f64>, Vec<f64>) {
    let n = circuit.num_qubits();
    let lanes = inputs.len();
    let mut cur = StateBatch::zero_state(n, lanes);
    for op in circuit.iter() {
        apply_op_batch(&mut cur, op, train, inputs, false);
    }

    let ez = cur.expect_z_all_lanes();
    let mut losses = Vec::with_capacity(lanes);
    let mut weights = Vec::with_capacity(lanes);
    for (lane, e) in ez.iter().enumerate() {
        let (loss, w) = loss_and_weights(lane, e);
        assert_eq!(w.len(), n, "one observable weight per qubit");
        losses.push(loss);
        weights.push(w);
    }
    let mut lam = cur.clone();
    lam.apply_diag_weights(&weights);

    let n_params = circuit.num_train_params();
    let mut grad_lanes = vec![vec![0.0; n_params]; lanes];
    let mut acc: Vec<C64> = Vec::new();
    for op in circuit.iter().rev() {
        // Un-apply the gate on every lane: cur becomes the pre-op batch.
        apply_op_batch(&mut cur, op, train, inputs, true);
        // All trainable slots of the op bracket against the same pair of
        // states, so their derivative matrices share one amplitude sweep.
        let slots: Vec<(usize, usize, f64)> = op
            .params
            .iter()
            .enumerate()
            .filter_map(|(which, slot)| slot.train_component().map(|(ti, s)| (which, ti, s)))
            .collect();
        if !slots.is_empty() {
            if op_uses_input(op) {
                // Mixed op (trainable + input slots): the derivative
                // matrices themselves depend on the lane's input.
                acc.clear();
                acc.resize(slots.len(), C64::ZERO);
                for (lane, input) in inputs.iter().enumerate() {
                    let params = op.resolve_params(train, input);
                    match dmatrices(op, &params, &slots) {
                        DMats::One(mats) => {
                            bracket_1q_lane_multi(&lam, &cur, lane, &mats, op.qubits[0], &mut acc);
                        }
                        DMats::Two(mats) => bracket_2q_lane_multi(
                            &lam,
                            &cur,
                            lane,
                            &mats,
                            op.qubits[0],
                            op.qubits[1],
                            &mut acc,
                        ),
                    }
                    for (s, &(_, ti, scale)) in slots.iter().enumerate() {
                        grad_lanes[lane][ti] += 2.0 * scale * acc[s].re;
                    }
                }
            } else {
                let params = op.resolve_params(train, &[]);
                acc.clear();
                acc.resize(slots.len() * lanes, C64::ZERO);
                match dmatrices(op, &params, &slots) {
                    DMats::One(mats) => {
                        bracket_1q_lanes_multi(&lam, &cur, &mats, op.qubits[0], &mut acc);
                    }
                    DMats::Two(mats) => bracket_2q_lanes_multi(
                        &lam,
                        &cur,
                        &mats,
                        op.qubits[0],
                        op.qubits[1],
                        &mut acc,
                    ),
                }
                for (s, &(_, ti, scale)) in slots.iter().enumerate() {
                    for lane in 0..lanes {
                        grad_lanes[lane][ti] += 2.0 * scale * acc[s * lanes + lane].re;
                    }
                }
            }
        }
        // Move the bra batch back as well.
        apply_op_batch(&mut lam, op, train, inputs, true);
    }

    // Sum per-lane gradients in lane order: identical FP order to summing
    // sequential per-sample gradients in sample order.
    let mut grad = vec![0.0; n_params];
    for gl in &grad_lanes {
        for (g, x) in grad.iter_mut().zip(gl) {
            *g += x;
        }
    }
    (losses, grad)
}

/// Computes the gradient with the parameter-shift rule where it applies
/// (two circuit evaluations per parameter at θ ± π/2) and falls back to a
/// central finite difference (step `1e-5`) for gates without a two-term rule
/// (controlled rotations).
///
/// This is the paper's hardware-compatible gradient path: every evaluation
/// is an ordinary circuit execution, so the same code runs against noisy
/// backends. Use [`adjoint_gradient`] for fast classical training.
///
/// # Panics
///
/// Panics if `train` is shorter than the circuit references.
pub fn parameter_shift_gradient(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    obs: &impl Observable,
) -> Vec<f64> {
    let n = circuit.num_train_params();
    // For each trainable index, check that every op referencing it is
    // two-term shiftable.
    let mut shiftable = vec![true; n];
    for op in circuit.iter() {
        for slot in &op.params {
            if let Some((ti, scale)) = slot.train_component() {
                // A unit |scale| maps a ±π/2 parameter shift to a ±π/2 angle
                // shift; anything else needs the fallback.
                if !op.kind.supports_parameter_shift() || (scale.abs() - 1.0).abs() > 1e-12 {
                    shiftable[ti] = false;
                }
            }
        }
    }
    // Batch all 2n shifted evaluations through one compiled plan.
    let h = 1e-5;
    let mut shifts = Vec::with_capacity(2 * n);
    for (i, &ok) in shiftable.iter().enumerate() {
        let s = if ok { std::f64::consts::FRAC_PI_2 } else { h };
        shifts.push((i, s));
        shifts.push((i, -s));
    }
    let evals = shifted_expectations(circuit, train, input, obs, &shifts);
    let mut grad = vec![0.0; n];
    for (i, g) in grad.iter_mut().enumerate() {
        let (plus, minus) = (evals[2 * i], evals[2 * i + 1]);
        *g = if shiftable[i] {
            (plus - minus) / 2.0
        } else {
            (plus - minus) / (2.0 * h)
        };
    }
    grad
}

/// Evaluates `<O>` for a batch of single-parameter shifts of `train`,
/// replaying one compiled fusion plan instead of recompiling per shift.
///
/// Each entry of `shifts` is `(train_index, delta)`: the circuit is
/// evaluated with `train[train_index] += delta` (all other parameters at
/// their base values). Only fused blocks containing the shifted parameter
/// are re-materialized per evaluation; every other block is reused from the
/// base materialization, so the result is bit-identical to compiling each
/// shifted parameter vector from scratch at the same fusion level.
///
/// # Panics
///
/// Panics if a shift index is out of bounds for `train`.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::{shifted_expectations, DiagObservable};
///
/// let mut c = Circuit::new(1);
/// c.push(GateKind::RY, &[0], &[Param::Train(0)]);
/// let obs = DiagObservable::new(vec![1.0]);
/// let e = shifted_expectations(&c, &[0.3], &[], &obs, &[(0, 0.0), (0, 0.2)]);
/// assert!((e[0] - 0.3f64.cos()).abs() < 1e-12);
/// assert!((e[1] - 0.5f64.cos()).abs() < 1e-12);
/// ```
pub fn shifted_expectations(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    obs: &impl Observable,
    shifts: &[(usize, f64)],
) -> Vec<f64> {
    let plan = SimPlan::compile(circuit, DEFAULT_FUSION_LEVEL);
    let base = plan.materialize(circuit, train, input);
    let mut state = StateVec::zero_state(circuit.num_qubits());
    let mut work = train.to_vec();
    let mut out = Vec::with_capacity(shifts.len());
    for &(i, delta) in shifts {
        let original = work[i];
        work[i] = original + delta;
        plan.replay_train_into(circuit, &base, &work, input, i, &mut state);
        work[i] = original;
        out.push(obs.expect(&state));
    }
    out
}

/// Central-finite-difference gradient, for testing the analytic engines.
pub fn numeric_gradient(
    circuit: &Circuit,
    train: &[f64],
    input: &[f64],
    obs: &impl Observable,
    h: f64,
) -> Vec<f64> {
    let eval = |params: &[f64]| -> f64 {
        let s = run(circuit, params, input, ExecMode::Dynamic);
        obs.expect(&s)
    };
    let mut grad = vec![0.0; circuit.num_train_params()];
    let mut work = train.to_vec();
    for (i, g) in grad.iter_mut().enumerate() {
        let original = work[i];
        work[i] = original + h;
        let plus = eval(&work);
        work[i] = original - h;
        let minus = eval(&work);
        *g = (plus - minus) / (2.0 * h);
        work[i] = original;
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{GateKind, Param};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: &[f64], b: &[f64], tol: f64, label: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "{label}: grad[{i}] {x} vs {y} (diff {})",
                (x - y).abs()
            );
        }
    }

    /// A parameterized circuit mixing every trainable gate kind.
    fn trainable_circuit() -> (Circuit, Vec<f64>) {
        let mut c = Circuit::new(3);
        let mut train = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut push = |c: &mut Circuit, kind: GateKind, qs: &[usize], train: &mut Vec<f64>| {
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|_| {
                    train.push(rng.gen_range(-2.0..2.0));
                    Param::Train(train.len() - 1)
                })
                .collect();
            c.push(kind, qs, &ps);
        };
        push(&mut c, GateKind::RX, &[0], &mut train);
        push(&mut c, GateKind::RY, &[1], &mut train);
        push(&mut c, GateKind::RZ, &[2], &mut train);
        push(&mut c, GateKind::U3, &[0], &mut train);
        push(&mut c, GateKind::U1, &[1], &mut train);
        push(&mut c, GateKind::U2, &[2], &mut train);
        push(&mut c, GateKind::CU3, &[0, 1], &mut train);
        push(&mut c, GateKind::CRY, &[1, 2], &mut train);
        push(&mut c, GateKind::CRX, &[2, 0], &mut train);
        push(&mut c, GateKind::CRZ, &[0, 2], &mut train);
        push(&mut c, GateKind::CU1, &[1, 0], &mut train);
        push(&mut c, GateKind::RZZ, &[0, 1], &mut train);
        push(&mut c, GateKind::RXX, &[1, 2], &mut train);
        push(&mut c, GateKind::RZX, &[2, 1], &mut train);
        push(&mut c, GateKind::RYY, &[0, 2], &mut train);
        (c, train)
    }

    #[test]
    fn adjoint_matches_numeric_on_mixed_circuit() {
        let (c, train) = trainable_circuit();
        let obs = DiagObservable::new(vec![0.7, -1.3, 0.4]);
        let (_, adj) = adjoint_gradient(&c, &train, &[], &obs);
        let num = numeric_gradient(&c, &train, &[], &obs, 1e-5);
        assert_close(&adj, &num, 1e-6, "adjoint vs numeric");
    }

    #[test]
    fn parameter_shift_matches_adjoint() {
        let (c, train) = trainable_circuit();
        let obs = DiagObservable::new(vec![1.0, 0.5, -0.25]);
        let (_, adj) = adjoint_gradient(&c, &train, &[], &obs);
        let ps = parameter_shift_gradient(&c, &train, &[], &obs);
        assert_close(&adj, &ps, 1e-6, "adjoint vs parameter-shift");
    }

    #[test]
    fn adjoint_expectation_matches_forward() {
        let (c, train) = trainable_circuit();
        let obs = DiagObservable::new(vec![1.0, 1.0, 1.0]);
        let (e, _) = adjoint_gradient(&c, &train, &[], &obs);
        let s = run(&c, &train, &[], ExecMode::Dynamic);
        assert!((e - obs.expect(&s)).abs() < 1e-12);
    }

    #[test]
    fn shared_parameter_accumulates() {
        // Same trainable index drives two RY gates on different qubits:
        // <Z0 + Z1> = 2 cos θ, gradient = -2 sin θ.
        let mut c = Circuit::new(2);
        c.push(GateKind::RY, &[0], &[Param::Train(0)]);
        c.push(GateKind::RY, &[1], &[Param::Train(0)]);
        let obs = DiagObservable::new(vec![1.0, 1.0]);
        let theta = 0.8;
        let (e, g) = adjoint_gradient(&c, &[theta], &[], &obs);
        assert!((e - 2.0 * theta.cos()).abs() < 1e-12);
        assert!((g[0] + 2.0 * theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn gradient_with_input_encoding() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        c.push(GateKind::RY, &[0], &[Param::Train(0)]);
        let obs = DiagObservable::new(vec![1.0]);
        let (_, adj) = adjoint_gradient(&c, &[0.4], &[0.9], &obs);
        let num = numeric_gradient(&c, &[0.4], &[0.9], &obs, 1e-5);
        assert_close(&adj, &num, 1e-7, "with input");
    }

    #[test]
    fn diag_observable_apply_matches_expect() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 0);
        let obs = DiagObservable::new(vec![0.3, -0.9]);
        let via_apply = s.inner(&obs.apply(&s)).re;
        assert!((via_apply - obs.expect(&s)).abs() < 1e-12);
    }

    #[test]
    fn batched_adjoint_matches_sequential_per_sample() {
        // Input-encoded circuit with shared trainables plus a mixed-slot
        // gate (U3 with one Input angle among Train angles).
        let mut c = Circuit::new(2);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        c.push(GateKind::RY, &[1], &[Param::Input(1)]);
        c.push(GateKind::RY, &[0], &[Param::Train(0)]);
        c.push(GateKind::CRY, &[0, 1], &[Param::Train(1)]);
        c.push(
            GateKind::U3,
            &[1],
            &[Param::Train(2), Param::Input(0), Param::Train(3)],
        );
        c.push(GateKind::RZZ, &[0, 1], &[Param::Train(4)]);
        let train = [0.3, -0.8, 1.2, 0.5, -0.4];
        let samples: Vec<Vec<f64>> = vec![vec![0.2, 1.4], vec![-0.9, 0.1], vec![2.2, -1.7]];
        let inputs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
        let lane_weights = [vec![0.7, -0.2], vec![-1.1, 0.4], vec![0.3, 0.9]];

        let (losses, grad) = adjoint_gradient_batch(&c, &train, &inputs, |lane, ez| {
            (ez[0] + ez[1], lane_weights[lane].clone())
        });

        let mut expected_grad = vec![0.0; train.len()];
        for (lane, input) in inputs.iter().enumerate() {
            let obs = DiagObservable::new(lane_weights[lane].clone());
            let (_, g) = adjoint_gradient(&c, &train, input, &obs);
            for (eg, x) in expected_grad.iter_mut().zip(&g) {
                *eg += x;
            }
            let s = run(&c, &train, input, ExecMode::Dynamic);
            let ez = s.expect_z_all();
            assert_eq!(losses[lane], ez[0] + ez[1], "lane {lane} loss");
        }
        // The transfer-matrix bracket reassociates the reduction, so the
        // match is to solver precision rather than bitwise.
        for (ti, (a, b)) in grad.iter().zip(&expected_grad).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "grad[{ti}]: batched {a} vs sequential {b}"
            );
        }
    }

    #[test]
    fn zero_param_circuit_has_empty_gradient() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0], &[]);
        let obs = DiagObservable::new(vec![1.0]);
        let (e, g) = adjoint_gradient(&c, &[], &[], &obs);
        assert!(e.abs() < 1e-12);
        assert!(g.is_empty());
    }
}
