//! The state vector and local gate application kernels.

use qns_tensor::{Mat2, Mat4, C64};
use rand::Rng;

/// An `n`-qubit pure state: `2^n` complex amplitudes.
///
/// Bit convention: qubit `q` is bit `q` of the basis index (little-endian),
/// so `|q2 q1 q0>` maps to index `q2·4 + q1·2 + q0`.
///
/// # Examples
///
/// ```
/// use qns_sim::StateVec;
/// let s = StateVec::zero_state(3);
/// assert_eq!(s.num_qubits(), 3);
/// assert!((s.probability(0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVec {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVec {
    /// Creates `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or larger than 30 (2^30 amplitudes is
    /// the supported ceiling).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!((1..=30).contains(&n_qubits), "1..=30 qubits supported");
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        StateVec { n_qubits, amps }
    }

    /// Creates a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm deviates from
    /// one by more than `1e-6`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let n = amps.len();
        assert!(
            n.is_power_of_two() && n >= 2,
            "length must be a power of two"
        );
        let n_qubits = n.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state must be normalized, got {norm}"
        );
        StateVec { n_qubits, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow of the amplitude vector.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable borrow of the amplitude vector. Callers must preserve the
    /// norm (checked only in debug assertions elsewhere).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Resets to `|0...0>` without reallocating.
    pub fn reset(&mut self) {
        for a in &mut self.amps {
            *a = C64::ZERO;
        }
        self.amps[0] = C64::ONE;
    }

    /// `|<self|other>|` inner product.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn inner(&self, other: &StateVec) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Squared norm (should be 1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes in place; returns the pre-normalization norm.
    pub fn normalize(&mut self) -> f64 {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
        norm
    }

    /// Probability of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Applies a one-qubit unitary to qubit `q` via the fast kernels:
    /// structure-specialized paths for diagonal and anti-diagonal matrices,
    /// and a cache-blocked general path otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let [m00, m01, m10, m11] = m.m;
        if m01 == C64::ZERO && m10 == C64::ZERO {
            if m00 == C64::ONE && m11 == C64::ONE {
                return; // identity
            }
            self.apply_1q_diag(m00, m11, q);
        } else if m00 == C64::ZERO && m11 == C64::ZERO {
            self.apply_1q_antidiag(m01, m10, q);
        } else {
            self.apply_1q_general(m, q);
        }
    }

    /// Diagonal 1q path: each amplitude is only scaled, one pass, no pairing.
    fn apply_1q_diag(&mut self, d0: C64, d1: C64, q: usize) {
        let stride = 1usize << q;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for a in lo {
                *a = d0 * *a;
            }
            for a in hi {
                *a = d1 * *a;
            }
        }
    }

    /// Anti-diagonal 1q path (X-like): swap halves with a scale.
    fn apply_1q_antidiag(&mut self, a01: C64, a10: C64, q: usize) {
        let stride = 1usize << q;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                *a0 = a01 * *a1;
                *a1 = a10 * x0;
            }
        }
    }

    /// General 1q path: blocked over `2*stride` chunks; the split borrow
    /// removes aliasing so the inner zip autovectorizes.
    fn apply_1q_general(&mut self, m: &Mat2, q: usize) {
        let stride = 1usize << q;
        let [m00, m01, m10, m11] = m.m;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m00 * x0 + m01 * x1;
                *a1 = m10 * x0 + m11 * x1;
            }
        }
    }

    /// Reference 1q kernel: the original naive pair loop, kept verbatim as
    /// the oracle for differential tests (`SimBackend::Reference`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q_reference(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let stride = 1usize << q;
        let [m00, m01, m10, m11] = m.m;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                let a0 = self.amps[i];
                let a1 = self.amps[i + stride];
                self.amps[i] = m00 * a0 + m01 * a1;
                self.amps[i + stride] = m10 * a0 + m11 * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies a two-qubit unitary; `qa` is the *high* bit of the 4-dim
    /// basis `|qa qb>` (matching [`Mat4`]'s convention, where controlled
    /// gates put the control first). Dispatches to structure-specialized
    /// kernels: diagonal, controlled-form, or blocked general.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        if mat4_is_diagonal(m) {
            self.apply_2q_diag(m, qa, qb);
        } else if mat4_is_controlled(m) {
            let sub = Mat2::new([m.m[10], m.m[11], m.m[14], m.m[15]]);
            self.apply_2q_controlled(&sub, qa, qb);
        } else {
            self.apply_2q_general(m, qa, qb);
        }
    }

    /// Diagonal 2q path: scale each of the four index classes in place.
    fn apply_2q_diag(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let (d00, d01, d10, d11) = (m.m[0], m.m[5], m.m[10], m.m[15]);
        if d00 == C64::ONE && d01 == C64::ONE && d10 == C64::ONE && d11 == C64::ONE {
            return; // identity
        }
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        for_each_2q_base(self.amps.len(), ba, bb, |i| {
            self.amps[i] = d00 * self.amps[i];
            self.amps[i | bb] = d01 * self.amps[i | bb];
            self.amps[i | ba] = d10 * self.amps[i | ba];
            self.amps[i | ba | bb] = d11 * self.amps[i | ba | bb];
        });
    }

    /// Controlled-form 2q path: the top-left block is identity, so only the
    /// half of the state with the control bit (`qa`) set is touched.
    fn apply_2q_controlled(&mut self, sub: &Mat2, qa: usize, qb: usize) {
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let [s00, s01, s10, s11] = sub.m;
        for_each_2q_base(self.amps.len(), ba, bb, |i| {
            let x0 = self.amps[i | ba];
            let x1 = self.amps[i | ba | bb];
            self.amps[i | ba] = s00 * x0 + s01 * x1;
            self.amps[i | ba | bb] = s10 * x0 + s11 * x1;
        });
    }

    /// General 2q path: blocked triple loop visiting exactly `len/4` base
    /// indices (the reference kernel scans all `len` and skips 3/4).
    fn apply_2q_general(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let w = &m.m;
        for_each_2q_base(self.amps.len(), ba, bb, |i| {
            let i01 = i | bb;
            let i10 = i | ba;
            let i11 = i | ba | bb;
            let v0 = self.amps[i];
            let v1 = self.amps[i01];
            let v2 = self.amps[i10];
            let v3 = self.amps[i11];
            self.amps[i] = w[0] * v0 + w[1] * v1 + w[2] * v2 + w[3] * v3;
            self.amps[i01] = w[4] * v0 + w[5] * v1 + w[6] * v2 + w[7] * v3;
            self.amps[i10] = w[8] * v0 + w[9] * v1 + w[10] * v2 + w[11] * v3;
            self.amps[i11] = w[12] * v0 + w[13] * v1 + w[14] * v2 + w[15] * v3;
        });
    }

    /// Reference 2q kernel: the original full-scan-and-skip loop, kept
    /// verbatim as the oracle for differential tests.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_2q_reference(&mut self, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let mask = ba | bb;
        let len = self.amps.len();
        for i in 0..len {
            if i & mask != 0 {
                continue;
            }
            let i00 = i;
            let i01 = i | bb;
            let i10 = i | ba;
            let i11 = i | mask;
            let v = [
                self.amps[i00],
                self.amps[i01],
                self.amps[i10],
                self.amps[i11],
            ];
            let out = m.mul_vec(&v);
            self.amps[i00] = out[0];
            self.amps[i01] = out[1];
            self.amps[i10] = out[2];
            self.amps[i11] = out[3];
        }
    }

    /// Expectation value of Pauli-Z on qubit `q`, in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn expect_z(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let bit = 1usize << q;
        let mut e = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if i & bit == 0 {
                e += p;
            } else {
                e -= p;
            }
        }
        e
    }

    /// Expectation values of Pauli-Z on every qubit in one pass.
    pub fn expect_z_all(&self) -> Vec<f64> {
        let mut e = vec![0.0; self.n_qubits];
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            for (q, eq) in e.iter_mut().enumerate() {
                if i & (1 << q) == 0 {
                    *eq += p;
                } else {
                    *eq -= p;
                }
            }
        }
        e
    }

    /// Expectation of the diagonal observable `Σ_q w_q Z_q`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.num_qubits()`.
    pub fn expect_weighted_z(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.n_qubits, "one weight per qubit");
        let mut e = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p == 0.0 {
                continue;
            }
            let mut d = 0.0;
            for (q, w) in weights.iter().enumerate() {
                if i & (1 << q) == 0 {
                    d += w;
                } else {
                    d -= w;
                }
            }
            e += p * d;
        }
        e
    }

    /// Samples `shots` measurement outcomes in the computational basis and
    /// returns per-basis-state counts as `(index, count)` pairs sorted by
    /// index. Uses the sorted-uniforms inverse-CDF method: O(2^n + shots).
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<(usize, u32)> {
        let mut uniforms: Vec<f64> = (0..shots).map(|_| rng.gen::<f64>()).collect();
        uniforms.sort_by(|a, b| a.partial_cmp(b).expect("uniforms are finite"));
        let mut counts: Vec<(usize, u32)> = Vec::new();
        let mut cdf = 0.0;
        let mut u = uniforms.into_iter().peekable();
        for (i, a) in self.amps.iter().enumerate() {
            cdf += a.norm_sqr();
            let mut c = 0u32;
            while let Some(&x) = u.peek() {
                if x <= cdf {
                    c += 1;
                    u.next();
                } else {
                    break;
                }
            }
            if c > 0 {
                counts.push((i, c));
            }
        }
        // Numerical slack: assign any stragglers to the last basis state.
        let assigned: u32 = counts.iter().map(|(_, c)| c).sum();
        let leftover = shots as u32 - assigned;
        if leftover > 0 {
            let last = self.amps.len() - 1;
            if let Some(entry) = counts.last_mut().filter(|(i, _)| *i == last) {
                entry.1 += leftover;
            } else {
                counts.push((last, leftover));
            }
        }
        counts
    }

    /// Estimates `<Z_q>` for every qubit from `shots` sampled measurements.
    pub fn expect_z_sampled<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<f64> {
        let counts = self.sample_counts(shots, rng);
        counts_to_expect_z(&counts, self.n_qubits, shots)
    }
}

/// Visits every base index with both `ba` and `bb` bits clear, in ascending
/// order, via a blocked triple loop — exactly `len / 4` callback invocations
/// with unit-stride inner runs of `min(ba, bb)` indices.
#[inline]
pub(crate) fn for_each_2q_base(len: usize, ba: usize, bb: usize, mut f: impl FnMut(usize)) {
    let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
    let mut base = 0;
    while base < len {
        let mut mid = base;
        while mid < base + hi {
            for i in mid..mid + lo {
                f(i);
            }
            mid += lo << 1;
        }
        base += hi << 1;
    }
}

/// True when all off-diagonal entries are exactly zero.
#[inline]
pub(crate) fn mat4_is_diagonal(m: &Mat4) -> bool {
    (0..4).all(|r| (0..4).all(|c| r == c || m.m[r * 4 + c] == C64::ZERO))
}

/// True when the matrix has controlled form: identity on the top-left 2×2
/// block and zeros everywhere outside the two diagonal blocks, i.e. it acts
/// only on the subspace where the high qubit is `|1>`.
#[inline]
pub(crate) fn mat4_is_controlled(m: &Mat4) -> bool {
    m.m[0] == C64::ONE
        && m.m[5] == C64::ONE
        && [1, 2, 3, 4, 6, 7, 8, 9, 12, 13]
            .iter()
            .all(|&k| m.m[k] == C64::ZERO)
}

/// Converts basis-state counts into per-qubit `<Z>` estimates.
///
/// # Examples
///
/// ```
/// // 10 shots of |01>: qubit 0 measured 1 (Z=-1), qubit 1 measured 0 (Z=+1).
/// let e = qns_sim::StateVec::zero_state(2); // doc anchor; see counts below
/// let counts = vec![(0b01usize, 10u32)];
/// let z = qns_sim::counts_to_expect_z(&counts, 2, 10);
/// assert_eq!(z, vec![-1.0, 1.0]);
/// # let _ = e;
/// ```
pub fn counts_to_expect_z(counts: &[(usize, u32)], n_qubits: usize, shots: usize) -> Vec<f64> {
    let mut e = vec![0.0; n_qubits];
    for &(idx, c) in counts {
        for (q, eq) in e.iter_mut().enumerate() {
            if idx & (1 << q) == 0 {
                *eq += c as f64;
            } else {
                *eq -= c as f64;
            }
        }
    }
    for eq in &mut e {
        *eq /= shots as f64;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_probabilities() {
        let s = StateVec::zero_state(2);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
        assert!(s.probability(1).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::pauli_x(), 1);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
        assert!((s.expect_z(1) + 1.0).abs() < 1e-12);
        assert!((s.expect_z(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut s = StateVec::zero_state(1);
        s.apply_1q(&Mat2::hadamard(), 0);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!(s.expect_z(0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_cnot() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 0);
        s.apply_2q(&Mat4::controlled(&Mat2::pauli_x()), 0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01).abs() < 1e-12);
    }

    #[test]
    fn control_ordering_matters() {
        // Control on qubit 1 (value |0>): target untouched.
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::pauli_x(), 0); // |01> (q0=1)
        s.apply_2q(&Mat4::controlled(&Mat2::pauli_x()), 1, 0);
        assert!((s.probability(0b01) - 1.0).abs() < 1e-12);
        // Control on qubit 0 (value |1>): target flips.
        s.apply_2q(&Mat4::controlled(&Mat2::pauli_x()), 0, 1);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expect_z_all_matches_individual() {
        let mut s = StateVec::zero_state(3);
        s.apply_1q(&Mat2::hadamard(), 0);
        s.apply_1q(&Mat2::pauli_x(), 2);
        let all = s.expect_z_all();
        for (q, a) in all.iter().enumerate() {
            assert!((a - s.expect_z(q)).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_z_is_linear_combination() {
        let mut s = StateVec::zero_state(3);
        s.apply_1q(&Mat2::hadamard(), 1);
        s.apply_1q(&Mat2::pauli_x(), 0);
        let w = [0.5, -1.0, 2.0];
        let direct = s.expect_weighted_z(&w);
        let sum: f64 = (0..3).map(|q| w[q] * s.expect_z(q)).sum();
        assert!((direct - sum).abs() < 1e-12);
    }

    #[test]
    fn inner_product_of_orthogonal_states() {
        let a = StateVec::zero_state(2);
        let mut b = StateVec::zero_state(2);
        b.apply_1q(&Mat2::pauli_x(), 0);
        assert!(a.inner(&b).abs() < 1e-12);
        assert!((a.inner(&a).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut s = StateVec::zero_state(2);
        s.apply_1q(&Mat2::hadamard(), 0);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = s.sample_counts(100_000, &mut rng);
        let total: u32 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 100_000);
        for &(idx, c) in &counts {
            let freq = c as f64 / 100_000.0;
            assert!((freq - s.probability(idx)).abs() < 0.01, "idx {idx}");
        }
    }

    #[test]
    fn sampled_expectation_converges() {
        let mut s = StateVec::zero_state(1);
        s.apply_1q(&Mat2::hadamard(), 0);
        let mut rng = StdRng::seed_from_u64(7);
        let z = s.expect_z_sampled(50_000, &mut rng);
        assert!(z[0].abs() < 0.02);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut s = StateVec::zero_state(1);
        s.amplitudes_mut()[0] = C64::new(2.0, 0.0);
        let pre = s.normalize();
        assert!((pre - 2.0).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        let _ = StateVec::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn apply_2q_same_qubit_panics() {
        let mut s = StateVec::zero_state(2);
        s.apply_2q(&Mat4::identity(), 1, 1);
    }

    /// A fixed non-trivial state to exercise kernels on.
    fn scrambled_state(n: usize, seed: u64) -> StateVec {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut amps: Vec<C64> = (0..1usize << n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = a.scale(1.0 / norm);
        }
        StateVec::from_amplitudes(amps)
    }

    fn assert_states_close(a: &StateVec, b: &StateVec, tol: f64, label: &str) {
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!(
                (*x - *y).norm_sqr().sqrt() < tol,
                "{label}: amp {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fast_1q_kernels_match_reference_for_all_structures() {
        // Diagonal (S), anti-diagonal (X), general (H) matrices, every qubit.
        let mats = [
            Mat2::pauli_x(),
            Mat2::pauli_z(),
            Mat2::hadamard(),
            Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, C64::new(0.0, 1.0)]),
        ];
        for (mi, m) in mats.iter().enumerate() {
            for q in 0..4 {
                let mut fast = scrambled_state(4, 7 + mi as u64);
                let mut refr = fast.clone();
                fast.apply_1q(m, q);
                refr.apply_1q_reference(m, q);
                assert_states_close(&fast, &refr, 1e-14, "1q kernel");
            }
        }
    }

    #[test]
    fn fast_2q_kernels_match_reference_for_all_structures() {
        // Controlled (CX), diagonal (CZ-like), general (CX sandwiched in H⊗H).
        let h2 = Mat2::hadamard().kron(&Mat2::hadamard());
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let cz = Mat4::controlled(&Mat2::pauli_z());
        let general = h2.mul_mat(&cx).mul_mat(&h2);
        for (mi, m) in [cx, cz, general].iter().enumerate() {
            for qa in 0..4 {
                for qb in 0..4 {
                    if qa == qb {
                        continue;
                    }
                    let mut fast = scrambled_state(4, 31 + mi as u64);
                    let mut refr = fast.clone();
                    fast.apply_2q(m, qa, qb);
                    refr.apply_2q_reference(m, qa, qb);
                    assert_states_close(&fast, &refr, 1e-14, "2q kernel");
                }
            }
        }
    }
}
