//! Differentiable state-vector simulator.
//!
//! This crate is the reproduction's analogue of the paper's *QuantumEngine*:
//! a fast simulator for parameterized quantum circuits with
//!
//! - **dynamic mode** — every gate is applied to the state vector one at a
//!   time (easy to debug, exact per-gate states), and
//! - **static mode** — gates are fused into 2×2 / 4×4 blocks before being
//!   applied (fusion v2: commuting-window merging + trailing absorption),
//!   cutting the number of state-vector sweeps (the paper reports ~2× from
//!   this; see the `engine_speed` and `sim_kernels` benches),
//! - **two backends** — [`SimBackend::Fast`] (structure-specialized,
//!   cache-blocked kernels; the default) and [`SimBackend::Reference`] (the
//!   original naive per-gate kernels, kept as the differential-test oracle),
//! - **plan replay** — [`SimPlan`] compiles the fusion structure once and
//!   re-materializes only dirty blocks across shifted parameter sets or new
//!   encoded inputs,
//! - **batched multi-state execution** — [`StateBatch`] packs B state
//!   vectors structure-of-arrays (amplitude-major, batch-contiguous lanes)
//!   so every shared gate is applied once across the whole minibatch, with
//!   per-lane kernels for input-encoder steps and per-trajectory noise;
//!   [`SimPlan::replay_batch_into`] and [`adjoint_gradient_batch`] run a
//!   whole minibatch's forward pass and adjoint gradient in one sweep,
//! - **exact gradients** via reverse-mode *adjoint differentiation* (one
//!   forward + one backward sweep for all parameters) and the
//!   *parameter-shift* rule (the paper's hardware-compatible alternative),
//! - Pauli-Z expectations, weighted-Z observables, and shot sampling.
//!
//! # Examples
//!
//! ```
//! use qns_circuit::{Circuit, GateKind};
//! use qns_sim::{run, ExecMode};
//!
//! let mut c = Circuit::new(2);
//! c.push(GateKind::H, &[0], &[]);
//! c.push(GateKind::CX, &[0, 1], &[]);
//! let state = run(&c, &[], &[], ExecMode::Dynamic);
//! // Bell state: <Z0> = 0.
//! assert!(state.expect_z(0).abs() < 1e-12);
//! ```

mod batch;
mod exec;
mod grad;
mod mps;
mod plan;
mod pool;
mod state;
mod state_batch;

pub use batch::{
    parallel_map, parallel_map_hinted, parallel_map_with, sequential_scope, set_parallelism,
    MIN_PARALLEL_ITEMS,
};
pub use exec::{
    run, run_into, run_into_with, run_mps, run_with, ExecMode, FusedOp, FusedProgram, SimBackend,
};
pub use grad::{
    adjoint_gradient, adjoint_gradient_batch, numeric_gradient, parameter_shift_gradient,
    shifted_expectations, DiagObservable, Observable,
};
pub use mps::{mps_stats, reset_mps_stats, MpsConfig, MpsState, MpsStats};
pub use plan::{SimPlan, DEFAULT_FUSION_LEVEL};
pub use state::{counts_to_expect_z, StateVec};
pub use state_batch::{StateBatch, DEFAULT_BATCH_LANES, LANE_CHUNK};
