//! Differentiable state-vector simulator.
//!
//! This crate is the reproduction's analogue of the paper's *QuantumEngine*:
//! a fast simulator for parameterized quantum circuits with
//!
//! - **dynamic mode** — every gate is applied to the state vector one at a
//!   time (easy to debug, exact per-gate states), and
//! - **static mode** — adjacent gates are fused into 2×2 / 4×4 blocks before
//!   being applied, cutting the number of state-vector sweeps (the paper
//!   reports ~2× from this; see the `engine_speed` bench),
//! - **batched execution** over many encoded inputs with thread parallelism,
//! - **exact gradients** via reverse-mode *adjoint differentiation* (one
//!   forward + one backward sweep for all parameters) and the
//!   *parameter-shift* rule (the paper's hardware-compatible alternative),
//! - Pauli-Z expectations, weighted-Z observables, and shot sampling.
//!
//! # Examples
//!
//! ```
//! use qns_circuit::{Circuit, GateKind};
//! use qns_sim::{run, ExecMode};
//!
//! let mut c = Circuit::new(2);
//! c.push(GateKind::H, &[0], &[]);
//! c.push(GateKind::CX, &[0, 1], &[]);
//! let state = run(&c, &[], &[], ExecMode::Dynamic);
//! // Bell state: <Z0> = 0.
//! assert!(state.expect_z(0).abs() < 1e-12);
//! ```

mod batch;
mod exec;
mod grad;
mod state;

pub use batch::{parallel_map, sequential_scope};
pub use exec::{run, run_into, ExecMode, FusedOp, FusedProgram};
pub use grad::{
    adjoint_gradient, numeric_gradient, parameter_shift_gradient, DiagObservable, Observable,
};
pub use state::{counts_to_expect_z, StateVec};
