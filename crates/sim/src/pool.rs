//! Process-wide persistent worker pool behind [`crate::parallel_map`].
//!
//! The first implementation spawned scoped threads per call. That is
//! correct but pays thread creation + teardown (~tens of microseconds) on
//! every minibatch and every trajectory fan-out — the per-call tax is what
//! kept the measured batch speedup at ~1× on small circuits. This module
//! keeps a lazily-created set of parked workers alive for the whole
//! process instead, so a dispatch costs one channel send per chunk.
//!
//! Design constraints inherited from the scoped version (see
//! `batch.rs`, which is the only consumer):
//!
//! - **No worker-count latching.** [`ensure_workers`] grows the pool on
//!   demand; `set_parallelism` keeps taking effect mid-process because each
//!   dispatch decides its chunk count first and only then tops the pool up.
//! - **No deadlock on nested dispatch.** A caller waiting for its chunks
//!   runs queued jobs itself via [`try_help`] — if every worker is tied up
//!   in an outer dispatch, the inner one still makes progress on the
//!   calling thread.
//! - **Panic containment.** Jobs never unwind into a worker: the dispatch
//!   site wraps each chunk in `catch_unwind` and ships the payload back as
//!   a value, so a worker survives any panicking closure and the caller
//!   re-raises the payload exactly like the scoped `join()` did.
//!
//! Workers block on the shared queue *while holding the queue lock*: a
//! parked worker therefore makes [`try_help`]'s `try_lock` fail precisely
//! when someone is already committed to consuming the next job, and
//! releases the lock before running the job so helpers can drain the queue
//! while workers are busy.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

/// A unit of work: one chunk of a `parallel_map` call, lifetime-erased by
/// the dispatch site (which guarantees it outlives the job by draining
/// every completion message before returning).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Mutex<Sender<Job>>,
    queue: Mutex<Receiver<Job>>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = channel();
        Pool {
            sender: Mutex::new(tx),
            queue: Mutex::new(rx),
            spawned: Mutex::new(0),
        }
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        // Hold the queue lock only while parked in `recv`; release it
        // before running the job so other workers and helpers proceed.
        let job = {
            let rx = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed — process is shutting down
        }
    }
}

/// Grows the pool to at least `target` workers. Never shrinks: surplus
/// workers park in `recv` and cost one blocked thread each, which is
/// cheaper than re-paying spawn latency when the worker count oscillates
/// (e.g. alternating training and trajectory phases).
pub(crate) fn ensure_workers(target: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap_or_else(|e| e.into_inner());
    while *spawned < target {
        // lint:allow(spawn) — the single sanctioned spawn site (QA003
        // audits this module by path): pool workers are process-wide,
        // created once, and owned by this module alone.
        std::thread::spawn(worker_loop);
        *spawned += 1;
    }
}

/// Enqueues one job for the workers (or a helping waiter) to run.
pub(crate) fn submit(job: Job) {
    let p = pool();
    let tx = p.sender.lock().unwrap_or_else(|e| e.into_inner());
    // The receiver lives in the global pool, so the channel can only be
    // closed during process teardown; a lost job at that point is moot.
    let _ = tx.send(job);
}

/// Runs one queued job on the calling thread if one is immediately
/// available and no parked worker has already committed to it. Returns
/// whether a job was run. Dispatch sites call this while waiting for
/// their own chunks so nested `parallel_map` calls cannot deadlock.
pub(crate) fn try_help() -> bool {
    let Some(p) = POOL.get() else {
        return false;
    };
    let job = {
        let Ok(rx) = p.queue.try_lock() else {
            return false; // a parked worker will take the job
        };
        match rx.try_recv() {
            Ok(job) => job,
            Err(_) => return false,
        }
    };
    job();
    true
}

/// Measured cost of one warm pool dispatch round-trip, in nanoseconds.
///
/// Calibrated once per process (minimum over a few no-op dispatches, so a
/// cold first round or a scheduler hiccup cannot inflate it) and cached:
/// the tiny-batch cutoff in `batch.rs` compares this against estimated
/// per-item work to decide when fanning out is worth it at all.
pub(crate) fn dispatch_overhead_ns() -> u64 {
    static OVERHEAD: OnceLock<u64> = OnceLock::new();
    *OVERHEAD.get_or_init(measure_dispatch_overhead)
}

fn measure_dispatch_overhead() -> u64 {
    ensure_workers(1);
    let mut best = u64::MAX;
    for _ in 0..8 {
        let (tx, rx) = channel::<()>();
        // lint:allow(wallclock) — one-time calibration of the pool's
        // dispatch latency for the tiny-batch cutoff; the reading gates
        // only *whether* to fan out and never feeds a simulation result.
        let t0 = std::time::Instant::now();
        submit(Box::new(move || {
            let _ = tx.send(());
        }));
        let _ = rx.recv();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best.max(1)
}
