//! Static execution plans: fusion structure compiled once per circuit,
//! materialized per parameter set, and replayed with dirty-step tracking.
//!
//! A [`SimPlan`] separates *what fuses* (a function of circuit structure
//! only) from *the fused matrices* (a function of the parameter values).
//! Compiling once and re-materializing per parameter set is what makes
//! batched parameter-shift gradients and per-sample input encoding cheap:
//! replay recomputes only the steps whose parameters actually changed and
//! reuses every other block bit-for-bit.
//!
//! Fusion levels:
//!
//! - **0** — no fusion: one block per gate (debugging / baselines),
//! - **1** — v1 greedy-adjacent: consecutive 1q gates on a qubit fold into
//!   one 2×2, a 2q gate absorbs pending 1q gates on its operands, and
//!   *immediately* consecutive 2q gates on the same pair merge,
//! - **2** — v2 commuting-window: a 2q gate merges into the most recent
//!   block on the same pair as long as every block in between acts on
//!   disjoint qubits (an exact reordering, not an approximation),
//! - **3** — v2 plus trailing absorption: leftover 1q gates at the end of
//!   the circuit fold into the last 2q block touching their qubit instead
//!   of being emitted as extra blocks.

use crate::exec::FusedOp;
use crate::{StateBatch, StateVec};
use qns_circuit::{Circuit, GateMatrix, Op};
use qns_tensor::{Mat2, Mat4};

/// Fusion level used by the fast path unless a caller asks otherwise.
pub const DEFAULT_FUSION_LEVEL: u8 = 3;

/// Which qubits one fused step acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepQubits {
    One(usize),
    /// First qubit is the high bit of the 4-dim basis, as in [`Mat4`].
    Two(usize, usize),
}

impl StepQubits {
    #[inline]
    fn touches(self, a: usize, b: usize) -> bool {
        match self {
            StepQubits::One(q) => q == a || q == b,
            StepQubits::Two(x, y) => x == a || x == b || y == a || y == b,
        }
    }
}

/// One fused step: the circuit op indices that compose into a single block.
#[derive(Clone, Debug)]
struct PlanStep {
    qubits: StepQubits,
    /// Op indices in application order (ascending circuit order within the
    /// step's light cone).
    ops: Vec<usize>,
}

/// A compiled fusion plan for one circuit structure.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
/// use qns_sim::{SimPlan, StateVec, DEFAULT_FUSION_LEVEL};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::RY, &[0], &[Param::Train(0)]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// let plan = SimPlan::compile(&c, DEFAULT_FUSION_LEVEL);
/// let mut state = StateVec::zero_state(2);
/// plan.execute_into(&c, &[0.3], &[], &mut state);
/// assert!((state.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SimPlan {
    n_qubits: usize,
    n_ops: usize,
    level: u8,
    steps: Vec<PlanStep>,
    /// Steps whose matrix depends on the per-sample input vector (sorted).
    input_steps: Vec<usize>,
    /// For each trainable parameter index, the steps referencing it (sorted).
    train_steps: Vec<Vec<usize>>,
}

impl SimPlan {
    /// Compiles the fusion structure of `circuit` at the given level
    /// (clamped to 0..=3). No parameter values are consulted.
    pub fn compile(circuit: &Circuit, level: u8) -> SimPlan {
        let level = level.min(3);
        let n = circuit.num_qubits();
        let ops: Vec<&Op> = circuit.iter().collect();
        let mut steps: Vec<PlanStep> = Vec::new();

        if level == 0 {
            for (idx, op) in ops.iter().enumerate() {
                let qubits = if op.num_qubits() == 1 {
                    StepQubits::One(op.qubits[0])
                } else {
                    StepQubits::Two(op.qubits[0], op.qubits[1])
                };
                steps.push(PlanStep {
                    qubits,
                    ops: vec![idx],
                });
            }
        } else {
            let mut pending: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (idx, op) in ops.iter().enumerate() {
                if op.num_qubits() == 1 {
                    pending[op.qubits[0]].push(idx);
                    continue;
                }
                let (a, b) = (op.qubits[0], op.qubits[1]);
                let mut block_ops: Vec<usize> =
                    Vec::with_capacity(pending[a].len() + pending[b].len() + 1);
                block_ops.append(&mut pending[a]);
                block_ops.append(&mut pending[b]);
                // Pendings on distinct qubits commute; ascending index order
                // restores circuit order deterministically.
                block_ops.sort_unstable();
                block_ops.push(idx);

                // Backward scan for a mergeable block on the same pair. At
                // level 1 only the immediately previous block qualifies; at
                // level >= 2 the scan walks past blocks on disjoint qubits
                // (exact commutation) and stops at the first block touching
                // either operand.
                let mut target: Option<usize> = None;
                for si in (0..steps.len()).rev() {
                    if !steps[si].qubits.touches(a, b) {
                        if level >= 2 {
                            continue;
                        }
                        break;
                    }
                    if let StepQubits::Two(x, y) = steps[si].qubits {
                        if (x, y) == (a, b) || (x, y) == (b, a) {
                            target = Some(si);
                        }
                    }
                    break;
                }
                match target {
                    Some(si) => steps[si].ops.extend(block_ops),
                    None => steps.push(PlanStep {
                        qubits: StepQubits::Two(a, b),
                        ops: block_ops,
                    }),
                }
            }
            // Flush leftover 1q runs. Level 3 absorbs them into the last 2q
            // block touching the qubit (everything after that block is
            // disjoint from it, so the reordering is exact).
            for (q, ops_q) in pending.into_iter().enumerate() {
                if ops_q.is_empty() {
                    continue;
                }
                if level >= 3 {
                    let target = steps.iter().rposition(|s| s.qubits.touches(q, q));
                    if let Some(si) = target {
                        if matches!(steps[si].qubits, StepQubits::Two(..)) {
                            steps[si].ops.extend(ops_q);
                            continue;
                        }
                    }
                }
                steps.push(PlanStep {
                    qubits: StepQubits::One(q),
                    ops: ops_q,
                });
            }
        }

        // Dependency tracking for replay: which steps reference the input
        // vector, and which reference each trainable parameter.
        let mut input_steps = Vec::new();
        let mut train_steps = vec![Vec::new(); circuit.num_train_params()];
        for (si, step) in steps.iter().enumerate() {
            let mut uses_input = false;
            let mut tis: Vec<usize> = Vec::new();
            for &oi in &step.ops {
                for p in &ops[oi].params {
                    if p.input_index().is_some() {
                        uses_input = true;
                    }
                    if let Some(ti) = p.train_index() {
                        tis.push(ti);
                    }
                }
            }
            if uses_input {
                input_steps.push(si);
            }
            tis.sort_unstable();
            tis.dedup();
            for ti in tis {
                train_steps[ti].push(si);
            }
        }

        SimPlan {
            n_qubits: n,
            n_ops: ops.len(),
            level,
            steps,
            input_steps,
            train_steps,
        }
    }

    /// Number of fused steps (= blocks after materialization).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The fusion level this plan was compiled at.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Width of the compiled circuit.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Resolves one step into its fused block for the given parameter sets.
    fn step_matrix(
        &self,
        step: &PlanStep,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
    ) -> FusedOp {
        let ops = circuit.ops();
        match step.qubits {
            StepQubits::One(q) => {
                let mut acc: Option<Mat2> = None;
                for &oi in &step.ops {
                    let op = &ops[oi];
                    let params = op.resolve_params(train, input);
                    if let GateMatrix::One(m) = op.kind.matrix(&params) {
                        acc = Some(match acc {
                            Some(prev) => m.mul_mat(&prev),
                            None => m,
                        });
                    }
                }
                FusedOp::One(q, acc.unwrap_or_else(Mat2::identity))
            }
            StepQubits::Two(sa, sb) => {
                let mut acc: Option<Mat4> = None;
                let mut pa: Option<Mat2> = None;
                let mut pb: Option<Mat2> = None;
                for &oi in &step.ops {
                    let op = &ops[oi];
                    let params = op.resolve_params(train, input);
                    match op.kind.matrix(&params) {
                        GateMatrix::One(m) => {
                            let slot = if op.qubits[0] == sa { &mut pa } else { &mut pb };
                            *slot = Some(match slot.take() {
                                Some(prev) => m.mul_mat(&prev),
                                None => m,
                            });
                        }
                        GateMatrix::Two(m) => {
                            let mut m4 = if (op.qubits[0], op.qubits[1]) == (sa, sb) {
                                m
                            } else {
                                m.swap_qubits()
                            };
                            let fa = pa.take().unwrap_or_else(Mat2::identity);
                            let fb = pb.take().unwrap_or_else(Mat2::identity);
                            m4 = m4.mul_mat(&fa.kron(&fb));
                            acc = Some(match acc {
                                Some(prev) => m4.mul_mat(&prev),
                                None => m4,
                            });
                        }
                    }
                }
                let mut m4 = acc.unwrap_or_else(Mat4::identity);
                // Trailing 1q gates absorbed at fusion level 3.
                if pa.is_some() || pb.is_some() {
                    let fa = pa.unwrap_or_else(Mat2::identity);
                    let fb = pb.unwrap_or_else(Mat2::identity);
                    m4 = fa.kron(&fb).mul_mat(&m4);
                }
                FusedOp::Two(sa, sb, m4)
            }
        }
    }

    /// Materializes every step into a fused block for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if a referenced parameter index is out of bounds.
    pub fn materialize(&self, circuit: &Circuit, train: &[f64], input: &[f64]) -> Vec<FusedOp> {
        assert_eq!(circuit.num_ops(), self.n_ops, "circuit/plan mismatch");
        self.steps
            .iter()
            .map(|s| self.step_matrix(s, circuit, train, input))
            .collect()
    }

    /// Resets `state` and executes the plan, materializing each block on the
    /// fly (no intermediate block vector).
    ///
    /// # Panics
    ///
    /// Panics if `state` has a different width than the plan.
    pub fn execute_into(
        &self,
        circuit: &Circuit,
        train: &[f64],
        input: &[f64],
        state: &mut StateVec,
    ) {
        assert_eq!(state.num_qubits(), self.n_qubits, "width mismatch");
        assert_eq!(circuit.num_ops(), self.n_ops, "circuit/plan mismatch");
        state.reset();
        for s in &self.steps {
            apply_block(&self.step_matrix(s, circuit, train, input), state);
        }
    }

    /// Replays the plan with one trainable parameter changed: steps that
    /// reference `changed` are re-materialized from `train`; every other
    /// step reuses its block from `base` bit-for-bit.
    ///
    /// `base` must come from [`SimPlan::materialize`] on the same plan; the
    /// result is bit-identical to a full rematerialization with `train`.
    ///
    /// # Panics
    ///
    /// Panics if `base` has the wrong length or widths mismatch.
    pub fn replay_train_into(
        &self,
        circuit: &Circuit,
        base: &[FusedOp],
        train: &[f64],
        input: &[f64],
        changed: usize,
        state: &mut StateVec,
    ) {
        let dirty: &[usize] = self
            .train_steps
            .get(changed)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        self.replay_into(circuit, base, train, input, dirty, state);
    }

    /// Replays the plan for a new input vector: only input-dependent steps
    /// are re-materialized.
    ///
    /// # Panics
    ///
    /// Panics if `base` has the wrong length or widths mismatch.
    pub fn replay_input_into(
        &self,
        circuit: &Circuit,
        base: &[FusedOp],
        train: &[f64],
        input: &[f64],
        state: &mut StateVec,
    ) {
        let dirty: Vec<usize> = self.input_steps.clone();
        self.replay_into(circuit, base, train, input, &dirty, state);
    }

    /// Replays the plan over a whole minibatch at once: shared-parameter
    /// steps are applied from `base` to every lane in one batched sweep,
    /// while input-dependent steps are re-materialized per lane from that
    /// lane's input vector.
    ///
    /// Lane `l` of the result is bit-identical to
    /// [`SimPlan::replay_input_into`] with `inputs[l]` on a standalone
    /// [`StateVec`].
    ///
    /// # Panics
    ///
    /// Panics if `base` has the wrong length, widths mismatch, or the lane
    /// count differs from `inputs.len()`.
    pub fn replay_batch_into(
        &self,
        circuit: &Circuit,
        base: &[FusedOp],
        train: &[f64],
        inputs: &[&[f64]],
        batch: &mut StateBatch,
    ) {
        assert_eq!(batch.num_qubits(), self.n_qubits, "width mismatch");
        assert_eq!(base.len(), self.steps.len(), "base/plan mismatch");
        assert_eq!(batch.lanes(), inputs.len(), "one input vector per lane");
        batch.reset();
        let mut next_dirty = self.input_steps.iter().peekable();
        for (si, (step, blk)) in self.steps.iter().zip(base).enumerate() {
            if next_dirty.peek() == Some(&&si) {
                next_dirty.next();
                // A step's arity and qubits are fixed; only the matrix
                // values vary with the input. Collect the per-lane
                // matrices and let the batch sweep all lanes in one planar
                // pass instead of one strided walk per lane.
                let mut ones: Vec<Mat2> = Vec::new();
                let mut one_q = 0;
                let mut twos: Vec<Mat4> = Vec::new();
                let mut two_qs = (0, 0);
                for input in inputs.iter() {
                    match self.step_matrix(step, circuit, train, input) {
                        FusedOp::One(q, m) => {
                            one_q = q;
                            ones.push(m);
                        }
                        FusedOp::Two(a, b, m) => {
                            two_qs = (a, b);
                            twos.push(m);
                        }
                    }
                }
                if !ones.is_empty() {
                    batch.apply_1q_per_lane(&ones, one_q);
                }
                if !twos.is_empty() {
                    batch.apply_2q_per_lane(&twos, two_qs.0, two_qs.1);
                }
            } else {
                apply_block_batch(blk, batch);
            }
        }
    }

    /// Shared replay core: `dirty` is a sorted list of step indices to
    /// re-materialize.
    fn replay_into(
        &self,
        circuit: &Circuit,
        base: &[FusedOp],
        train: &[f64],
        input: &[f64],
        dirty: &[usize],
        state: &mut StateVec,
    ) {
        assert_eq!(state.num_qubits(), self.n_qubits, "width mismatch");
        assert_eq!(base.len(), self.steps.len(), "base/plan mismatch");
        state.reset();
        let mut next_dirty = dirty.iter().peekable();
        for (si, (step, blk)) in self.steps.iter().zip(base).enumerate() {
            if next_dirty.peek() == Some(&&si) {
                next_dirty.next();
                apply_block(&self.step_matrix(step, circuit, train, input), state);
            } else {
                apply_block(blk, state);
            }
        }
    }
}

/// Applies one fused block to a state.
#[inline]
pub(crate) fn apply_block(b: &FusedOp, state: &mut StateVec) {
    match b {
        FusedOp::One(q, m) => state.apply_1q(m, *q),
        FusedOp::Two(a, b2, m) => state.apply_2q(m, *a, *b2),
    }
}

/// Applies one fused block to every lane of a batch.
#[inline]
pub(crate) fn apply_block_batch(b: &FusedOp, batch: &mut StateBatch) {
    match b {
        FusedOp::One(q, m) => batch.apply_1q(m, *q),
        FusedOp::Two(a, b2, m) => batch.apply_2q(m, *a, *b2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, ExecMode};
    use qns_circuit::{GateKind, Param};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_circuit(n_qubits: usize, n_ops: usize, seed: u64) -> (Circuit, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n_qubits);
        let kinds = GateKind::all();
        let mut train = Vec::new();
        for _ in 0..n_ops {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let q0 = rng.gen_range(0..n_qubits);
            let qs: Vec<usize> = if kind.num_qubits() == 1 {
                vec![q0]
            } else {
                let mut q1 = rng.gen_range(0..n_qubits);
                while q1 == q0 {
                    q1 = rng.gen_range(0..n_qubits);
                }
                vec![q0, q1]
            };
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|_| {
                    train.push(rng.gen_range(-3.0..3.0));
                    Param::Train(train.len() - 1)
                })
                .collect();
            c.push(kind, &qs, &ps);
        }
        (c, train)
    }

    #[test]
    fn all_fusion_levels_agree_with_dynamic() {
        for seed in 0..6 {
            let (c, train) = random_circuit(4, 40, seed);
            let reference = run(&c, &train, &[], ExecMode::Dynamic);
            for level in 0..=3 {
                let plan = SimPlan::compile(&c, level);
                let mut s = StateVec::zero_state(4);
                plan.execute_into(&c, &train, &[], &mut s);
                let fidelity = reference.inner(&s).abs();
                assert!(
                    (fidelity - 1.0).abs() < 1e-10,
                    "level {level} seed {seed}: fidelity {fidelity}"
                );
            }
        }
    }

    #[test]
    fn higher_levels_fuse_at_least_as_much() {
        let (c, _) = random_circuit(5, 80, 3);
        let counts: Vec<usize> = (0..=3)
            .map(|l| SimPlan::compile(&c, l).num_steps())
            .collect();
        assert_eq!(counts[0], c.num_ops(), "level 0 is one block per gate");
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "fusion must not regress: {counts:?}");
        }
    }

    #[test]
    fn window_merge_skips_disjoint_blocks() {
        // CX(0,1), CZ(2,3), CX(0,1): v1 keeps 3 blocks, v2 merges the outer
        // pair across the disjoint middle block.
        let mut c = Circuit::new(4);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CZ, &[2, 3], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        assert_eq!(SimPlan::compile(&c, 1).num_steps(), 3);
        assert_eq!(SimPlan::compile(&c, 2).num_steps(), 2);
        let reference = run(&c, &[], &[], ExecMode::Dynamic);
        let plan = SimPlan::compile(&c, 2);
        let mut s = StateVec::zero_state(4);
        plan.execute_into(&c, &[], &[], &mut s);
        assert!((reference.inner(&s).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn level3_absorbs_trailing_1q() {
        // CX(0,1) then H(0): level 2 emits 2 blocks, level 3 absorbs the H.
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::H, &[0], &[]);
        assert_eq!(SimPlan::compile(&c, 2).num_steps(), 2);
        assert_eq!(SimPlan::compile(&c, 3).num_steps(), 1);
        let reference = run(&c, &[], &[], ExecMode::Dynamic);
        let plan = SimPlan::compile(&c, 3);
        let mut s = StateVec::zero_state(2);
        plan.execute_into(&c, &[], &[], &mut s);
        assert!((reference.inner(&s).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_train_is_bit_identical_to_full_materialize() {
        let (c, mut train) = random_circuit(4, 30, 17);
        if train.is_empty() {
            return;
        }
        let plan = SimPlan::compile(&c, DEFAULT_FUSION_LEVEL);
        let base = plan.materialize(&c, &train, &[]);
        let changed = train.len() / 2;
        train[changed] += 0.731;
        let mut replayed = StateVec::zero_state(4);
        plan.replay_train_into(&c, &base, &train, &[], changed, &mut replayed);
        let mut full = StateVec::zero_state(4);
        plan.execute_into(&c, &train, &[], &mut full);
        assert_eq!(
            replayed.amplitudes(),
            full.amplitudes(),
            "replay must be bit-identical"
        );
    }

    #[test]
    fn replay_input_is_bit_identical_to_full_materialize() {
        let mut c = Circuit::new(2);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        c.push(GateKind::RY, &[1], &[Param::Train(0)]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RZ, &[0], &[Param::Input(1)]);
        let plan = SimPlan::compile(&c, DEFAULT_FUSION_LEVEL);
        let train = [0.4];
        let base = plan.materialize(&c, &train, &[0.1, 0.2]);
        let input = [1.9, -0.6];
        let mut replayed = StateVec::zero_state(2);
        plan.replay_input_into(&c, &base, &train, &input, &mut replayed);
        let mut full = StateVec::zero_state(2);
        plan.execute_into(&c, &train, &input, &mut full);
        assert_eq!(replayed.amplitudes(), full.amplitudes());
    }
}
