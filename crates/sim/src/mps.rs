//! Matrix-product-state simulator backend.
//!
//! Represents an `n`-qubit state as a chain of site tensors
//! `A_0 · A_1 · ... · A_{n-1}`, where site `q` carries qubit `q`'s physical
//! index (little-endian, matching [`StateVec`](crate::StateVec)) between a
//! left and a right bond index. Site data is row-major
//! `data[(a * 2 + s) * right + b]` for left bond `a`, physical bit `s`,
//! right bond `b`.
//!
//! One-qubit gates contract locally with the physical index. Two-qubit gates
//! on adjacent sites contract the pair into a two-site tensor, apply the 4×4
//! unitary, and split back with an SVD; non-adjacent pairs are routed
//! together by a chain of adjacent SWAPs and routed back afterwards. Each
//! split truncates the singular-value spectrum to [`MpsConfig::max_bond`]
//! values and to a discarded-weight budget of
//! [`MpsConfig::truncation_cutoff`], renormalizing what is kept.
//!
//! With a bond limit at or above `2^(n/2)` and a zero cutoff no truncation
//! can ever fire and the simulation is *exact*: amplitudes agree with the
//! dense state vector to numerical precision. Below that, results are
//! approximate and every discarded weight is recorded in process-wide
//! truncation counters (see [`mps_stats`]) so lossy scoring is auditable.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::StateVec;
use qns_tensor::{svd, Mat2, Mat4, Matrix, C64};

/// Truncation-event counter (number of SVD splits that dropped weight).
static TRUNCATION_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Total discarded squared weight, in units of 1e-12 (picoweight).
static TRUNCATION_WEIGHT_PICO: AtomicU64 = AtomicU64::new(0);
/// Largest bond dimension produced by any split.
static MAX_BOND_SEEN: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide MPS truncation telemetry.
///
/// Counters accumulate across all [`MpsState`] instances since process start
/// or the last [`reset_mps_stats`]; the runtime mirrors them into the
/// metrics registry so they surface in `--stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MpsStats {
    /// SVD splits that discarded nonzero weight.
    pub truncation_events: u64,
    /// Total discarded squared weight in 1e-12 units.
    pub truncated_weight_pico: u64,
    /// Largest bond dimension any split produced.
    pub max_bond_seen: u64,
}

/// Reads the current MPS truncation counters.
pub fn mps_stats() -> MpsStats {
    MpsStats {
        truncation_events: TRUNCATION_EVENTS.load(Ordering::Relaxed),
        truncated_weight_pico: TRUNCATION_WEIGHT_PICO.load(Ordering::Relaxed),
        max_bond_seen: MAX_BOND_SEEN.load(Ordering::Relaxed),
    }
}

/// Resets the MPS truncation counters to zero.
pub fn reset_mps_stats() {
    TRUNCATION_EVENTS.store(0, Ordering::Relaxed);
    TRUNCATION_WEIGHT_PICO.store(0, Ordering::Relaxed);
    MAX_BOND_SEEN.store(0, Ordering::Relaxed);
}

/// Bond-truncation policy for the MPS backend.
///
/// Equality is bitwise on the cutoff so the containing
/// [`SimBackend`](crate::SimBackend) stays `Eq` and configs hash/compare
/// deterministically in context digests.
#[derive(Clone, Copy, Debug)]
pub struct MpsConfig {
    /// Hard cap on any bond dimension; splits keep at most this many
    /// singular values.
    pub max_bond: usize,
    /// Maximum squared weight a single split may discard *before* the
    /// `max_bond` cap applies: the split keeps the fewest values whose
    /// discarded tail stays at or under this budget. `0.0` disables
    /// weight-based truncation.
    pub truncation_cutoff: f64,
}

impl MpsConfig {
    /// A config that never truncates: unbounded bond, zero cutoff. Exact
    /// for any circuit width where the dense bond (`2^(n/2)`) fits memory.
    pub fn exact() -> Self {
        MpsConfig {
            max_bond: usize::MAX,
            truncation_cutoff: 0.0,
        }
    }

    /// A bond-capped config with zero weight cutoff.
    pub fn with_max_bond(max_bond: usize) -> Self {
        MpsConfig {
            max_bond: max_bond.max(1),
            truncation_cutoff: 0.0,
        }
    }
}

impl Default for MpsConfig {
    /// Bond cap 64, cutoff `1e-12` — exact for shallow/narrow circuits,
    /// gently lossy beyond.
    fn default() -> Self {
        MpsConfig {
            max_bond: 64,
            truncation_cutoff: 1e-12,
        }
    }
}

impl PartialEq for MpsConfig {
    fn eq(&self, other: &Self) -> bool {
        self.max_bond == other.max_bond
            && self.truncation_cutoff.to_bits() == other.truncation_cutoff.to_bits()
    }
}

impl Eq for MpsConfig {}

/// One site tensor: `left × 2 × right`, row-major over `(left, phys, right)`.
#[derive(Clone, Debug)]
struct Site {
    left: usize,
    right: usize,
    data: Vec<C64>,
}

impl Site {
    #[inline]
    fn idx(&self, a: usize, s: usize, b: usize) -> usize {
        (a * 2 + s) * self.right + b
    }
}

/// A matrix-product state over `n` qubits, kept in mixed-canonical form.
///
/// Sites left of the orthogonality `center` are left isometries, sites
/// right of it are right isometries, and the center site carries the norm.
/// One-qubit unitaries preserve the form wherever they act; two-qubit gates
/// move the center to the active bond first, so the singular values of
/// every split are genuine Schmidt coefficients — truncating them is
/// optimal and renormalizing the kept spectrum preserves the global norm.
///
/// # Examples
///
/// ```
/// use qns_sim::{MpsConfig, MpsState};
/// use qns_tensor::Mat2;
///
/// let mut mps = MpsState::zero_state(3, MpsConfig::exact());
/// mps.apply_1q(&Mat2::pauli_x(), 1);
/// let z = mps.expect_z_all();
/// assert!((z[0] - 1.0).abs() < 1e-12);
/// assert!((z[1] + 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct MpsState {
    sites: Vec<Site>,
    config: MpsConfig,
    /// Orthogonality center: sites `< center` are left isometries, sites
    /// `> center` are right isometries.
    center: usize,
}

impl MpsState {
    /// The all-zeros product state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn zero_state(n_qubits: usize, config: MpsConfig) -> Self {
        assert!(n_qubits > 0, "state must have at least one qubit");
        let sites = (0..n_qubits)
            .map(|_| Site {
                left: 1,
                right: 1,
                data: vec![C64::ONE, C64::ZERO],
            })
            .collect();
        MpsState {
            sites,
            config,
            center: 0,
        }
    }

    /// Number of qubits (sites).
    pub fn num_qubits(&self) -> usize {
        self.sites.len()
    }

    /// The truncation policy this state was built with.
    pub fn config(&self) -> MpsConfig {
        self.config
    }

    /// Resets to `|0...0>`, collapsing all bonds back to 1.
    pub fn reset(&mut self) {
        for site in &mut self.sites {
            site.left = 1;
            site.right = 1;
            site.data.clear();
            site.data.extend_from_slice(&[C64::ONE, C64::ZERO]);
        }
        self.center = 0;
    }

    /// Current bond dimensions, one per internal bond (`n - 1` entries).
    pub fn bond_dims(&self) -> Vec<usize> {
        self.sites[..self.sites.len() - 1]
            .iter()
            .map(|s| s.right)
            .collect()
    }

    /// Applies a one-qubit unitary to qubit `q` (local, never truncates).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.sites.len(), "qubit out of range");
        let site = &mut self.sites[q];
        for a in 0..site.left {
            for b in 0..site.right {
                let i0 = (a * 2) * site.right + b;
                let i1 = (a * 2 + 1) * site.right + b;
                let x0 = site.data[i0];
                let x1 = site.data[i1];
                site.data[i0] = m.m[0] * x0 + m.m[1] * x1;
                site.data[i1] = m.m[2] * x0 + m.m[3] * x1;
            }
        }
    }

    /// Moves the orthogonality center one site to the right by a
    /// rank-revealing split of the center site. Never weight-truncates.
    fn push_center_right(&mut self) {
        let c = self.center;
        let site = &self.sites[c];
        let f = svd(&Matrix::from_vec(
            site.left * 2,
            site.right,
            site.data.clone(),
        ));
        let keep = f.rank();
        MAX_BOND_SEEN.fetch_max(keep as u64, Ordering::Relaxed);
        let mut left_data = vec![C64::ZERO; site.left * 2 * keep];
        for row in 0..site.left * 2 {
            for k in 0..keep {
                left_data[row * keep + k] = f.u[(row, k)];
            }
        }
        let old_right = site.right;
        // carry[k, r] = s_k * vt[k, r] folds into the next site's left bond.
        let next = &self.sites[c + 1];
        let mut next_data = vec![C64::ZERO; keep * 2 * next.right];
        for k in 0..keep {
            for r in 0..old_right {
                let w = f.vt[(k, r)].scale(f.s[k]);
                if w.re == 0.0 && w.im == 0.0 {
                    continue;
                }
                for s in 0..2 {
                    for b in 0..next.right {
                        next_data[(k * 2 + s) * next.right + b] += w * next.data[next.idx(r, s, b)];
                    }
                }
            }
        }
        let (site_left, next_right) = (site.left, next.right);
        self.sites[c] = Site {
            left: site_left,
            right: keep,
            data: left_data,
        };
        self.sites[c + 1] = Site {
            left: keep,
            right: next_right,
            data: next_data,
        };
        self.center = c + 1;
    }

    /// Moves the orthogonality center one site to the left (mirror of
    /// [`MpsState::push_center_right`]).
    fn push_center_left(&mut self) {
        let c = self.center;
        let site = &self.sites[c];
        // Row-major (left) × (2 * right): the site layout is already this
        // matrix, no reshuffle needed.
        let f = svd(&Matrix::from_vec(
            site.left,
            2 * site.right,
            site.data.clone(),
        ));
        let keep = f.rank();
        MAX_BOND_SEEN.fetch_max(keep as u64, Ordering::Relaxed);
        let mut right_data = vec![C64::ZERO; keep * 2 * site.right];
        for k in 0..keep {
            for col in 0..2 * site.right {
                right_data[k * 2 * site.right + col] = f.vt[(k, col)];
            }
        }
        let old_left = site.left;
        // carry[a, k] = U[a, k] * s_k folds into the previous site's right.
        let prev = &self.sites[c - 1];
        let mut prev_data = vec![C64::ZERO; prev.left * 2 * keep];
        for a in 0..prev.left {
            for s in 0..2 {
                for j in 0..old_left {
                    let x = prev.data[prev.idx(a, s, j)];
                    if x.re == 0.0 && x.im == 0.0 {
                        continue;
                    }
                    for k in 0..keep {
                        prev_data[(a * 2 + s) * keep + k] += x * f.u[(j, k)].scale(f.s[k]);
                    }
                }
            }
        }
        let (site_right, prev_left) = (site.right, prev.left);
        self.sites[c] = Site {
            left: keep,
            right: site_right,
            data: right_data,
        };
        self.sites[c - 1] = Site {
            left: prev_left,
            right: keep,
            data: prev_data,
        };
        self.center = c - 1;
    }

    /// Moves the orthogonality center to site `target`.
    fn move_center_to(&mut self, target: usize) {
        while self.center < target {
            self.push_center_right();
        }
        while self.center > target {
            self.push_center_left();
        }
    }

    /// Applies a two-qubit unitary; `qa` is the high bit of the 4×4 basis,
    /// matching [`StateVec::apply_2q`](crate::StateVec::apply_2q).
    ///
    /// Non-adjacent pairs are routed adjacent with SWAP chains and routed
    /// back afterwards; every split along the way honors the truncation
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if the qubits are out of range or equal.
    pub fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let n = self.sites.len();
        assert!(qa < n && qb < n && qa != qb, "bad qubit pair");
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        // Route qubit `hi`'s tensor down to site lo+1.
        for j in ((lo + 1)..hi).rev() {
            self.swap_adjacent(j);
        }
        // The two-site contraction indexes the pair as (left_site, right_site)
        // = (high, low) of the 4×4 sub-basis; reorient when the caller's high
        // bit (`qa`) sits on the right site.
        let oriented = if qa == lo { *m } else { m.swap_qubits() };
        self.apply_2q_adjacent(&oriented, lo);
        // Route back so site q holds qubit q again.
        for j in (lo + 1)..hi {
            self.swap_adjacent(j);
        }
    }

    /// Swaps the qubits at sites `i` and `i + 1`.
    fn swap_adjacent(&mut self, i: usize) {
        let mut swap = Mat4::zero();
        swap.m[0] = C64::ONE; // |00> -> |00>
        swap.m[4 + 2] = C64::ONE; // |10> -> |01>
        swap.m[2 * 4 + 1] = C64::ONE; // |01> -> |10>
        swap.m[3 * 4 + 3] = C64::ONE; // |11> -> |11>
        self.apply_2q_adjacent(&swap, i);
    }

    /// Contract sites `i, i+1`, apply the 4×4 (left site = high bit of the
    /// sub-basis), split back with a truncated SVD.
    ///
    /// Moves the orthogonality center to the active bond first so the split
    /// spectrum consists of genuine Schmidt coefficients; afterwards the
    /// center sits at `i + 1`.
    fn apply_2q_adjacent(&mut self, m: &Mat4, i: usize) {
        if self.center < i {
            self.move_center_to(i);
        } else if self.center > i + 1 {
            self.move_center_to(i + 1);
        }
        let a_dim = self.sites[i].left;
        let k_dim = self.sites[i].right;
        let b_dim = self.sites[i + 1].right;
        debug_assert_eq!(k_dim, self.sites[i + 1].left, "bond mismatch");

        // theta[(a, sl, sr, b)] = sum_k L[a, sl, k] R[k, sr, b], laid out so
        // that (a*2+sl) is the row and (sr*b_dim+b) the column of the split.
        let cols = 2 * b_dim;
        let mut theta = vec![C64::ZERO; a_dim * 2 * cols];
        {
            let left = &self.sites[i];
            let right = &self.sites[i + 1];
            for a in 0..a_dim {
                for sl in 0..2 {
                    for k in 0..k_dim {
                        let x = left.data[left.idx(a, sl, k)];
                        if x.re == 0.0 && x.im == 0.0 {
                            continue;
                        }
                        let row = (a * 2 + sl) * cols;
                        for sr in 0..2 {
                            for b in 0..b_dim {
                                theta[row + sr * b_dim + b] += x * right.data[right.idx(k, sr, b)];
                            }
                        }
                    }
                }
            }
        }

        // Rotate the physical pair by the gate: the sub-basis index is
        // sl*2 + sr (left site is the high bit).
        let mut rotated = vec![C64::ZERO; theta.len()];
        for a in 0..a_dim {
            for b in 0..b_dim {
                for r in 0..4 {
                    let mut acc = C64::ZERO;
                    for c in 0..4 {
                        let (sl, sr) = (c >> 1, c & 1);
                        acc += m.m[r * 4 + c] * theta[(a * 2 + sl) * cols + sr * b_dim + b];
                    }
                    let (sl, sr) = (r >> 1, r & 1);
                    rotated[(a * 2 + sl) * cols + sr * b_dim + b] = acc;
                }
            }
        }

        #[cfg(feature = "mps-split-audit")]
        let rotated_copy = rotated.clone();
        let f = svd(&Matrix::from_vec(2 * a_dim, cols, rotated));
        let (keep, renorm) = self.truncate_spectrum(&f.s);

        let mut left_data = vec![C64::ZERO; a_dim * 2 * keep];
        for row in 0..2 * a_dim {
            for k in 0..keep {
                left_data[row * keep + k] = f.u[(row, k)];
            }
        }
        let mut right_data = vec![C64::ZERO; keep * 2 * b_dim];
        for k in 0..keep {
            let w = f.s[k] * renorm;
            for col in 0..cols {
                let (sr, b) = (col / b_dim, col % b_dim);
                right_data[(k * 2 + sr) * b_dim + b] = f.vt[(k, col)].scale(w);
            }
        }
        self.sites[i] = Site {
            left: a_dim,
            right: keep,
            data: left_data,
        };
        self.sites[i + 1] = Site {
            left: keep,
            right: b_dim,
            data: right_data,
        };
        self.center = i + 1;
        #[cfg(feature = "mps-split-audit")]
        {
            let li = &self.sites[i];
            let ri = &self.sites[i + 1];
            let mut worst = 0.0f64;
            for a in 0..a_dim {
                for sl in 0..2 {
                    for sr in 0..2 {
                        for b in 0..b_dim {
                            let mut acc = C64::ZERO;
                            for k in 0..keep {
                                acc += li.data[li.idx(a, sl, k)] * ri.data[ri.idx(k, sr, b)];
                            }
                            let want = rotated_copy[(a * 2 + sl) * cols + sr * b_dim + b];
                            worst = worst.max((acc - want).norm_sqr().sqrt());
                        }
                    }
                }
            }
            if worst > 1e-12 {
                eprintln!(
                    "split audit: dims ({a_dim},{k_dim},{b_dim}) keep {keep} err {worst:.3e}"
                );
                eprintln!("s = {:?}", f.s);
                eprintln!("matrix = {:?}", rotated_copy);
            }
        }
    }

    /// Decides how many singular values to keep under the truncation policy
    /// and returns `(keep, renormalization)`. Records telemetry. When
    /// nothing is discarded the renormalization is exactly `1.0`, so the
    /// exact regime stays bitwise clean.
    fn truncate_spectrum(&self, s: &[f64]) -> (usize, f64) {
        let total_sq: f64 = s.iter().map(|x| x * x).sum();
        // Weight budget: keep the fewest leading values whose discarded
        // tail is within the cutoff.
        let mut keep = s.len();
        if self.config.truncation_cutoff > 0.0 {
            let mut tail = 0.0f64;
            while keep > 1 {
                let next = tail + s[keep - 1] * s[keep - 1];
                if next > self.config.truncation_cutoff {
                    break;
                }
                tail = next;
                keep -= 1;
            }
        }
        // Hard bond cap.
        keep = keep.min(self.config.max_bond).max(1);

        MAX_BOND_SEEN.fetch_max(keep as u64, Ordering::Relaxed);
        if keep == s.len() {
            return (keep, 1.0);
        }
        let discarded_sq: f64 = s[keep..].iter().map(|x| x * x).sum();
        TRUNCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        TRUNCATION_WEIGHT_PICO.fetch_add((discarded_sq * 1e12).round() as u64, Ordering::Relaxed);
        let kept_sq = total_sq - discarded_sq;
        let renorm = if kept_sq > 0.0 {
            (total_sq / kept_sq).sqrt()
        } else {
            1.0
        };
        (keep, renorm)
    }

    /// Scales every amplitude by `factor` (applied at the orthogonality
    /// center, preserving the canonical form).
    pub fn scale(&mut self, factor: f64) {
        let c = self.center;
        for x in &mut self.sites[c].data {
            *x = x.scale(factor);
        }
    }

    /// Squared norm `<psi|psi>` by transfer-matrix contraction.
    pub fn norm_sqr(&self) -> f64 {
        let mut env = vec![C64::ONE]; // 1×1 environment
        let mut dim = 1usize;
        for site in &self.sites {
            env = transfer(&env, dim, site, None);
            dim = site.right;
        }
        env[0].re
    }

    /// `<Z_q>` for every qubit, by left/right environment contraction in
    /// O(n · D³). The state is assumed normalized (unitaries preserve the
    /// norm and truncation renormalizes), but the result is still divided
    /// by the contracted norm for robustness.
    pub fn expect_z_all(&self) -> Vec<f64> {
        let n = self.sites.len();
        // lefts[i] = environment covering sites < i (dims left_i × left_i).
        let mut lefts: Vec<Vec<C64>> = Vec::with_capacity(n + 1);
        lefts.push(vec![C64::ONE]);
        let mut dim = 1usize;
        for site in &self.sites {
            let next = transfer(lefts.last().expect("nonempty"), dim, site, None);
            dim = site.right;
            lefts.push(next);
        }
        // rights[i] = environment covering sites > i (dims right_i × right_i).
        let mut rights: Vec<Vec<C64>> = vec![Vec::new(); n + 1];
        rights[n] = vec![C64::ONE];
        for i in (0..n).rev() {
            rights[i] = transfer_rev(&rights[i + 1], self.sites[i].right, &self.sites[i]);
        }
        let norm = lefts[n][0].re;
        let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
        (0..n)
            .map(|q| {
                let site = &self.sites[q];
                let mid = transfer(&lefts[q], site.left, site, Some([1.0, -1.0]));
                let r = &rights[q + 1];
                let mut acc = C64::ZERO;
                for b in 0..site.right {
                    for b2 in 0..site.right {
                        acc += mid[b * site.right + b2] * r[b * site.right + b2];
                    }
                }
                acc.re * inv
            })
            .collect()
    }

    /// `<Z_q>` for one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn expect_z(&self, q: usize) -> f64 {
        assert!(q < self.sites.len(), "qubit out of range");
        self.expect_z_all()[q]
    }

    /// Single-qubit reduced density matrix `rho[s, s']` of qubit `q`,
    /// row-major `[rho00, rho01, rho10, rho11]`, normalized to trace 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rdm1(&self, q: usize) -> [C64; 4] {
        let n = self.sites.len();
        assert!(q < n, "qubit out of range");
        let mut left = vec![C64::ONE];
        let mut dim = 1usize;
        for site in &self.sites[..q] {
            left = transfer(&left, dim, site, None);
            dim = site.right;
        }
        let mut right = vec![C64::ONE];
        for i in ((q + 1)..n).rev() {
            right = transfer_rev(&right, self.sites[i].right, &self.sites[i]);
        }
        let site = &self.sites[q];
        let mut rho = [C64::ZERO; 4];
        for s in 0..2 {
            for s2 in 0..2 {
                let mut acc = C64::ZERO;
                for a in 0..site.left {
                    for a2 in 0..site.left {
                        let l = left[a * site.left + a2];
                        if l.re == 0.0 && l.im == 0.0 {
                            continue;
                        }
                        for b in 0..site.right {
                            for b2 in 0..site.right {
                                acc += l
                                    * site.data[site.idx(a, s, b)]
                                    * site.data[site.idx(a2, s2, b2)].conj()
                                    * right[b * site.right + b2];
                            }
                        }
                    }
                }
                rho[s * 2 + s2] = acc;
            }
        }
        let trace = (rho[0] + rho[3]).re;
        if trace > 0.0 {
            let inv = 1.0 / trace;
            for x in &mut rho {
                *x = x.scale(inv);
            }
        }
        rho
    }

    /// Born probability of Kraus operator `k` firing on qubit `q`:
    /// `Tr(K rho K†)` with `rho` the one-qubit reduced density matrix.
    pub fn kraus_prob(&self, k: &Mat2, q: usize) -> f64 {
        let rho = self.rdm1(q);
        // Tr(K† K rho): g = K† K, p = sum_{s,s'} g[s,s'] rho[s',s].
        let mut p = C64::ZERO;
        for s in 0..2 {
            for s2 in 0..2 {
                let mut g = C64::ZERO;
                for t in 0..2 {
                    g += k.m[t * 2 + s].conj() * k.m[t * 2 + s2];
                }
                p += g * rho[s2 * 2 + s];
            }
        }
        p.re.clamp(0.0, 1.0)
    }

    /// Applies (possibly non-unitary) `k` to qubit `q` and renormalizes by
    /// the given selection probability, mirroring the state-vector
    /// trajectory protocol (`apply` then `normalize`).
    ///
    /// The center moves to `q` first: a non-unitary operator would break
    /// the isometry of any other site it touched.
    pub fn apply_kraus_1q(&mut self, k: &Mat2, q: usize, prob: f64) {
        self.move_center_to(q);
        self.apply_1q(k, q);
        if prob > 0.0 {
            let inv = 1.0 / prob.sqrt();
            if inv != 1.0 {
                for x in &mut self.sites[q].data {
                    *x = x.scale(inv);
                }
            }
        }
    }

    /// Sweeps the orthogonality center to the last site, making every site
    /// but the last a left isometry. Only rank-revealing (never
    /// weight-truncating), so the state is unchanged up to numerical
    /// precision.
    pub fn canonicalize_left(&mut self) {
        // Restart the sweep from the far left so the invariant holds even
        // if a caller has manipulated raw site data.
        self.center = 0;
        self.move_center_to(self.sites.len() - 1);
    }

    /// Left-isometry defect of site `q`: `max |(A†A)[b,b'] - I|` over the
    /// contracted left+physical indices. Zero (to numerical precision) for
    /// every non-final site after [`MpsState::canonicalize_left`].
    pub fn isometry_defect(&self, q: usize) -> f64 {
        let site = &self.sites[q];
        let mut worst = 0.0f64;
        for b in 0..site.right {
            for b2 in 0..site.right {
                let mut acc = C64::ZERO;
                for a in 0..site.left {
                    for s in 0..2 {
                        acc += site.data[site.idx(a, s, b)].conj() * site.data[site.idx(a, s, b2)];
                    }
                }
                let expect = if b == b2 { C64::ONE } else { C64::ZERO };
                worst = worst.max((acc - expect).norm_sqr().sqrt());
            }
        }
        worst
    }

    /// Densifies into an existing state-vector buffer (little-endian basis,
    /// matching [`StateVec`]). O(2^n · D) time and memory.
    ///
    /// # Panics
    ///
    /// Panics if `out` has a different qubit count.
    pub fn to_statevec_into(&self, out: &mut StateVec) {
        let n = self.sites.len();
        assert_eq!(out.num_qubits(), n, "width mismatch");
        // acc[x * bond + a]: partial contraction over the first i sites,
        // basis prefix x in [0, 2^i).
        let mut acc = vec![C64::ONE];
        for (i, site) in self.sites.iter().enumerate() {
            let width = 1usize << i;
            let mut next = vec![C64::ZERO; (width << 1) * site.right];
            for x in 0..width {
                for a in 0..site.left {
                    let v = acc[x * site.left + a];
                    if v.re == 0.0 && v.im == 0.0 {
                        continue;
                    }
                    for s in 0..2 {
                        let y = x | (s << i);
                        for b in 0..site.right {
                            next[y * site.right + b] += v * site.data[site.idx(a, s, b)];
                        }
                    }
                }
            }
            acc = next;
        }
        out.amplitudes_mut().copy_from_slice(&acc);
    }

    /// Densifies into a fresh [`StateVec`].
    pub fn to_statevec(&self) -> StateVec {
        let mut out = StateVec::zero_state(self.sites.len());
        self.to_statevec_into(&mut out);
        out
    }
}

/// Pushes a left environment (`dim × dim`, row-major, ket index first)
/// through one site, optionally weighting the physical index by a diagonal
/// observable (`Some([w0, w1])`, e.g. Z = `[1, -1]`).
fn transfer(env: &[C64], dim: usize, site: &Site, diag: Option<[f64; 2]>) -> Vec<C64> {
    debug_assert_eq!(dim, site.left);
    debug_assert_eq!(env.len(), dim * dim);
    let r = site.right;
    // half[(a2, s, b)] = sum_a env[a, a2] * A[a, s, b]
    let mut half = vec![C64::ZERO; dim * 2 * r];
    for a in 0..dim {
        for a2 in 0..dim {
            let e = env[a * dim + a2];
            if e.re == 0.0 && e.im == 0.0 {
                continue;
            }
            for s in 0..2 {
                let w = diag.map_or(1.0, |d| d[s]);
                for b in 0..r {
                    half[(a2 * 2 + s) * r + b] += e * site.data[site.idx(a, s, b)].scale(w);
                }
            }
        }
    }
    // out[b, b2] = sum_{a2, s} half[(a2, s, b)] * conj(A[a2, s, b2])
    let mut out = vec![C64::ZERO; r * r];
    for a2 in 0..dim {
        for s in 0..2 {
            for b2 in 0..r {
                let c = site.data[site.idx(a2, s, b2)].conj();
                if c.re == 0.0 && c.im == 0.0 {
                    continue;
                }
                for b in 0..r {
                    out[b * r + b2] += half[(a2 * 2 + s) * r + b] * c;
                }
            }
        }
    }
    out
}

/// Pushes a right environment (`dim × dim` over the site's right bond)
/// leftward through one site.
fn transfer_rev(env: &[C64], dim: usize, site: &Site) -> Vec<C64> {
    debug_assert_eq!(dim, site.right);
    debug_assert_eq!(env.len(), dim * dim);
    let l = site.left;
    // half[(a, s, b2)] = sum_b A[a, s, b] * env[b, b2]
    let mut half = vec![C64::ZERO; l * 2 * dim];
    for a in 0..l {
        for s in 0..2 {
            for b in 0..dim {
                let x = site.data[site.idx(a, s, b)];
                if x.re == 0.0 && x.im == 0.0 {
                    continue;
                }
                for b2 in 0..dim {
                    half[(a * 2 + s) * dim + b2] += x * env[b * dim + b2];
                }
            }
        }
    }
    // out[a, a2] = sum_{s, b2} half[(a, s, b2)] * conj(A[a2, s, b2])
    let mut out = vec![C64::ZERO; l * l];
    for a2 in 0..l {
        for s in 0..2 {
            for b2 in 0..dim {
                let c = site.data[site.idx(a2, s, b2)].conj();
                if c.re == 0.0 && c.im == 0.0 {
                    continue;
                }
                for a in 0..l {
                    out[a * l + a2] += half[(a * 2 + s) * dim + b2] * c;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rz(t: f64) -> Mat2 {
        let (s, c) = (t / 2.0).sin_cos();
        Mat2::new([C64::new(c, -s), C64::ZERO, C64::ZERO, C64::new(c, s)])
    }

    fn ry(t: f64) -> Mat2 {
        let (s, c) = (t / 2.0).sin_cos();
        Mat2::new([C64::real(c), C64::real(-s), C64::real(s), C64::real(c)])
    }

    fn random_mat2(rng: &mut StdRng) -> Mat2 {
        // Random unitary via RZ·RY·RZ Euler angles.
        let (a, b, c) = (
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
        );
        rz(a).mul_mat(&ry(b)).mul_mat(&rz(c))
    }

    /// One random entangling step: a 1q rotation on a random qubit (so
    /// controls leave |0>, making the controlled gate non-trivial) followed
    /// by a controlled random unitary on a random pair. Mirrors the step
    /// into `sv` when given.
    fn random_step(mps: &mut MpsState, sv: Option<&mut StateVec>, n: usize, rng: &mut StdRng) {
        let m1 = random_mat2(rng);
        let q = rng.gen_range(0..n);
        let m2 = Mat4::controlled(&random_mat2(rng));
        let qa = rng.gen_range(0..n);
        let mut qb = rng.gen_range(0..n);
        while qb == qa {
            qb = rng.gen_range(0..n);
        }
        mps.apply_1q(&m1, q);
        mps.apply_2q(&m2, qa, qb);
        if let Some(sv) = sv {
            sv.apply_1q_reference(&m1, q);
            sv.apply_2q_reference(&m2, qa, qb);
        }
    }

    fn assert_close_to_statevec(mps: &MpsState, sv: &StateVec, tol: f64, label: &str) {
        let dense = mps.to_statevec();
        for (i, (x, y)) in dense.amplitudes().iter().zip(sv.amplitudes()).enumerate() {
            assert!(
                (*x - *y).norm_sqr().sqrt() < tol,
                "{label}: amplitude {i} differs"
            );
        }
    }

    #[test]
    fn zero_state_matches_statevec() {
        let mps = MpsState::zero_state(3, MpsConfig::exact());
        assert_close_to_statevec(&mps, &StateVec::zero_state(3), 1e-15, "zero state");
    }

    #[test]
    fn single_qubit_gates_match_statevec() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mps = MpsState::zero_state(4, MpsConfig::exact());
        let mut sv = StateVec::zero_state(4);
        for _ in 0..20 {
            let m = random_mat2(&mut rng);
            let q = rng.gen_range(0..4);
            mps.apply_1q(&m, q);
            sv.apply_1q_reference(&m, q);
        }
        assert_close_to_statevec(&mps, &sv, 1e-12, "1q gates");
    }

    #[test]
    fn adjacent_and_distant_2q_gates_match_statevec() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 5;
        let mut mps = MpsState::zero_state(n, MpsConfig::exact());
        let mut sv = StateVec::zero_state(n);
        for _ in 0..25 {
            random_step(&mut mps, Some(&mut sv), n, &mut rng);
        }
        assert_close_to_statevec(&mps, &sv, 1e-10, "mixed gates");
    }

    #[test]
    fn expect_z_matches_statevec() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4;
        let mut mps = MpsState::zero_state(n, MpsConfig::exact());
        let mut sv = StateVec::zero_state(n);
        for _ in 0..12 {
            random_step(&mut mps, Some(&mut sv), n, &mut rng);
        }
        let zm = mps.expect_z_all();
        let zs = sv.expect_z_all();
        for q in 0..n {
            assert!((zm[q] - zs[q]).abs() < 1e-10, "Z[{q}] differs");
        }
    }

    #[test]
    fn norm_is_preserved_by_unitaries() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mps = MpsState::zero_state(6, MpsConfig::exact());
        for _ in 0..30 {
            random_step(&mut mps, None, 6, &mut rng);
        }
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-10);
        // Bonds actually grew: the circuit was genuinely entangling.
        assert!(mps.bond_dims().iter().any(|&d| d > 2));
    }

    #[test]
    fn truncation_fires_and_is_counted() {
        reset_mps_stats();
        let before = mps_stats();
        assert_eq!(before.truncation_events, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut mps = MpsState::zero_state(6, MpsConfig::with_max_bond(2));
        for _ in 0..40 {
            random_step(&mut mps, None, 6, &mut rng);
        }
        let stats = mps_stats();
        assert!(stats.truncation_events > 0, "expected truncation events");
        assert!(stats.truncated_weight_pico > 0, "expected discarded weight");
        assert_eq!(stats.max_bond_seen, 2);
        for &d in &mps.bond_dims() {
            assert!(d <= 2);
        }
        // Truncation renormalizes: still a unit state.
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn canonicalize_preserves_state_and_gives_isometries() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 5;
        let mut mps = MpsState::zero_state(n, MpsConfig::exact());
        for _ in 0..20 {
            random_step(&mut mps, None, n, &mut rng);
        }
        let before = mps.to_statevec();
        mps.canonicalize_left();
        assert_close_to_statevec(&mps, &before, 1e-10, "canonicalization");
        for q in 0..n - 1 {
            assert!(
                mps.isometry_defect(q) < 1e-10,
                "site {q} not a left isometry"
            );
        }
    }

    #[test]
    fn kraus_application_matches_statevec_protocol() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 3;
        let mut mps = MpsState::zero_state(n, MpsConfig::exact());
        let mut sv = StateVec::zero_state(n);
        for _ in 0..8 {
            random_step(&mut mps, Some(&mut sv), n, &mut rng);
        }
        // A non-unitary Kraus op (amplitude damping branch).
        let gamma: f64 = 0.3;
        let k = Mat2::new([
            C64::ONE,
            C64::ZERO,
            C64::ZERO,
            C64::real((1.0 - gamma).sqrt()),
        ]);
        let p = mps.kraus_prob(&k, 1);
        mps.apply_kraus_1q(&k, 1, p);
        sv.apply_1q_reference(&k, 1);
        sv.normalize();
        assert_close_to_statevec(&mps, &sv, 1e-10, "kraus branch");
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn config_equality_is_bitwise() {
        let a = MpsConfig {
            max_bond: 8,
            truncation_cutoff: 1e-9,
        };
        assert_eq!(a, a);
        assert_ne!(
            a,
            MpsConfig {
                max_bond: 8,
                truncation_cutoff: 2e-9,
            }
        );
        assert_ne!(
            a,
            MpsConfig {
                max_bond: 16,
                truncation_cutoff: 1e-9,
            }
        );
    }
}
