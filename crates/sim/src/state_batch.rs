//! Batched multi-state simulation: `B` state vectors in one
//! structure-of-arrays buffer, swept together by every kernel.
//!
//! QML training and candidate scoring evaluate the *same* circuit over a
//! minibatch of encoded samples; noisy scoring averages many trajectories
//! of the same circuit. Simulating those states one at a time repeats the
//! plan traversal, gate dispatch, and matrix materialization per state and
//! walks the amplitudes in short strided runs. [`StateBatch`] instead
//! stores the batch amplitude-major with batch-contiguous lanes —
//! `amps[amp_index * lanes + lane]` — so a shared gate is applied once and
//! the inner loops run over `lanes` contiguous complex numbers per
//! amplitude pair, which vectorizes even for low-order qubits where a
//! single state offers only stride-1 pairs.
//!
//! Per-lane kernels ([`StateBatch::lane_apply_1q`] /
//! [`StateBatch::lane_apply_2q`]) cover the steps whose matrices differ
//! across the batch: input-encoder gates whose angles come from per-sample
//! features, and stochastic Kraus operators drawn per trajectory.
//!
//! Every kernel mirrors the structure-specialized dispatch and per-pair
//! arithmetic of [`StateVec`] exactly, so each lane of a batched run is
//! **bit-identical** to the corresponding single-state run — the
//! differential battery in `tests/sim_batch.rs` holds batched execution to
//! the sequential results at ≤1e-12 and the trajectory lanes to bitwise
//! equality.

use crate::state::{for_each_2q_base, mat4_is_controlled, mat4_is_diagonal};
use crate::StateVec;
use qns_tensor::{Mat2, Mat4, C64};

/// Default lane count consumers chunk minibatches into.
///
/// Large enough to amortize per-gate dispatch and fill vector registers,
/// small enough that a 12-qubit batch (`4096 × 32 × 16` bytes = 2 MiB)
/// stays cache-friendly and large sample sets chunk with bounded memory.
pub const DEFAULT_BATCH_LANES: usize = 32;

/// `lanes` independent `n`-qubit pure states stored structure-of-arrays.
///
/// Element `amp_index * lanes + lane` holds amplitude `amp_index` of state
/// `lane`; the bit convention per amplitude index matches [`StateVec`]
/// (qubit `q` is bit `q`, little-endian).
///
/// # Examples
///
/// ```
/// use qns_sim::StateBatch;
/// use qns_tensor::Mat2;
///
/// let mut batch = StateBatch::zero_state(2, 3);
/// batch.apply_1q(&Mat2::hadamard(), 0); // all three lanes at once
/// let s = batch.lane_state(1);
/// assert!((s.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateBatch {
    n_qubits: usize,
    lanes: usize,
    amps: Vec<C64>,
}

impl StateBatch {
    /// Creates `lanes` copies of `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is outside `1..=30` or `lanes` is zero.
    pub fn zero_state(n_qubits: usize, lanes: usize) -> Self {
        assert!((1..=30).contains(&n_qubits), "1..=30 qubits supported");
        assert!(lanes > 0, "need at least one lane");
        let mut amps = vec![C64::ZERO; (1usize << n_qubits) * lanes];
        for a in &mut amps[..lanes] {
            *a = C64::ONE;
        }
        StateBatch {
            n_qubits,
            lanes,
            amps,
        }
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes (states) in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Borrow of the SoA amplitude buffer
    /// (`amp_index * lanes() + lane` layout).
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Resets every lane to `|0...0>` without reallocating.
    pub fn reset(&mut self) {
        for a in &mut self.amps {
            *a = C64::ZERO;
        }
        for a in &mut self.amps[..self.lanes] {
            *a = C64::ONE;
        }
    }

    /// Copies one lane out into a standalone [`StateVec`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_state(&self, lane: usize) -> StateVec {
        assert!(lane < self.lanes, "lane out of range");
        let mut s = StateVec::zero_state(self.n_qubits);
        for (i, a) in s.amplitudes_mut().iter_mut().enumerate() {
            *a = self.amps[i * self.lanes + lane];
        }
        s
    }

    /// Applies a one-qubit unitary to qubit `q` of **every** lane,
    /// dispatching to the same structure-specialized paths as
    /// [`StateVec::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let [m00, m01, m10, m11] = m.m;
        if m01 == C64::ZERO && m10 == C64::ZERO {
            if m00 == C64::ONE && m11 == C64::ONE {
                return; // identity
            }
            self.apply_1q_diag(m00, m11, q);
        } else if m00 == C64::ZERO && m11 == C64::ZERO {
            self.apply_1q_antidiag(m01, m10, q);
        } else {
            self.apply_1q_general(m, q);
        }
    }

    /// Diagonal 1q path: each element is only scaled; the stride scales by
    /// the lane count so each half is one contiguous run.
    fn apply_1q_diag(&mut self, d0: C64, d1: C64, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for a in lo {
                *a = d0 * *a;
            }
            for a in hi {
                *a = d1 * *a;
            }
        }
    }

    /// Anti-diagonal 1q path (X-like): swap halves with a scale.
    fn apply_1q_antidiag(&mut self, a01: C64, a10: C64, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                *a0 = a01 * *a1;
                *a1 = a10 * x0;
            }
        }
    }

    /// General 1q path: the split-borrow zip of [`StateVec`] with the pair
    /// stride scaled by the lane count — inner runs are `≥ lanes` contiguous
    /// elements, so the loop autovectorizes even for qubit 0.
    fn apply_1q_general(&mut self, m: &Mat2, q: usize) {
        let stride = (1usize << q) * self.lanes;
        let [m00, m01, m10, m11] = m.m;
        for chunk in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m00 * x0 + m01 * x1;
                *a1 = m10 * x0 + m11 * x1;
            }
        }
    }

    /// Applies a two-qubit unitary to every lane; `qa` is the high bit as in
    /// [`Mat4`]. Same structure dispatch as [`StateVec::apply_2q`].
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        if mat4_is_diagonal(m) {
            self.apply_2q_diag(m, qa, qb);
        } else if mat4_is_controlled(m) {
            let sub = Mat2::new([m.m[10], m.m[11], m.m[14], m.m[15]]);
            self.apply_2q_controlled(&sub, qa, qb);
        } else {
            self.apply_2q_general(m, qa, qb);
        }
    }

    /// Diagonal 2q path. The base-index walk runs in *element* space: every
    /// argument of the blocked loop scales by the lane count, which
    /// enumerates exactly the elements `amp_base * lanes + lane`; offsets
    /// add (not OR) because scaled bit offsets need carry-free addition.
    fn apply_2q_diag(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let (d00, d01, d10, d11) = (m.m[0], m.m[5], m.m[10], m.m[15]);
        if d00 == C64::ONE && d01 == C64::ONE && d10 == C64::ONE && d11 == C64::ONE {
            return; // identity
        }
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        for_each_2q_base(self.amps.len(), ba, bb, |e| {
            self.amps[e] = d00 * self.amps[e];
            self.amps[e + bb] = d01 * self.amps[e + bb];
            self.amps[e + ba] = d10 * self.amps[e + ba];
            self.amps[e + ba + bb] = d11 * self.amps[e + ba + bb];
        });
    }

    /// Controlled-form 2q path: only the control-set half is touched.
    fn apply_2q_controlled(&mut self, sub: &Mat2, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let [s00, s01, s10, s11] = sub.m;
        for_each_2q_base(self.amps.len(), ba, bb, |e| {
            let x0 = self.amps[e + ba];
            let x1 = self.amps[e + ba + bb];
            self.amps[e + ba] = s00 * x0 + s01 * x1;
            self.amps[e + ba + bb] = s10 * x0 + s11 * x1;
        });
    }

    /// General 2q path: blocked quadruple update per element base.
    fn apply_2q_general(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let w = &m.m;
        for_each_2q_base(self.amps.len(), ba, bb, |e| {
            let e01 = e + bb;
            let e10 = e + ba;
            let e11 = e + ba + bb;
            let v0 = self.amps[e];
            let v1 = self.amps[e01];
            let v2 = self.amps[e10];
            let v3 = self.amps[e11];
            self.amps[e] = w[0] * v0 + w[1] * v1 + w[2] * v2 + w[3] * v3;
            self.amps[e01] = w[4] * v0 + w[5] * v1 + w[6] * v2 + w[7] * v3;
            self.amps[e10] = w[8] * v0 + w[9] * v1 + w[10] * v2 + w[11] * v3;
            self.amps[e11] = w[12] * v0 + w[13] * v1 + w[14] * v2 + w[15] * v3;
        });
    }

    /// Applies a one-qubit unitary to qubit `q` of **one** lane, leaving
    /// every other lane untouched. Used for per-sample input-encoding
    /// blocks and per-trajectory Kraus operators. Same structure dispatch
    /// and per-pair arithmetic as [`StateVec::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics if `q` or `lane` is out of range.
    pub fn lane_apply_1q(&mut self, lane: usize, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        assert!(lane < self.lanes, "lane out of range");
        let [m00, m01, m10, m11] = m.m;
        if m01 == C64::ZERO && m10 == C64::ZERO {
            if m00 == C64::ONE && m11 == C64::ONE {
                return; // identity
            }
            self.lane_1q_pairs(lane, q, |a0, a1| {
                *a0 = m00 * *a0;
                *a1 = m11 * *a1;
            });
        } else if m00 == C64::ZERO && m11 == C64::ZERO {
            self.lane_1q_pairs(lane, q, |a0, a1| {
                let x0 = *a0;
                *a0 = m01 * *a1;
                *a1 = m10 * x0;
            });
        } else {
            self.lane_1q_pairs(lane, q, |a0, a1| {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m00 * x0 + m01 * x1;
                *a1 = m10 * x0 + m11 * x1;
            });
        }
    }

    /// Visits every `(i, i + 2^q)` amplitude pair of one lane in ascending
    /// base order.
    #[inline]
    fn lane_1q_pairs(&mut self, lane: usize, q: usize, mut f: impl FnMut(&mut C64, &mut C64)) {
        let l = self.lanes;
        let stride = 1usize << q;
        let len = 1usize << self.n_qubits;
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                let e0 = i * l + lane;
                let e1 = (i + stride) * l + lane;
                // Split at e1 so both elements borrow disjointly.
                let (lo, hi) = self.amps.split_at_mut(e1);
                f(&mut lo[e0], &mut hi[0]);
            }
            base += stride << 1;
        }
    }

    /// Applies a two-qubit unitary to one lane (`qa` = high bit), with the
    /// same dispatch as [`StateVec::apply_2q`].
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or anything is out of range.
    pub fn lane_apply_2q(&mut self, lane: usize, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        assert!(lane < self.lanes, "lane out of range");
        let l = self.lanes;
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let len = 1usize << self.n_qubits;
        if mat4_is_diagonal(m) {
            let (d00, d01, d10, d11) = (m.m[0], m.m[5], m.m[10], m.m[15]);
            if d00 == C64::ONE && d01 == C64::ONE && d10 == C64::ONE && d11 == C64::ONE {
                return; // identity
            }
            for_each_2q_base(len, ba, bb, |i| {
                let e00 = i * l + lane;
                let e01 = (i | bb) * l + lane;
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                self.amps[e00] = d00 * self.amps[e00];
                self.amps[e01] = d01 * self.amps[e01];
                self.amps[e10] = d10 * self.amps[e10];
                self.amps[e11] = d11 * self.amps[e11];
            });
        } else if mat4_is_controlled(m) {
            let [s00, s01, s10, s11] = [m.m[10], m.m[11], m.m[14], m.m[15]];
            for_each_2q_base(len, ba, bb, |i| {
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                let x0 = self.amps[e10];
                let x1 = self.amps[e11];
                self.amps[e10] = s00 * x0 + s01 * x1;
                self.amps[e11] = s10 * x0 + s11 * x1;
            });
        } else {
            let w = &m.m;
            for_each_2q_base(len, ba, bb, |i| {
                let e00 = i * l + lane;
                let e01 = (i | bb) * l + lane;
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                let v0 = self.amps[e00];
                let v1 = self.amps[e01];
                let v2 = self.amps[e10];
                let v3 = self.amps[e11];
                self.amps[e00] = w[0] * v0 + w[1] * v1 + w[2] * v2 + w[3] * v3;
                self.amps[e01] = w[4] * v0 + w[5] * v1 + w[6] * v2 + w[7] * v3;
                self.amps[e10] = w[8] * v0 + w[9] * v1 + w[10] * v2 + w[11] * v3;
                self.amps[e11] = w[12] * v0 + w[13] * v1 + w[14] * v2 + w[15] * v3;
            });
        }
    }

    /// Per-lane Pauli-Z expectations: `out[lane][q]`, each lane matching
    /// [`StateVec::expect_z_all`] bit-for-bit.
    pub fn expect_z_all_lanes(&self) -> Vec<Vec<f64>> {
        let n = self.n_qubits;
        let l = self.lanes;
        let mut out = vec![vec![0.0; n]; l];
        for i in 0..(1usize << n) {
            let row = &self.amps[i * l..(i + 1) * l];
            for (lane, a) in row.iter().enumerate() {
                let p = a.norm_sqr();
                for (q, eq) in out[lane].iter_mut().enumerate() {
                    if i & (1 << q) == 0 {
                        *eq += p;
                    } else {
                        *eq -= p;
                    }
                }
            }
        }
        out
    }

    /// Squared norm of one lane (amplitude-ascending sum, matching
    /// [`StateVec::norm_sqr`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_norm_sqr(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "lane out of range");
        let l = self.lanes;
        (0..1usize << self.n_qubits)
            .map(|i| self.amps[i * l + lane].norm_sqr())
            .sum()
    }

    /// Renormalizes one lane in place; returns the pre-normalization norm.
    /// Mirrors [`StateVec::normalize`].
    pub fn lane_normalize(&mut self, lane: usize) -> f64 {
        let norm = self.lane_norm_sqr(lane).sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            let l = self.lanes;
            for i in 0..1usize << self.n_qubits {
                let e = i * l + lane;
                self.amps[e] = self.amps[e].scale(inv);
            }
        }
        norm
    }

    /// Scales every amplitude of lane `lane` by the diagonal of the
    /// weighted-Z observable with `weights[lane]` — the batched analogue of
    /// `DiagObservable::apply`, evaluated per basis index in the same
    /// ascending-qubit order.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not hold one weight vector of length
    /// `num_qubits()` per lane.
    pub fn apply_diag_weights(&mut self, weights: &[Vec<f64>]) {
        assert_eq!(weights.len(), self.lanes, "one weight vector per lane");
        for w in weights {
            assert_eq!(w.len(), self.n_qubits, "one weight per qubit");
        }
        let l = self.lanes;
        for i in 0..1usize << self.n_qubits {
            for (lane, w) in weights.iter().enumerate() {
                let mut d = 0.0;
                for (q, wq) in w.iter().enumerate() {
                    if i & (1 << q) == 0 {
                        d += wq;
                    } else {
                        d -= wq;
                    }
                }
                let e = i * l + lane;
                self.amps[e] = self.amps[e].scale(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fixed scrambled per-lane states loaded into a batch plus standalone
    /// copies, for differential checks.
    fn scrambled(n: usize, lanes: usize, seed: u64) -> (StateBatch, Vec<StateVec>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = StateBatch::zero_state(n, lanes);
        let mut singles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let mut amps: Vec<C64> = (0..1usize << n)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            for a in &mut amps {
                *a = a.scale(1.0 / norm);
            }
            for (i, a) in amps.iter().enumerate() {
                batch.amps[i * lanes + lane] = *a;
            }
            singles.push(StateVec::from_amplitudes(amps));
        }
        (batch, singles)
    }

    fn assert_lanes_match(batch: &StateBatch, singles: &[StateVec], label: &str) {
        for (lane, s) in singles.iter().enumerate() {
            let got = batch.lane_state(lane);
            assert_eq!(
                got.amplitudes(),
                s.amplitudes(),
                "{label}: lane {lane} diverged from its single-state run"
            );
        }
    }

    #[test]
    fn zero_state_layout() {
        let b = StateBatch::zero_state(2, 3);
        assert_eq!(b.lanes(), 3);
        for lane in 0..3 {
            let s = b.lane_state(lane);
            assert!((s.probability(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_1q_kernels_are_bit_identical_per_lane() {
        let mats = [
            Mat2::pauli_x(),
            Mat2::pauli_z(),
            Mat2::hadamard(),
            Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, C64::new(0.0, 1.0)]),
        ];
        for lanes in [1, 3, 8] {
            for (mi, m) in mats.iter().enumerate() {
                for q in 0..3 {
                    let (mut batch, mut singles) = scrambled(3, lanes, 7 + mi as u64);
                    batch.apply_1q(m, q);
                    for s in &mut singles {
                        s.apply_1q(m, q);
                    }
                    assert_lanes_match(&batch, &singles, "shared 1q");
                }
            }
        }
    }

    #[test]
    fn shared_2q_kernels_are_bit_identical_per_lane() {
        let h2 = Mat2::hadamard().kron(&Mat2::hadamard());
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let cz = Mat4::controlled(&Mat2::pauli_z());
        let general = h2.mul_mat(&cx).mul_mat(&h2);
        for lanes in [1, 3, 8] {
            for (mi, m) in [cx, cz, general].iter().enumerate() {
                for qa in 0..3 {
                    for qb in 0..3 {
                        if qa == qb {
                            continue;
                        }
                        let (mut batch, mut singles) = scrambled(3, lanes, 31 + mi as u64);
                        batch.apply_2q(m, qa, qb);
                        for s in &mut singles {
                            s.apply_2q(m, qa, qb);
                        }
                        assert_lanes_match(&batch, &singles, "shared 2q");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_kernels_touch_only_their_lane() {
        let (mut batch, mut singles) = scrambled(3, 5, 99);
        batch.lane_apply_1q(2, &Mat2::hadamard(), 1);
        singles[2].apply_1q(&Mat2::hadamard(), 1);
        batch.lane_apply_2q(4, &Mat4::controlled(&Mat2::pauli_x()), 0, 2);
        singles[4].apply_2q(&Mat4::controlled(&Mat2::pauli_x()), 0, 2);
        assert_lanes_match(&batch, &singles, "lane kernels");
    }

    #[test]
    fn lane_2q_structures_match_single_state() {
        let h2 = Mat2::hadamard().kron(&Mat2::hadamard());
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let cz = Mat4::controlled(&Mat2::pauli_z());
        let general = h2.mul_mat(&cx).mul_mat(&h2);
        for m in [cx, cz, general] {
            let (mut batch, mut singles) = scrambled(4, 3, 5);
            batch.lane_apply_2q(1, &m, 3, 1);
            singles[1].apply_2q(&m, 3, 1);
            assert_lanes_match(&batch, &singles, "lane 2q structure");
        }
    }

    #[test]
    fn expect_z_all_lanes_matches_single_state() {
        let (mut batch, mut singles) = scrambled(3, 4, 12);
        batch.apply_1q(&Mat2::hadamard(), 0);
        for s in &mut singles {
            s.apply_1q(&Mat2::hadamard(), 0);
        }
        let ez = batch.expect_z_all_lanes();
        for (lane, s) in singles.iter().enumerate() {
            assert_eq!(ez[lane], s.expect_z_all(), "lane {lane}");
        }
    }

    #[test]
    fn lane_normalize_matches_single_state() {
        let (mut batch, mut singles) = scrambled(2, 3, 21);
        // Break norms on one lane only.
        batch.lane_apply_1q(1, &Mat2::hadamard().scale(C64::real(2.0)), 0);
        singles[1].apply_1q(&Mat2::hadamard().scale(C64::real(2.0)), 0);
        let pre_batch = batch.lane_normalize(1);
        let pre_single = singles[1].normalize();
        assert_eq!(pre_batch.to_bits(), pre_single.to_bits());
        assert_lanes_match(&batch, &singles, "normalize");
    }

    #[test]
    fn apply_diag_weights_matches_diag_observable() {
        use crate::{DiagObservable, Observable as _};
        let (mut batch, singles) = scrambled(3, 2, 4);
        let weights = vec![vec![0.3, -0.9, 1.1], vec![-0.5, 0.2, 0.7]];
        batch.apply_diag_weights(&weights);
        for (lane, s) in singles.iter().enumerate() {
            let obs = DiagObservable::new(weights[lane].clone());
            let expected = obs.apply(s);
            assert_eq!(
                batch.lane_state(lane).amplitudes(),
                expected.amplitudes(),
                "lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_out_of_range_panics() {
        let mut b = StateBatch::zero_state(1, 2);
        b.lane_apply_1q(2, &Mat2::pauli_x(), 0);
    }
}
