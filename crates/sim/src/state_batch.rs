//! Batched multi-state simulation: `B` state vectors in one split-complex
//! structure-of-arrays buffer, swept together by every kernel.
//!
//! QML training and candidate scoring evaluate the *same* circuit over a
//! minibatch of encoded samples; noisy scoring averages many trajectories
//! of the same circuit. Simulating those states one at a time repeats the
//! plan traversal, gate dispatch, and matrix materialization per state and
//! walks the amplitudes in short strided runs. [`StateBatch`] instead
//! stores the batch amplitude-major with batch-contiguous lanes, and —
//! unlike the single-state [`StateVec`] — **split-complex** (planar): the
//! real and imaginary parts live in two separate `f64` buffers, element
//! `amp_index * lanes + lane` in each.
//!
//! The planar layout is what lets the lane sweep vectorize on stable Rust.
//! With interleaved `C64` storage every complex multiply loads `re`/`im`
//! pairs at stride two and shuffles them across vector lanes; LLVM's
//! autovectorizer usually gives up or emits scalar code. With two planar
//! buffers every load in the inner loop is a contiguous same-type `f64`
//! run, the complex arithmetic becomes plain mul/sub/add chains over those
//! runs, and LLVM packs them into SSE/AVX vectors on its own — no `wide`,
//! no nightly `std::simd`. The kernels tile their runs into
//! [`LANE_CHUNK`]-wide pieces (fixed trip count, bounds checks hoisted by
//! the slice asserts) plus a scalar tail; `cargo xtask asm-check` pins the
//! packed codegen in CI.
//!
//! Per-lane kernels ([`StateBatch::lane_apply_1q`] /
//! [`StateBatch::lane_apply_2q`]) cover the steps whose matrices differ
//! across the batch: input-encoder gates whose angles come from per-sample
//! features, and stochastic Kraus operators drawn per trajectory. When a
//! whole step has one matrix per lane of the *same* structure class,
//! [`StateBatch::apply_1q_per_lane`] sweeps all lanes in one pass with the
//! matrix entries themselves transposed into planar per-lane arrays.
//!
//! Every kernel mirrors the structure-specialized dispatch and per-pair
//! arithmetic of [`StateVec`] exactly — each complex multiply expands to
//! the same `re*re - im*im` / `re*im + im*re` expressions in the same
//! order, and sums associate identically — so each lane of a batched run
//! is **bit-identical** to the corresponding single-state run. The
//! differential battery in `tests/sim_batch.rs` holds batched execution to
//! the sequential results bitwise across every gate template, batch size,
//! and fusion level.

use crate::state::{for_each_2q_base, mat4_is_controlled, mat4_is_diagonal};
use crate::StateVec;
use qns_tensor::{Mat2, Mat4, C64};

/// Default lane count consumers chunk minibatches into.
///
/// Large enough to amortize per-gate dispatch and fill vector registers,
/// small enough that a 12-qubit batch (`4096 × 32 × 16` bytes = 2 MiB)
/// stays cache-friendly and large sample sets chunk with bounded memory.
pub const DEFAULT_BATCH_LANES: usize = 32;

/// Width of the fixed micro-kernel tiles the planar kernels sweep.
///
/// Inner loops process `LANE_CHUNK` `f64` elements per tile with a
/// compile-time trip count (16 doubles = two AVX-512 or four AVX2
/// registers per plane), then a scalar tail. The trajectory executor
/// chunks its lane fan-out to the same width so one trajectory chunk is a
/// whole number of tiles.
pub const LANE_CHUNK: usize = 16;

/// Compiles one gate sweep at two instruction widths and dispatches at
/// runtime, once per gate application: `$front` is the entry (baseline
/// target features, SSE2 packed on x86-64), `$avx2` re-compiles the same
/// `$body` — with every `#[inline(always)]` micro-kernel it calls inlined
/// — under AVX2 so LLVM autovectorizes the inner loops 4-wide. Only
/// `avx2` is enabled, never `fma`, so both versions execute the identical
/// IEEE-754 operation sequence and results stay bit-for-bit equal to the
/// single-state path; the wide version is purely a wider schedule of the
/// same arithmetic. `is_x86_feature_detected!` caches its probe, so the
/// per-gate dispatch is an atomic load. Both fronts are `inline(never)`:
/// they are the `asm-check` anchor symbols that pin packed codegen at
/// each width in CI.
macro_rules! multiversion_sweep {
    ($(#[$meta:meta])* $front:ident / $avx2:ident => $body:ident ( &mut self $(, $arg:ident : $ty:ty)* $(,)? )) => {
        $(#[$meta])*
        #[inline(never)]
        fn $front(&mut self $(, $arg: $ty)*) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: reached only when AVX2 was detected on the
                    // running CPU.
                    unsafe { self.$avx2($($arg),*) };
                    return;
                }
            }
            self.$body($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[inline(never)]
        unsafe fn $avx2(&mut self $(, $arg: $ty)*) {
            self.$body($($arg),*)
        }
    };
}

/// [`for_each_2q_base`](crate::state::for_each_2q_base) at run
/// granularity: binds `$e` to the start of each unit-stride run of base
/// indices in ascending order; every run is exactly `min($ba, $bb)` long.
/// The planar sweeps hand each run to a contiguous slice micro-kernel
/// instead of paying a callback per element.
///
/// This is a macro (not a callback taker or an iterator) so the body is
/// *syntactically* inside the sweep it expands in. The sweeps are
/// compiled once per instruction width (see `multiversion_sweep!`), and
/// any closure in the walk — an `FnMut` callback or an iterator
/// adapter's captured state — becomes its own baseline-feature symbol
/// that rustc/LLVM may leave outlined, pinning the hot loop to the
/// narrow encoding even when called from the AVX2 twin.
macro_rules! for_2q_runs {
    ($len:expr, $ba:expr, $bb:expr, |$e:ident| $body:block) => {{
        let len = $len;
        let (lo, hi) = {
            let (a, b) = ($ba, $bb);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        };
        let mut base = 0usize;
        while base < len {
            let mut mid = base;
            while mid < base + hi {
                let $e = mid;
                $body
                mid += lo << 1;
            }
            base += hi << 1;
        }
    }};
}

/// Expands to a [`LANE_CHUNK`]-tiled loop over `0..$n` binding `$k`:
/// full-width tiles with a fixed trip count first, then the scalar tail.
macro_rules! lane_tiles {
    ($n:expr, $k:ident, $body:block) => {{
        let n = $n;
        let mut tile = 0usize;
        while tile + LANE_CHUNK <= n {
            for $k in tile..tile + LANE_CHUNK {
                $body
            }
            tile += LANE_CHUNK;
        }
        for $k in tile..n {
            $body
        }
    }};
}

/// Planar scale kernel: `a = d * a` over one run, the diagonal-path
/// arithmetic of [`C64`]'s `Mul` expanded element-wise.
#[inline(always)]
fn kern_scale(re: &mut [f64], im: &mut [f64], dr: f64, di: f64) {
    let n = re.len();
    assert!(im.len() == n);
    lane_tiles!(n, k, {
        let xr = re[k];
        let xi = im[k];
        re[k] = dr * xr - di * xi;
        im[k] = dr * xi + di * xr;
    });
}

/// Planar anti-diagonal kernel: `a0' = a01 * a1 ; a1' = a10 * a0`.
#[inline(always)]
fn kern_antidiag(
    lo_re: &mut [f64],
    lo_im: &mut [f64],
    hi_re: &mut [f64],
    hi_im: &mut [f64],
    a01: C64,
    a10: C64,
) {
    let n = lo_re.len();
    assert!(lo_im.len() == n && hi_re.len() == n && hi_im.len() == n);
    lane_tiles!(n, k, {
        let x0r = lo_re[k];
        let x0i = lo_im[k];
        let x1r = hi_re[k];
        let x1i = hi_im[k];
        lo_re[k] = a01.re * x1r - a01.im * x1i;
        lo_im[k] = a01.re * x1i + a01.im * x1r;
        hi_re[k] = a10.re * x0r - a10.im * x0i;
        hi_im[k] = a10.re * x0i + a10.im * x0r;
    });
}

/// Planar general 1q micro-kernel over one pair of runs:
/// `a0' = m00 a0 + m01 a1 ; a1' = m10 a0 + m11 a1`, every complex product
/// expanded in [`C64`]'s exact operation order. `m` is the flattened
/// matrix `[m00.re, m00.im, m01.re, …]`. This is the `asm-check` anchor
/// symbol — both dispatch fronts stay un-inlined so the packed codegen
/// stays inspectable at each width.
#[inline(always)]
fn kern_1q_general(
    lo_re: &mut [f64],
    lo_im: &mut [f64],
    hi_re: &mut [f64],
    hi_im: &mut [f64],
    m: &[f64; 8],
) {
    let n = lo_re.len();
    assert!(lo_im.len() == n && hi_re.len() == n && hi_im.len() == n);
    let [m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i] = *m;
    lane_tiles!(n, k, {
        let x0r = lo_re[k];
        let x0i = lo_im[k];
        let x1r = hi_re[k];
        let x1i = hi_im[k];
        lo_re[k] = (m00r * x0r - m00i * x0i) + (m01r * x1r - m01i * x1i);
        lo_im[k] = (m00r * x0i + m00i * x0r) + (m01r * x1i + m01i * x1r);
        hi_re[k] = (m10r * x0r - m10i * x0i) + (m11r * x1r - m11i * x1i);
        hi_im[k] = (m10r * x0i + m10i * x0r) + (m11r * x1i + m11i * x1r);
    });
}

/// Planar general 2q micro-kernel over four quadrant runs:
/// `y_j = Σ_k w_jk v_k` with the left-associated sum order of the
/// interleaved kernel. `w` is the row-major flattened 4×4 matrix as
/// `[re, im]` pairs. Second `asm-check` anchor symbol.
#[inline(always)]
fn kern_2q_general(r: [&mut [f64]; 4], i: [&mut [f64]; 4], w: &[f64; 32]) {
    let [r0, r1, r2, r3] = r;
    let [i0, i1, i2, i3] = i;
    let n = r0.len();
    assert!(
        r1.len() == n
            && r2.len() == n
            && r3.len() == n
            && i0.len() == n
            && i1.len() == n
            && i2.len() == n
            && i3.len() == n
    );
    lane_tiles!(n, k, {
        let v0r = r0[k];
        let v0i = i0[k];
        let v1r = r1[k];
        let v1i = i1[k];
        let v2r = r2[k];
        let v2i = i2[k];
        let v3r = r3[k];
        let v3i = i3[k];
        // One row per output quadrant; each parenthesized pair is one
        // complex product, summed left-to-right like `w0*v0 + w1*v1 + …`.
        r0[k] = (((w[0] * v0r - w[1] * v0i) + (w[2] * v1r - w[3] * v1i))
            + (w[4] * v2r - w[5] * v2i))
            + (w[6] * v3r - w[7] * v3i);
        i0[k] = (((w[0] * v0i + w[1] * v0r) + (w[2] * v1i + w[3] * v1r))
            + (w[4] * v2i + w[5] * v2r))
            + (w[6] * v3i + w[7] * v3r);
        r1[k] = (((w[8] * v0r - w[9] * v0i) + (w[10] * v1r - w[11] * v1i))
            + (w[12] * v2r - w[13] * v2i))
            + (w[14] * v3r - w[15] * v3i);
        i1[k] = (((w[8] * v0i + w[9] * v0r) + (w[10] * v1i + w[11] * v1r))
            + (w[12] * v2i + w[13] * v2r))
            + (w[14] * v3i + w[15] * v3r);
        r2[k] = (((w[16] * v0r - w[17] * v0i) + (w[18] * v1r - w[19] * v1i))
            + (w[20] * v2r - w[21] * v2i))
            + (w[22] * v3r - w[23] * v3i);
        i2[k] = (((w[16] * v0i + w[17] * v0r) + (w[18] * v1i + w[19] * v1r))
            + (w[20] * v2i + w[21] * v2r))
            + (w[22] * v3i + w[23] * v3r);
        r3[k] = (((w[24] * v0r - w[25] * v0i) + (w[26] * v1r - w[27] * v1i))
            + (w[28] * v2r - w[29] * v2i))
            + (w[30] * v3r - w[31] * v3i);
        i3[k] = (((w[24] * v0i + w[25] * v0r) + (w[26] * v1i + w[27] * v1r))
            + (w[28] * v2i + w[29] * v2r))
            + (w[30] * v3i + w[31] * v3r);
    });
}

/// Per-lane 2×2 matrices transposed entry-planar: `m00r[lane]` etc., so a
/// per-lane sweep loads matrix entries contiguously too.
struct Mat2Planes {
    m00r: Vec<f64>,
    m00i: Vec<f64>,
    m01r: Vec<f64>,
    m01i: Vec<f64>,
    m10r: Vec<f64>,
    m10i: Vec<f64>,
    m11r: Vec<f64>,
    m11i: Vec<f64>,
}

impl Mat2Planes {
    fn new(ms: &[Mat2]) -> Self {
        let mut p = Mat2Planes {
            m00r: Vec::with_capacity(ms.len()),
            m00i: Vec::with_capacity(ms.len()),
            m01r: Vec::with_capacity(ms.len()),
            m01i: Vec::with_capacity(ms.len()),
            m10r: Vec::with_capacity(ms.len()),
            m10i: Vec::with_capacity(ms.len()),
            m11r: Vec::with_capacity(ms.len()),
            m11i: Vec::with_capacity(ms.len()),
        };
        for m in ms {
            let [m00, m01, m10, m11] = m.m;
            p.m00r.push(m00.re);
            p.m00i.push(m00.im);
            p.m01r.push(m01.re);
            p.m01i.push(m01.im);
            p.m10r.push(m10.re);
            p.m10i.push(m10.im);
            p.m11r.push(m11.re);
            p.m11i.push(m11.im);
        }
        p
    }
}

/// General per-lane-matrix 1q kernel: like [`kern_1q_general`] but the
/// matrix entries come from per-lane planes — the run length is always a
/// multiple of the lane count, so each `lanes`-wide span pairs position
/// `lane` with plane entry `lane`. Spans walk via `chunks_exact_mut` so
/// every in-span index is bounds-provable and the loop vectorizes.
#[inline(always)]
fn kern_1q_perlane_general(
    lo_re: &mut [f64],
    lo_im: &mut [f64],
    hi_re: &mut [f64],
    hi_im: &mut [f64],
    p: &Mat2Planes,
) {
    let lanes = p.m00r.len();
    let n = lo_re.len();
    assert!(lo_im.len() == n && hi_re.len() == n && hi_im.len() == n && n.is_multiple_of(lanes));
    let spans = lo_re
        .chunks_exact_mut(lanes)
        .zip(lo_im.chunks_exact_mut(lanes))
        .zip(hi_re.chunks_exact_mut(lanes))
        .zip(hi_im.chunks_exact_mut(lanes));
    for (((s0r, s0i), s1r), s1i) in spans {
        for lane in 0..lanes {
            let x0r = s0r[lane];
            let x0i = s0i[lane];
            let x1r = s1r[lane];
            let x1i = s1i[lane];
            let (m00r, m00i) = (p.m00r[lane], p.m00i[lane]);
            let (m01r, m01i) = (p.m01r[lane], p.m01i[lane]);
            let (m10r, m10i) = (p.m10r[lane], p.m10i[lane]);
            let (m11r, m11i) = (p.m11r[lane], p.m11i[lane]);
            s0r[lane] = (m00r * x0r - m00i * x0i) + (m01r * x1r - m01i * x1i);
            s0i[lane] = (m00r * x0i + m00i * x0r) + (m01r * x1i + m01i * x1r);
            s1r[lane] = (m10r * x0r - m10i * x0i) + (m11r * x1r - m11i * x1i);
            s1i[lane] = (m10r * x0i + m10i * x0r) + (m11r * x1i + m11i * x1r);
        }
    }
}

/// Diagonal per-lane-matrix 1q kernel: `a0 = d0_lane * a0 ; a1 = d1_lane
/// * a1`, matching the diagonal path of [`StateBatch::lane_apply_1q`].
#[inline(always)]
fn kern_1q_perlane_diag(
    lo_re: &mut [f64],
    lo_im: &mut [f64],
    hi_re: &mut [f64],
    hi_im: &mut [f64],
    p: &Mat2Planes,
) {
    let lanes = p.m00r.len();
    let n = lo_re.len();
    assert!(lo_im.len() == n && hi_re.len() == n && hi_im.len() == n && n.is_multiple_of(lanes));
    let spans = lo_re
        .chunks_exact_mut(lanes)
        .zip(lo_im.chunks_exact_mut(lanes))
        .zip(hi_re.chunks_exact_mut(lanes))
        .zip(hi_im.chunks_exact_mut(lanes));
    for (((s0r, s0i), s1r), s1i) in spans {
        for lane in 0..lanes {
            let (d0r, d0i) = (p.m00r[lane], p.m00i[lane]);
            let (d1r, d1i) = (p.m11r[lane], p.m11i[lane]);
            let x0r = s0r[lane];
            let x0i = s0i[lane];
            let x1r = s1r[lane];
            let x1i = s1i[lane];
            s0r[lane] = d0r * x0r - d0i * x0i;
            s0i[lane] = d0r * x0i + d0i * x0r;
            s1r[lane] = d1r * x1r - d1i * x1i;
            s1i[lane] = d1r * x1i + d1i * x1r;
        }
    }
}

/// Borrows one [`LANE_CHUNK`]-wide tile of an entry plane as a
/// fixed-size array so tile-loop indexing is bounds-free.
#[inline(always)]
fn tile_ref(p: &[f64], tile: usize) -> &[f64; LANE_CHUNK] {
    p[tile..tile + LANE_CHUNK]
        .try_into()
        .expect("tile within plane")
}

/// Mutable variant of [`tile_ref`].
#[inline(always)]
fn tile_mut(p: &mut [f64], tile: usize) -> &mut [f64; LANE_CHUNK] {
    (&mut p[tile..tile + LANE_CHUNK])
        .try_into()
        .expect("tile within plane")
}

/// One real-part output row of the per-lane general 2q update over one
/// tile: `out = w0*v0r - w1*v0i + w2*v1r - ... `, rows associated exactly
/// as in [`kern_2q_general`]. A single store stream per loop keeps the
/// vectorizer's alias checks trivial; fusing all eight output rows into
/// one loop leaves ~40 live memory streams and the loop stays scalar.
#[inline(always)]
fn perlane_row_re(
    out: &mut [f64; LANE_CHUNK],
    wrow: &[&[f64]],
    tile: usize,
    vr: &[[f64; LANE_CHUNK]; 4],
    vi: &[[f64; LANE_CHUNK]; 4],
) {
    let w: [&[f64; LANE_CHUNK]; 8] = [
        tile_ref(wrow[0], tile),
        tile_ref(wrow[1], tile),
        tile_ref(wrow[2], tile),
        tile_ref(wrow[3], tile),
        tile_ref(wrow[4], tile),
        tile_ref(wrow[5], tile),
        tile_ref(wrow[6], tile),
        tile_ref(wrow[7], tile),
    ];
    for k in 0..LANE_CHUNK {
        out[k] = (((w[0][k] * vr[0][k] - w[1][k] * vi[0][k])
            + (w[2][k] * vr[1][k] - w[3][k] * vi[1][k]))
            + (w[4][k] * vr[2][k] - w[5][k] * vi[2][k]))
            + (w[6][k] * vr[3][k] - w[7][k] * vi[3][k]);
    }
}

/// Imaginary-part counterpart of [`perlane_row_re`].
#[inline(always)]
fn perlane_row_im(
    out: &mut [f64; LANE_CHUNK],
    wrow: &[&[f64]],
    tile: usize,
    vr: &[[f64; LANE_CHUNK]; 4],
    vi: &[[f64; LANE_CHUNK]; 4],
) {
    let w: [&[f64; LANE_CHUNK]; 8] = [
        tile_ref(wrow[0], tile),
        tile_ref(wrow[1], tile),
        tile_ref(wrow[2], tile),
        tile_ref(wrow[3], tile),
        tile_ref(wrow[4], tile),
        tile_ref(wrow[5], tile),
        tile_ref(wrow[6], tile),
        tile_ref(wrow[7], tile),
    ];
    for k in 0..LANE_CHUNK {
        out[k] = (((w[0][k] * vi[0][k] + w[1][k] * vr[0][k])
            + (w[2][k] * vi[1][k] + w[3][k] * vr[1][k]))
            + (w[4][k] * vi[2][k] + w[5][k] * vr[2][k]))
            + (w[6][k] * vi[3][k] + w[7][k] * vr[3][k]);
    }
}

/// General per-lane-matrix 2q kernel: like [`kern_2q_general`] but the 32
/// flattened matrix entries come from per-lane planes (`w[j * lanes +
/// lane]` holds entry `j` of lane `lane`'s matrix). Quadrant runs are
/// whole numbers of `lanes`-wide spans, walked with `chunks_exact_mut` so
/// every index is bounds-provable and the lane loop vectorizes.
#[inline(always)]
fn kern_2q_perlane_general(r: [&mut [f64]; 4], i: [&mut [f64]; 4], w: &[f64], lanes: usize) {
    let [r0, r1, r2, r3] = r;
    let [i0, i1, i2, i3] = i;
    let n = r0.len();
    assert!(
        r1.len() == n
            && r2.len() == n
            && r3.len() == n
            && i0.len() == n
            && i1.len() == n
            && i2.len() == n
            && i3.len() == n
            && n % lanes == 0
            && w.len() == 32 * lanes
    );
    // Unpacked with a plain loop: `std::array::from_fn` carries a closure
    // that rustc leaves as an outlined `try_from_fn` call, which hides the
    // `chunks_exact` length facts and keeps the lane loop below scalar.
    let mut wp: [&[f64]; 32] = [&[]; 32];
    for (j, c) in w.chunks_exact(lanes).enumerate() {
        wp[j] = c;
    }
    let spans = r0
        .chunks_exact_mut(lanes)
        .zip(i0.chunks_exact_mut(lanes))
        .zip(r1.chunks_exact_mut(lanes))
        .zip(i1.chunks_exact_mut(lanes))
        .zip(r2.chunks_exact_mut(lanes))
        .zip(i2.chunks_exact_mut(lanes))
        .zip(r3.chunks_exact_mut(lanes))
        .zip(i3.chunks_exact_mut(lanes));
    for (((((((s0r, s0i), s1r), s1i), s2r), s2i), s3r), s3i) in spans {
        // Tiled main path: fixed-size input copies break the in-place
        // output→input dependence so each output row can be its own loop
        // (see `perlane_row_re` for why that matters to the vectorizer).
        let mut tile = 0usize;
        while tile + LANE_CHUNK <= lanes {
            let mut vr = [[0.0f64; LANE_CHUNK]; 4];
            let mut vi = [[0.0f64; LANE_CHUNK]; 4];
            vr[0].copy_from_slice(&s0r[tile..tile + LANE_CHUNK]);
            vr[1].copy_from_slice(&s1r[tile..tile + LANE_CHUNK]);
            vr[2].copy_from_slice(&s2r[tile..tile + LANE_CHUNK]);
            vr[3].copy_from_slice(&s3r[tile..tile + LANE_CHUNK]);
            vi[0].copy_from_slice(&s0i[tile..tile + LANE_CHUNK]);
            vi[1].copy_from_slice(&s1i[tile..tile + LANE_CHUNK]);
            vi[2].copy_from_slice(&s2i[tile..tile + LANE_CHUNK]);
            vi[3].copy_from_slice(&s3i[tile..tile + LANE_CHUNK]);
            let outs: [(&mut [f64], &mut [f64]); 4] = [
                (&mut *s0r, &mut *s0i),
                (&mut *s1r, &mut *s1i),
                (&mut *s2r, &mut *s2i),
                (&mut *s3r, &mut *s3i),
            ];
            for (row, (out_r, out_i)) in outs.into_iter().enumerate() {
                let wrow = &wp[8 * row..8 * row + 8];
                perlane_row_re(tile_mut(out_r, tile), wrow, tile, &vr, &vi);
                perlane_row_im(tile_mut(out_i, tile), wrow, tile, &vr, &vi);
            }
            tile += LANE_CHUNK;
        }
        // Scalar tail for lane counts that are not a whole number of
        // tiles (the tiny-batch regime).
        for k in tile..lanes {
            let v0r = s0r[k];
            let v0i = s0i[k];
            let v1r = s1r[k];
            let v1i = s1i[k];
            let v2r = s2r[k];
            let v2i = s2i[k];
            let v3r = s3r[k];
            let v3i = s3i[k];
            // Same row expressions as `kern_2q_general`, per-lane entries.
            s0r[k] = (((wp[0][k] * v0r - wp[1][k] * v0i) + (wp[2][k] * v1r - wp[3][k] * v1i))
                + (wp[4][k] * v2r - wp[5][k] * v2i))
                + (wp[6][k] * v3r - wp[7][k] * v3i);
            s0i[k] = (((wp[0][k] * v0i + wp[1][k] * v0r) + (wp[2][k] * v1i + wp[3][k] * v1r))
                + (wp[4][k] * v2i + wp[5][k] * v2r))
                + (wp[6][k] * v3i + wp[7][k] * v3r);
            s1r[k] = (((wp[8][k] * v0r - wp[9][k] * v0i) + (wp[10][k] * v1r - wp[11][k] * v1i))
                + (wp[12][k] * v2r - wp[13][k] * v2i))
                + (wp[14][k] * v3r - wp[15][k] * v3i);
            s1i[k] = (((wp[8][k] * v0i + wp[9][k] * v0r) + (wp[10][k] * v1i + wp[11][k] * v1r))
                + (wp[12][k] * v2i + wp[13][k] * v2r))
                + (wp[14][k] * v3i + wp[15][k] * v3r);
            s2r[k] = (((wp[16][k] * v0r - wp[17][k] * v0i) + (wp[18][k] * v1r - wp[19][k] * v1i))
                + (wp[20][k] * v2r - wp[21][k] * v2i))
                + (wp[22][k] * v3r - wp[23][k] * v3i);
            s2i[k] = (((wp[16][k] * v0i + wp[17][k] * v0r) + (wp[18][k] * v1i + wp[19][k] * v1r))
                + (wp[20][k] * v2i + wp[21][k] * v2r))
                + (wp[22][k] * v3i + wp[23][k] * v3r);
            s3r[k] = (((wp[24][k] * v0r - wp[25][k] * v0i) + (wp[26][k] * v1r - wp[27][k] * v1i))
                + (wp[28][k] * v2r - wp[29][k] * v2i))
                + (wp[30][k] * v3r - wp[31][k] * v3i);
            s3i[k] = (((wp[24][k] * v0i + wp[25][k] * v0r) + (wp[26][k] * v1i + wp[27][k] * v1r))
                + (wp[28][k] * v2i + wp[29][k] * v2r))
                + (wp[30][k] * v3i + wp[31][k] * v3r);
        }
    }
}

/// Splits two disjoint `run`-length slices out of `buf` at `start` and
/// `start + gap`; the 2q walk guarantees `run <= gap`.
#[inline]
fn two_runs(buf: &mut [f64], start: usize, gap: usize, run: usize) -> (&mut [f64], &mut [f64]) {
    let seg = &mut buf[start..start + gap + run];
    let (p0, p1) = seg.split_at_mut(gap);
    (&mut p0[..run], &mut p1[..run])
}

/// Splits four disjoint `run`-length slices out of `buf` at offsets `0 <
/// o1 < o2 < o3` from `e`; the 2q walk guarantees `run <= o1` and every
/// gap between consecutive offsets is at least `run`.
#[inline]
fn four_runs(
    buf: &mut [f64],
    e: usize,
    o1: usize,
    o2: usize,
    o3: usize,
    run: usize,
) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
    let seg = &mut buf[e..e + o3 + run];
    let (p0, rest) = seg.split_at_mut(o1);
    let (p1, rest) = rest.split_at_mut(o2 - o1);
    let (p2, p3) = rest.split_at_mut(o3 - o2);
    (
        &mut p0[..run],
        &mut p1[..run],
        &mut p2[..run],
        &mut p3[..run],
    )
}

/// Structure class of a 2×2 matrix, mirroring the dispatch predicates of
/// [`StateVec::apply_1q`] / [`StateBatch::lane_apply_1q`] exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mat2Class {
    Identity,
    Diag,
    Antidiag,
    General,
}

fn mat2_class(m: &Mat2) -> Mat2Class {
    let [m00, m01, m10, m11] = m.m;
    if m01 == C64::ZERO && m10 == C64::ZERO {
        if m00 == C64::ONE && m11 == C64::ONE {
            Mat2Class::Identity
        } else {
            Mat2Class::Diag
        }
    } else if m00 == C64::ZERO && m11 == C64::ZERO {
        Mat2Class::Antidiag
    } else {
        Mat2Class::General
    }
}

/// Structure class of a 4×4 matrix, mirroring the dispatch predicates of
/// [`StateVec::apply_2q`] / [`StateBatch::lane_apply_2q`] exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mat4Class {
    Diag,
    Controlled,
    General,
}

fn mat4_class(m: &Mat4) -> Mat4Class {
    if mat4_is_diagonal(m) {
        Mat4Class::Diag
    } else if mat4_is_controlled(m) {
        Mat4Class::Controlled
    } else {
        Mat4Class::General
    }
}

/// Flattens a [`Mat2`] into `[re, im]` pairs for the planar kernels.
#[inline]
fn flat2(m: &Mat2) -> [f64; 8] {
    let [a, b, c, d] = m.m;
    [a.re, a.im, b.re, b.im, c.re, c.im, d.re, d.im]
}

/// Flattens a [`Mat4`] row-major into `[re, im]` pairs.
#[inline]
fn flat4(m: &Mat4) -> [f64; 32] {
    let mut w = [0.0; 32];
    for (j, e) in m.m.iter().enumerate() {
        w[2 * j] = e.re;
        w[2 * j + 1] = e.im;
    }
    w
}

/// `lanes` independent `n`-qubit pure states stored split-complex
/// structure-of-arrays.
///
/// Element `amp_index * lanes + lane` of the [`StateBatch::re`] /
/// [`StateBatch::im`] planes holds amplitude `amp_index` of state `lane`;
/// the bit convention per amplitude index matches [`StateVec`] (qubit `q`
/// is bit `q`, little-endian).
///
/// # Examples
///
/// ```
/// use qns_sim::StateBatch;
/// use qns_tensor::Mat2;
///
/// let mut batch = StateBatch::zero_state(2, 3);
/// batch.apply_1q(&Mat2::hadamard(), 0); // all three lanes at once
/// let s = batch.lane_state(1);
/// assert!((s.probability(0) - 0.5) .abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateBatch {
    n_qubits: usize,
    lanes: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateBatch {
    /// Creates `lanes` copies of `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is outside `1..=30` or `lanes` is zero.
    pub fn zero_state(n_qubits: usize, lanes: usize) -> Self {
        assert!((1..=30).contains(&n_qubits), "1..=30 qubits supported");
        assert!(lanes > 0, "need at least one lane");
        let len = (1usize << n_qubits) * lanes;
        let mut re = vec![0.0; len];
        let im = vec![0.0; len];
        for r in &mut re[..lanes] {
            *r = 1.0;
        }
        StateBatch {
            n_qubits,
            lanes,
            re,
            im,
        }
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes (states) in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Borrow of the real plane (`amp_index * lanes() + lane` layout).
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// Borrow of the imaginary plane (`amp_index * lanes() + lane` layout).
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// One element of the batch as a [`C64`], `e = amp_index * lanes() +
    /// lane`. The planar replacement for indexing the old interleaved
    /// buffer; arithmetic on the loaded value is bit-identical to what the
    /// interleaved load produced.
    #[inline]
    pub fn amp(&self, e: usize) -> C64 {
        C64::new(self.re[e], self.im[e])
    }

    #[inline]
    fn set(&mut self, e: usize, v: C64) {
        self.re[e] = v.re;
        self.im[e] = v.im;
    }

    /// Resets every lane to `|0...0>` without reallocating.
    pub fn reset(&mut self) {
        for r in &mut self.re {
            *r = 0.0;
        }
        for i in &mut self.im {
            *i = 0.0;
        }
        for r in &mut self.re[..self.lanes] {
            *r = 1.0;
        }
    }

    /// Copies one lane out into a standalone [`StateVec`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_state(&self, lane: usize) -> StateVec {
        assert!(lane < self.lanes, "lane out of range");
        let mut s = StateVec::zero_state(self.n_qubits);
        for (i, a) in s.amplitudes_mut().iter_mut().enumerate() {
            *a = self.amp(i * self.lanes + lane);
        }
        s
    }

    /// Applies a one-qubit unitary to qubit `q` of **every** lane,
    /// dispatching to the same structure-specialized paths as
    /// [`StateVec::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let [m00, m01, m10, m11] = m.m;
        if m01 == C64::ZERO && m10 == C64::ZERO {
            if m00 == C64::ONE && m11 == C64::ONE {
                return; // identity
            }
            self.apply_1q_diag(m00, m11, q);
        } else if m00 == C64::ZERO && m11 == C64::ZERO {
            self.apply_1q_antidiag(m01, m10, q);
        } else {
            self.apply_1q_general(m, q);
        }
    }

    multiversion_sweep!(
        /// Diagonal 1q path: each element is only scaled; the stride
        /// scales by the lane count so each half is one contiguous planar
        /// run.
        apply_1q_diag / apply_1q_diag_avx2 => apply_1q_diag_body(&mut self, d0: C64, d1: C64, q: usize)
    );

    #[inline(always)]
    fn apply_1q_diag_body(&mut self, d0: C64, d1: C64, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(stride << 1)
            .zip(self.im.chunks_exact_mut(stride << 1))
        {
            let (lo_r, hi_r) = rc.split_at_mut(stride);
            let (lo_i, hi_i) = ic.split_at_mut(stride);
            kern_scale(lo_r, lo_i, d0.re, d0.im);
            kern_scale(hi_r, hi_i, d1.re, d1.im);
        }
    }

    multiversion_sweep!(
        /// Anti-diagonal 1q path (X-like): swap halves with a scale.
        apply_1q_antidiag / apply_1q_antidiag_avx2 => apply_1q_antidiag_body(&mut self, a01: C64, a10: C64, q: usize)
    );

    #[inline(always)]
    fn apply_1q_antidiag_body(&mut self, a01: C64, a10: C64, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(stride << 1)
            .zip(self.im.chunks_exact_mut(stride << 1))
        {
            let (lo_r, hi_r) = rc.split_at_mut(stride);
            let (lo_i, hi_i) = ic.split_at_mut(stride);
            kern_antidiag(lo_r, lo_i, hi_r, hi_i, a01, a10);
        }
    }

    multiversion_sweep!(
        /// General 1q path: the split-borrow pairing of [`StateVec`] with
        /// the pair stride scaled by the lane count — inner runs are `≥
        /// lanes` contiguous planar elements handed to the tiled
        /// micro-kernel.
        apply_1q_general / apply_1q_general_avx2 => apply_1q_general_body(&mut self, m: &Mat2, q: usize)
    );

    #[inline(always)]
    fn apply_1q_general_body(&mut self, m: &Mat2, q: usize) {
        let stride = (1usize << q) * self.lanes;
        let w = flat2(m);
        for (rc, ic) in self
            .re
            .chunks_exact_mut(stride << 1)
            .zip(self.im.chunks_exact_mut(stride << 1))
        {
            let (lo_r, hi_r) = rc.split_at_mut(stride);
            let (lo_i, hi_i) = ic.split_at_mut(stride);
            kern_1q_general(lo_r, lo_i, hi_r, hi_i, &w);
        }
    }

    /// Applies one matrix **per lane** to qubit `q` in a single sweep.
    ///
    /// When every matrix falls in the same structure class (the common
    /// case: a batch of input-encoder rotations over different features),
    /// the sweep runs a planar kernel whose matrix entries are themselves
    /// transposed per-lane arrays, so the lane loop vectorizes like the
    /// shared-gate kernels. Mixed-class batches (e.g. one feature exactly
    /// zero turning its rotation into the identity) fall back to the
    /// per-lane dispatch, which keeps every lane bit-identical to
    /// [`StateBatch::lane_apply_1q`] — and therefore to the single-state
    /// [`StateVec`] run — in all cases.
    ///
    /// # Panics
    ///
    /// Panics if `ms.len() != lanes()` or `q` is out of range.
    pub fn apply_1q_per_lane(&mut self, ms: &[Mat2], q: usize) {
        assert_eq!(ms.len(), self.lanes, "one matrix per lane");
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        let class = mat2_class(&ms[0]);
        if ms.iter().any(|m| mat2_class(m) != class) {
            for (lane, m) in ms.iter().enumerate() {
                self.lane_apply_1q(lane, m, q);
            }
            return;
        }
        match class {
            Mat2Class::Identity => {}
            Mat2Class::Diag => {
                let planes = Mat2Planes::new(ms);
                self.sweep_1q_perlane_diag(&planes, q);
            }
            Mat2Class::General => {
                let planes = Mat2Planes::new(ms);
                self.sweep_1q_perlane_general(&planes, q);
            }
            Mat2Class::Antidiag => {
                // Rare for encoders; the per-lane path is already exact.
                for (lane, m) in ms.iter().enumerate() {
                    self.lane_apply_1q(lane, m, q);
                }
            }
        }
    }

    multiversion_sweep!(
        sweep_1q_perlane_diag / sweep_1q_perlane_diag_avx2 => sweep_1q_perlane_diag_body(&mut self, planes: &Mat2Planes, q: usize)
    );

    #[inline(always)]
    fn sweep_1q_perlane_diag_body(&mut self, planes: &Mat2Planes, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(stride << 1)
            .zip(self.im.chunks_exact_mut(stride << 1))
        {
            let (lo_r, hi_r) = rc.split_at_mut(stride);
            let (lo_i, hi_i) = ic.split_at_mut(stride);
            kern_1q_perlane_diag(lo_r, lo_i, hi_r, hi_i, planes);
        }
    }

    multiversion_sweep!(
        sweep_1q_perlane_general / sweep_1q_perlane_general_avx2 => sweep_1q_perlane_general_body(&mut self, planes: &Mat2Planes, q: usize)
    );

    #[inline(always)]
    fn sweep_1q_perlane_general_body(&mut self, planes: &Mat2Planes, q: usize) {
        let stride = (1usize << q) * self.lanes;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(stride << 1)
            .zip(self.im.chunks_exact_mut(stride << 1))
        {
            let (lo_r, hi_r) = rc.split_at_mut(stride);
            let (lo_i, hi_i) = ic.split_at_mut(stride);
            kern_1q_perlane_general(lo_r, lo_i, hi_r, hi_i, planes);
        }
    }

    /// Applies a two-qubit unitary to every lane; `qa` is the high bit as in
    /// [`Mat4`]. Same structure dispatch as [`StateVec::apply_2q`].
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        if mat4_is_diagonal(m) {
            self.apply_2q_diag(m, qa, qb);
        } else if mat4_is_controlled(m) {
            let sub = Mat2::new([m.m[10], m.m[11], m.m[14], m.m[15]]);
            self.apply_2q_controlled(&sub, qa, qb);
        } else {
            self.apply_2q_general(m, qa, qb);
        }
    }

    multiversion_sweep!(
        /// Diagonal 2q path. The base-index walk runs in *element* space:
        /// every argument of the blocked loop scales by the lane count,
        /// which enumerates exactly the elements `amp_base * lanes +
        /// lane`; offsets add (not OR) because scaled bit offsets need
        /// carry-free addition. Each quadrant run is one contiguous planar
        /// scale.
        apply_2q_diag / apply_2q_diag_avx2 => apply_2q_diag_core(&mut self, m: &Mat4, qa: usize, qb: usize)
    );

    #[inline(always)]
    fn apply_2q_diag_core(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let (d00, d01, d10, d11) = (m.m[0], m.m[5], m.m[10], m.m[15]);
        if d00 == C64::ONE && d01 == C64::ONE && d10 == C64::ONE && d11 == C64::ONE {
            return; // identity
        }
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let run = ba.min(bb);
        let re = &mut self.re[..];
        let im = &mut self.im[..];
        for_2q_runs!(re.len(), ba, bb, |e| {
            for (off, d) in [(0, d00), (bb, d01), (ba, d10), (ba + bb, d11)] {
                let s = e + off;
                kern_scale(&mut re[s..s + run], &mut im[s..s + run], d.re, d.im);
            }
        });
    }

    multiversion_sweep!(
        /// Controlled-form 2q path: only the control-set half is touched;
        /// the two touched quadrant runs form a 1q-general-shaped pair.
        apply_2q_controlled / apply_2q_controlled_avx2 => apply_2q_controlled_body(&mut self, sub: &Mat2, qa: usize, qb: usize)
    );

    #[inline(always)]
    fn apply_2q_controlled_body(&mut self, sub: &Mat2, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let run = ba.min(bb);
        let w = flat2(sub);
        let re = &mut self.re[..];
        let im = &mut self.im[..];
        for_2q_runs!(re.len(), ba, bb, |e| {
            let (lo_r, hi_r) = two_runs(re, e + ba, bb, run);
            let (lo_i, hi_i) = two_runs(im, e + ba, bb, run);
            kern_1q_general(lo_r, lo_i, hi_r, hi_i, &w);
        });
    }

    multiversion_sweep!(
        /// General 2q path: blocked quadruple update, one micro-kernel
        /// call per base run over the four quadrant slices.
        apply_2q_general / apply_2q_general_avx2 => apply_2q_general_body(&mut self, m: &Mat4, qa: usize, qb: usize)
    );

    #[inline(always)]
    fn apply_2q_general_body(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let w = flat4(m);
        let (omin, omax) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let run = omin;
        let re = &mut self.re[..];
        let im = &mut self.im[..];
        for_2q_runs!(re.len(), ba, bb, |e| {
            let (r0, rx, ry, r3) = four_runs(re, e, omin, omax, omin + omax, run);
            let (i0, ix, iy, i3) = four_runs(im, e, omin, omax, omin + omax, run);
            // The run at offset min(ba, bb) is the `bb` quadrant (v1) when
            // bb < ba, else the `ba` quadrant (v2).
            let (r1, r2, i1, i2) = if bb < ba {
                (rx, ry, ix, iy)
            } else {
                (ry, rx, iy, ix)
            };
            kern_2q_general([r0, r1, r2, r3], [i0, i1, i2, i3], &w);
        });
    }

    /// Applies one two-qubit unitary **per lane** in a single sweep; `qa`
    /// is the high bit as in [`Mat4`].
    ///
    /// Fused plans routinely absorb the whole 1q layer into adjacent 2q
    /// steps, so input-dependent steps usually arrive here as a batch of
    /// per-lane `Mat4`s. When every matrix falls in the same structure
    /// class, the sweep runs the planar quadrant walk once with per-lane
    /// entry planes (General), or the 1q-shaped control-pair kernel over
    /// per-lane subblocks (Controlled), instead of one strided walk per
    /// lane. Diagonal or mixed-class batches fall back to
    /// [`StateBatch::lane_apply_2q`] per lane. Every lane is bit-identical
    /// to the per-lane dispatch — and therefore to a single-state
    /// [`StateVec`] run — in all cases.
    ///
    /// # Panics
    ///
    /// Panics if `ms.len() != lanes()`, the qubits coincide, or either
    /// qubit is out of range.
    pub fn apply_2q_per_lane(&mut self, ms: &[Mat4], qa: usize, qb: usize) {
        assert_eq!(ms.len(), self.lanes, "one matrix per lane");
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        let class = mat4_class(&ms[0]);
        if ms.iter().any(|m| mat4_class(m) != class) || class == Mat4Class::Diag {
            for (lane, m) in ms.iter().enumerate() {
                self.lane_apply_2q(lane, m, qa, qb);
            }
            return;
        }
        match class {
            Mat4Class::Diag => unreachable!("handled by the fallback above"),
            Mat4Class::Controlled => {
                // Per-lane control subblocks; same arithmetic shape as the
                // shared-gate controlled path, entries per lane.
                let subs: Vec<Mat2> = ms
                    .iter()
                    .map(|m| Mat2::new([m.m[10], m.m[11], m.m[14], m.m[15]]))
                    .collect();
                let planes = Mat2Planes::new(&subs);
                self.sweep_2q_perlane_controlled(&planes, qa, qb);
            }
            Mat4Class::General => {
                // 32 entry planes, `w[j * lanes + lane]` = entry j, lane l.
                let lanes = self.lanes;
                let mut w = vec![0.0; 32 * lanes];
                for (lane, m) in ms.iter().enumerate() {
                    for (j, v) in flat4(m).into_iter().enumerate() {
                        w[j * lanes + lane] = v;
                    }
                }
                self.sweep_2q_perlane_general(&w, qa, qb);
            }
        }
    }

    multiversion_sweep!(
        sweep_2q_perlane_controlled / sweep_2q_perlane_controlled_avx2 => sweep_2q_perlane_controlled_body(&mut self, planes: &Mat2Planes, qa: usize, qb: usize)
    );

    #[inline(always)]
    fn sweep_2q_perlane_controlled_body(&mut self, planes: &Mat2Planes, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let run = ba.min(bb);
        let re = &mut self.re[..];
        let im = &mut self.im[..];
        for_2q_runs!(re.len(), ba, bb, |e| {
            let (lo_r, hi_r) = two_runs(re, e + ba, bb, run);
            let (lo_i, hi_i) = two_runs(im, e + ba, bb, run);
            kern_1q_perlane_general(lo_r, lo_i, hi_r, hi_i, planes);
        });
    }

    multiversion_sweep!(
        sweep_2q_perlane_general / sweep_2q_perlane_general_avx2 => sweep_2q_perlane_general_body(&mut self, w: &[f64], qa: usize, qb: usize)
    );

    #[inline(always)]
    fn sweep_2q_perlane_general_body(&mut self, w: &[f64], qa: usize, qb: usize) {
        let lanes = self.lanes;
        let ba = (1usize << qa) * lanes;
        let bb = (1usize << qb) * lanes;
        let (omin, omax) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let run = omin;
        let re = &mut self.re[..];
        let im = &mut self.im[..];
        for_2q_runs!(re.len(), ba, bb, |e| {
            let (r0, rx, ry, r3) = four_runs(re, e, omin, omax, omin + omax, run);
            let (i0, ix, iy, i3) = four_runs(im, e, omin, omax, omin + omax, run);
            let (r1, r2, i1, i2) = if bb < ba {
                (rx, ry, ix, iy)
            } else {
                (ry, rx, iy, ix)
            };
            kern_2q_perlane_general([r0, r1, r2, r3], [i0, i1, i2, i3], w, lanes);
        });
    }

    /// Applies a one-qubit unitary to qubit `q` of **one** lane, leaving
    /// every other lane untouched. Used for per-sample input-encoding
    /// blocks and per-trajectory Kraus operators. Same structure dispatch
    /// and per-pair arithmetic as [`StateVec::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics if `q` or `lane` is out of range.
    pub fn lane_apply_1q(&mut self, lane: usize, m: &Mat2, q: usize) {
        assert!(q < self.n_qubits, "qubit {} out of range", q);
        assert!(lane < self.lanes, "lane out of range");
        let [m00, m01, m10, m11] = m.m;
        if m01 == C64::ZERO && m10 == C64::ZERO {
            if m00 == C64::ONE && m11 == C64::ONE {
                return; // identity
            }
            self.lane_1q_pairs(lane, q, |x0, x1| (m00 * x0, m11 * x1));
        } else if m00 == C64::ZERO && m11 == C64::ZERO {
            self.lane_1q_pairs(lane, q, |x0, x1| (m01 * x1, m10 * x0));
        } else {
            self.lane_1q_pairs(lane, q, |x0, x1| (m00 * x0 + m01 * x1, m10 * x0 + m11 * x1));
        }
    }

    /// Visits every `(i, i + 2^q)` amplitude pair of one lane in ascending
    /// base order, storing back whatever `f` returns for the pair.
    #[inline]
    fn lane_1q_pairs(&mut self, lane: usize, q: usize, f: impl Fn(C64, C64) -> (C64, C64)) {
        let l = self.lanes;
        let stride = 1usize << q;
        let len = 1usize << self.n_qubits;
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                let e0 = i * l + lane;
                let e1 = (i + stride) * l + lane;
                let (y0, y1) = f(self.amp(e0), self.amp(e1));
                self.set(e0, y0);
                self.set(e1, y1);
            }
            base += stride << 1;
        }
    }

    /// Applies a two-qubit unitary to one lane (`qa` = high bit), with the
    /// same dispatch as [`StateVec::apply_2q`].
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or anything is out of range.
    pub fn lane_apply_2q(&mut self, lane: usize, m: &Mat4, qa: usize, qb: usize) {
        assert!(
            qa < self.n_qubits && qb < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        assert!(lane < self.lanes, "lane out of range");
        let l = self.lanes;
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let len = 1usize << self.n_qubits;
        if mat4_is_diagonal(m) {
            let (d00, d01, d10, d11) = (m.m[0], m.m[5], m.m[10], m.m[15]);
            if d00 == C64::ONE && d01 == C64::ONE && d10 == C64::ONE && d11 == C64::ONE {
                return; // identity
            }
            for_each_2q_base(len, ba, bb, |i| {
                let e00 = i * l + lane;
                let e01 = (i | bb) * l + lane;
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                self.set(e00, d00 * self.amp(e00));
                self.set(e01, d01 * self.amp(e01));
                self.set(e10, d10 * self.amp(e10));
                self.set(e11, d11 * self.amp(e11));
            });
        } else if mat4_is_controlled(m) {
            let [s00, s01, s10, s11] = [m.m[10], m.m[11], m.m[14], m.m[15]];
            for_each_2q_base(len, ba, bb, |i| {
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                let x0 = self.amp(e10);
                let x1 = self.amp(e11);
                self.set(e10, s00 * x0 + s01 * x1);
                self.set(e11, s10 * x0 + s11 * x1);
            });
        } else {
            let w = &m.m;
            for_each_2q_base(len, ba, bb, |i| {
                let e00 = i * l + lane;
                let e01 = (i | bb) * l + lane;
                let e10 = (i | ba) * l + lane;
                let e11 = (i | ba | bb) * l + lane;
                let v0 = self.amp(e00);
                let v1 = self.amp(e01);
                let v2 = self.amp(e10);
                let v3 = self.amp(e11);
                self.set(e00, w[0] * v0 + w[1] * v1 + w[2] * v2 + w[3] * v3);
                self.set(e01, w[4] * v0 + w[5] * v1 + w[6] * v2 + w[7] * v3);
                self.set(e10, w[8] * v0 + w[9] * v1 + w[10] * v2 + w[11] * v3);
                self.set(e11, w[12] * v0 + w[13] * v1 + w[14] * v2 + w[15] * v3);
            });
        }
    }

    /// Per-lane Pauli-Z expectations: `out[lane][q]`, each lane matching
    /// [`StateVec::expect_z_all`] bit-for-bit.
    pub fn expect_z_all_lanes(&self) -> Vec<Vec<f64>> {
        let n = self.n_qubits;
        let l = self.lanes;
        let mut out = vec![vec![0.0; n]; l];
        for i in 0..(1usize << n) {
            let rr = &self.re[i * l..(i + 1) * l];
            let ri = &self.im[i * l..(i + 1) * l];
            for lane in 0..l {
                let p = rr[lane] * rr[lane] + ri[lane] * ri[lane];
                for (q, eq) in out[lane].iter_mut().enumerate() {
                    if i & (1 << q) == 0 {
                        *eq += p;
                    } else {
                        *eq -= p;
                    }
                }
            }
        }
        out
    }

    /// Squared norm of one lane (amplitude-ascending sum, matching
    /// [`StateVec::norm_sqr`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_norm_sqr(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "lane out of range");
        let l = self.lanes;
        (0..1usize << self.n_qubits)
            .map(|i| {
                let e = i * l + lane;
                self.re[e] * self.re[e] + self.im[e] * self.im[e]
            })
            .sum()
    }

    /// Renormalizes one lane in place; returns the pre-normalization norm.
    /// Mirrors [`StateVec::normalize`].
    pub fn lane_normalize(&mut self, lane: usize) -> f64 {
        let norm = self.lane_norm_sqr(lane).sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            let l = self.lanes;
            for i in 0..1usize << self.n_qubits {
                let e = i * l + lane;
                self.set(e, self.amp(e).scale(inv));
            }
        }
        norm
    }

    /// Squared norm of every lane in one lanes-contiguous sweep. Each
    /// lane's sum accumulates in the same ascending amplitude order as
    /// [`StateBatch::lane_norm_sqr`], so `lane_norms_sqr()[lane]` is
    /// bit-identical to `lane_norm_sqr(lane)` — but the walk touches the
    /// planes front to back instead of making one strided pass per lane.
    pub fn lane_norms_sqr(&self) -> Vec<f64> {
        let l = self.lanes;
        let mut acc = vec![0.0; l];
        for (rr, ri) in self.re.chunks_exact(l).zip(self.im.chunks_exact(l)) {
            for (lane, a) in acc.iter_mut().enumerate() {
                *a += rr[lane] * rr[lane] + ri[lane] * ri[lane];
            }
        }
        acc
    }

    /// Renormalizes every lane in place; returns the pre-normalization
    /// norms. Per lane this is bit-identical to
    /// [`StateBatch::lane_normalize`] (same norm accumulation order, same
    /// `1/norm` scale, zero-norm lanes untouched) with the per-lane strided
    /// passes replaced by two contiguous sweeps.
    pub fn normalize_lanes(&mut self) -> Vec<f64> {
        let norms: Vec<f64> = self.lane_norms_sqr().iter().map(|n| n.sqrt()).collect();
        let inv: Vec<f64> = norms
            .iter()
            .map(|&n| if n > 0.0 { 1.0 / n } else { 1.0 })
            .collect();
        let l = self.lanes;
        for (rr, ri) in self.re.chunks_exact_mut(l).zip(self.im.chunks_exact_mut(l)) {
            for (lane, &s) in inv.iter().enumerate() {
                rr[lane] *= s;
                ri[lane] *= s;
            }
        }
        norms
    }

    /// Scales every amplitude of lane `lane` by the diagonal of the
    /// weighted-Z observable with `weights[lane]` — the batched analogue of
    /// `DiagObservable::apply`, evaluated per basis index in the same
    /// ascending-qubit order.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not hold one weight vector of length
    /// `num_qubits()` per lane.
    pub fn apply_diag_weights(&mut self, weights: &[Vec<f64>]) {
        assert_eq!(weights.len(), self.lanes, "one weight vector per lane");
        for w in weights {
            assert_eq!(w.len(), self.n_qubits, "one weight per qubit");
        }
        let l = self.lanes;
        for i in 0..1usize << self.n_qubits {
            for (lane, w) in weights.iter().enumerate() {
                let mut d = 0.0;
                for (q, wq) in w.iter().enumerate() {
                    if i & (1 << q) == 0 {
                        d += wq;
                    } else {
                        d -= wq;
                    }
                }
                let e = i * l + lane;
                self.set(e, self.amp(e).scale(d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fixed scrambled per-lane states loaded into a batch plus standalone
    /// copies, for differential checks.
    fn scrambled(n: usize, lanes: usize, seed: u64) -> (StateBatch, Vec<StateVec>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = StateBatch::zero_state(n, lanes);
        let mut singles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let mut amps: Vec<C64> = (0..1usize << n)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            for a in &mut amps {
                *a = a.scale(1.0 / norm);
            }
            for (i, a) in amps.iter().enumerate() {
                batch.re[i * lanes + lane] = a.re;
                batch.im[i * lanes + lane] = a.im;
            }
            singles.push(StateVec::from_amplitudes(amps));
        }
        (batch, singles)
    }

    fn assert_lanes_match(batch: &StateBatch, singles: &[StateVec], label: &str) {
        for (lane, s) in singles.iter().enumerate() {
            let got = batch.lane_state(lane);
            assert_eq!(
                got.amplitudes(),
                s.amplitudes(),
                "{label}: lane {lane} diverged from its single-state run"
            );
        }
    }

    #[test]
    fn zero_state_layout() {
        let b = StateBatch::zero_state(2, 3);
        assert_eq!(b.lanes(), 3);
        for lane in 0..3 {
            let s = b.lane_state(lane);
            assert!((s.probability(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_1q_kernels_are_bit_identical_per_lane() {
        let mats = [
            Mat2::pauli_x(),
            Mat2::pauli_z(),
            Mat2::hadamard(),
            Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, C64::new(0.0, 1.0)]),
        ];
        for lanes in [1, 3, 8, 32] {
            for (mi, m) in mats.iter().enumerate() {
                for q in 0..3 {
                    let (mut batch, mut singles) = scrambled(3, lanes, 7 + mi as u64);
                    batch.apply_1q(m, q);
                    for s in &mut singles {
                        s.apply_1q(m, q);
                    }
                    assert_lanes_match(&batch, &singles, "shared 1q");
                }
            }
        }
    }

    #[test]
    fn shared_2q_kernels_are_bit_identical_per_lane() {
        let h2 = Mat2::hadamard().kron(&Mat2::hadamard());
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let cz = Mat4::controlled(&Mat2::pauli_z());
        let general = h2.mul_mat(&cx).mul_mat(&h2);
        for lanes in [1, 3, 8, 32] {
            for (mi, m) in [cx, cz, general].iter().enumerate() {
                for qa in 0..3 {
                    for qb in 0..3 {
                        if qa == qb {
                            continue;
                        }
                        let (mut batch, mut singles) = scrambled(3, lanes, 31 + mi as u64);
                        batch.apply_2q(m, qa, qb);
                        for s in &mut singles {
                            s.apply_2q(m, qa, qb);
                        }
                        assert_lanes_match(&batch, &singles, "shared 2q");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_kernels_touch_only_their_lane() {
        let (mut batch, mut singles) = scrambled(3, 5, 99);
        batch.lane_apply_1q(2, &Mat2::hadamard(), 1);
        singles[2].apply_1q(&Mat2::hadamard(), 1);
        batch.lane_apply_2q(4, &Mat4::controlled(&Mat2::pauli_x()), 0, 2);
        singles[4].apply_2q(&Mat4::controlled(&Mat2::pauli_x()), 0, 2);
        assert_lanes_match(&batch, &singles, "lane kernels");
    }

    #[test]
    fn lane_2q_structures_match_single_state() {
        let h2 = Mat2::hadamard().kron(&Mat2::hadamard());
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let cz = Mat4::controlled(&Mat2::pauli_z());
        let general = h2.mul_mat(&cx).mul_mat(&h2);
        for m in [cx, cz, general] {
            let (mut batch, mut singles) = scrambled(4, 3, 5);
            batch.lane_apply_2q(1, &m, 3, 1);
            singles[1].apply_2q(&m, 3, 1);
            assert_lanes_match(&batch, &singles, "lane 2q structure");
        }
    }

    /// RY-shaped rotation (real general 2×2).
    fn ry(theta: f64) -> Mat2 {
        let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
        Mat2::new([C64::real(c), C64::real(-s), C64::real(s), C64::real(c)])
    }

    /// RZ-shaped rotation (diagonal 2×2).
    fn rz(theta: f64) -> Mat2 {
        let h = theta / 2.0;
        Mat2::new([
            C64::new(h.cos(), -h.sin()),
            C64::ZERO,
            C64::ZERO,
            C64::new(h.cos(), h.sin()),
        ])
    }

    #[test]
    fn per_lane_matrix_sweep_matches_lane_dispatch() {
        let mut rng = StdRng::seed_from_u64(77);
        // Uniform general class (rotations with nonzero angles), uniform
        // diagonal class (RZ-like), and a mixed batch with an identity
        // lane that must take the fallback path.
        let general: Vec<Mat2> = (0..6).map(|_| ry(rng.gen_range(0.1..3.0))).collect();
        let diag: Vec<Mat2> = (0..6).map(|_| rz(rng.gen_range(0.1..3.0))).collect();
        let mut mixed = general.clone();
        mixed[3] = Mat2::identity();
        for (label, ms) in [("general", &general), ("diag", &diag), ("mixed", &mixed)] {
            for q in 0..3 {
                let (mut fast, _) = scrambled(3, 6, 123);
                let mut slow = fast.clone();
                fast.apply_1q_per_lane(ms, q);
                for (lane, m) in ms.iter().enumerate() {
                    slow.lane_apply_1q(lane, m, q);
                }
                assert_eq!(fast, slow, "{label} q{q}: per-lane sweep diverged");
            }
        }
    }

    #[test]
    fn batched_lane_norms_match_per_lane() {
        for lanes in [3, 16, 33] {
            let (mut batch, _) = scrambled(4, lanes, 77);
            let per_lane: Vec<f64> = (0..lanes).map(|l| batch.lane_norm_sqr(l)).collect();
            assert_eq!(batch.lane_norms_sqr(), per_lane, "{lanes} lanes");
            let mut slow = batch.clone();
            let norms = batch.normalize_lanes();
            for (lane, &norm) in norms.iter().enumerate() {
                assert_eq!(norm, slow.lane_normalize(lane), "lane {lane} norm");
            }
            assert_eq!(batch, slow, "{lanes} lanes normalized state");
        }
    }

    #[test]
    fn per_lane_2q_sweep_matches_lane_dispatch() {
        let mut rng = StdRng::seed_from_u64(78);
        // Lane counts straddle the tile width: tail-only, exactly one
        // tile, and tiles plus tail.
        for lanes in [6usize, 16, 37] {
            let general: Vec<Mat4> = (0..lanes)
                .map(|_| ry(rng.gen_range(0.1..3.0)).kron(&ry(rng.gen_range(0.1..3.0))))
                .collect();
            let controlled: Vec<Mat4> = (0..lanes)
                .map(|_| Mat4::controlled(&ry(rng.gen_range(0.1..3.0))))
                .collect();
            let diag: Vec<Mat4> = (0..lanes)
                .map(|_| rz(rng.gen_range(0.1..3.0)).kron(&rz(rng.gen_range(0.1..3.0))))
                .collect();
            let mut mixed = general.clone();
            mixed[lanes / 2] = Mat4::controlled(&ry(0.4));
            for (label, ms) in [
                ("general", &general),
                ("controlled", &controlled),
                ("diag", &diag),
                ("mixed", &mixed),
            ] {
                for (qa, qb) in [(0usize, 2usize), (2, 0), (1, 2)] {
                    let (mut fast, _) = scrambled(3, lanes, 321);
                    let mut slow = fast.clone();
                    fast.apply_2q_per_lane(ms, qa, qb);
                    for (lane, m) in ms.iter().enumerate() {
                        slow.lane_apply_2q(lane, m, qa, qb);
                    }
                    assert_eq!(
                        fast, slow,
                        "{label} lanes={lanes} q=({qa},{qb}): per-lane 2q sweep diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn expect_z_all_lanes_matches_single_state() {
        let (mut batch, mut singles) = scrambled(3, 4, 12);
        batch.apply_1q(&Mat2::hadamard(), 0);
        for s in &mut singles {
            s.apply_1q(&Mat2::hadamard(), 0);
        }
        let ez = batch.expect_z_all_lanes();
        for (lane, s) in singles.iter().enumerate() {
            assert_eq!(ez[lane], s.expect_z_all(), "lane {lane}");
        }
    }

    #[test]
    fn lane_normalize_matches_single_state() {
        let (mut batch, mut singles) = scrambled(2, 3, 21);
        // Break norms on one lane only.
        batch.lane_apply_1q(1, &Mat2::hadamard().scale(C64::real(2.0)), 0);
        singles[1].apply_1q(&Mat2::hadamard().scale(C64::real(2.0)), 0);
        let pre_batch = batch.lane_normalize(1);
        let pre_single = singles[1].normalize();
        assert_eq!(pre_batch.to_bits(), pre_single.to_bits());
        assert_lanes_match(&batch, &singles, "normalize");
    }

    #[test]
    fn apply_diag_weights_matches_diag_observable() {
        use crate::{DiagObservable, Observable as _};
        let (mut batch, singles) = scrambled(3, 2, 4);
        let weights = vec![vec![0.3, -0.9, 1.1], vec![-0.5, 0.2, 0.7]];
        batch.apply_diag_weights(&weights);
        for (lane, s) in singles.iter().enumerate() {
            let obs = DiagObservable::new(weights[lane].clone());
            let expected = obs.apply(s);
            assert_eq!(
                batch.lane_state(lane).amplitudes(),
                expected.amplitudes(),
                "lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_out_of_range_panics() {
        let mut b = StateBatch::zero_state(1, 2);
        b.lane_apply_1q(2, &Mat2::pauli_x(), 0);
    }
}
