//! Property-based tests for the simulator's physical invariants.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    adjoint_gradient, parameter_shift_gradient, run, DiagObservable, ExecMode, Observable, StateVec,
};
use qns_tensor::Mat2;

fn arb_angles(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.1..3.1f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// <Z> of a single-qubit RY rotation is exactly cos θ.
    #[test]
    fn ry_expectation_is_cosine(theta in -6.0..6.0f64) {
        let mut c = Circuit::new(1);
        c.push(GateKind::RY, &[0], &[Param::Fixed(theta)]);
        let s = run(&c, &[], &[], ExecMode::Dynamic);
        prop_assert!((s.expect_z(0) - theta.cos()).abs() < 1e-10);
    }

    /// Composition: RZ(a) then RZ(b) equals RZ(a+b).
    #[test]
    fn rz_composes_additively(a in -3.0..3.0f64, b in -3.0..3.0f64) {
        let mut c1 = Circuit::new(1);
        c1.push(GateKind::H, &[0], &[]);
        c1.push(GateKind::RZ, &[0], &[Param::Fixed(a)]);
        c1.push(GateKind::RZ, &[0], &[Param::Fixed(b)]);
        let mut c2 = Circuit::new(1);
        c2.push(GateKind::H, &[0], &[]);
        c2.push(GateKind::RZ, &[0], &[Param::Fixed(a + b)]);
        let s1 = run(&c1, &[], &[], ExecMode::Dynamic);
        let s2 = run(&c2, &[], &[], ExecMode::Dynamic);
        prop_assert!((s1.inner(&s2).abs() - 1.0).abs() < 1e-10);
    }

    /// A circuit followed by its inverse returns |0...0>.
    #[test]
    fn inverse_returns_to_zero(angles in arb_angles(6)) {
        let mut c = Circuit::new(2);
        c.push(GateKind::RY, &[0], &[Param::Fixed(angles[0])]);
        c.push(GateKind::RZ, &[1], &[Param::Fixed(angles[1])]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RX, &[0], &[Param::Fixed(angles[2])]);
        // Inverse in reverse order with negated angles.
        c.push(GateKind::RX, &[0], &[Param::Fixed(-angles[2])]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::RZ, &[1], &[Param::Fixed(-angles[1])]);
        c.push(GateKind::RY, &[0], &[Param::Fixed(-angles[0])]);
        let s = run(&c, &[], &[], ExecMode::Static);
        prop_assert!((s.probability(0) - 1.0).abs() < 1e-10);
    }

    /// Parameter-shift and adjoint agree on rotation circuits.
    #[test]
    fn shift_and_adjoint_agree(angles in arb_angles(4)) {
        let mut c = Circuit::new(2);
        c.push(GateKind::RY, &[0], &[Param::Train(0)]);
        c.push(GateKind::RX, &[1], &[Param::Train(1)]);
        c.push(GateKind::RZZ, &[0, 1], &[Param::Train(2)]);
        c.push(GateKind::RZ, &[0], &[Param::Train(3)]);
        let obs = DiagObservable::new(vec![1.0, -0.5]);
        let (_, adj) = adjoint_gradient(&c, &angles, &[], &obs);
        let ps = parameter_shift_gradient(&c, &angles, &[], &obs);
        for (a, p) in adj.iter().zip(ps.iter()) {
            prop_assert!((a - p).abs() < 1e-8, "adjoint {a} vs shift {p}");
        }
    }

    /// Gradients vanish at stationary points: <Z> of RY(θ) has zero
    /// derivative at θ = 0 and θ = π.
    #[test]
    fn gradient_vanishes_at_extrema(sign in prop::bool::ANY) {
        let theta = if sign { 0.0 } else { std::f64::consts::PI };
        let mut c = Circuit::new(1);
        c.push(GateKind::RY, &[0], &[Param::Train(0)]);
        let obs = DiagObservable::new(vec![1.0]);
        let (_, g) = adjoint_gradient(&c, &[theta], &[], &obs);
        prop_assert!(g[0].abs() < 1e-10);
    }

    /// Sampling frequencies converge to probabilities for arbitrary
    /// product states.
    #[test]
    fn sampling_matches_born_rule(a in 0.0..std::f64::consts::PI, b in 0.0..std::f64::consts::PI) {
        use rand::SeedableRng;
        let mut s = StateVec::zero_state(2);
        let ry = |t: f64| match GateKind::RY.matrix(&[t]) {
            qns_circuit::GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        s.apply_1q(&ry(a), 0);
        s.apply_1q(&ry(b), 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let counts = s.sample_counts(40_000, &mut rng);
        for (idx, c) in counts {
            let freq = c as f64 / 40_000.0;
            prop_assert!((freq - s.probability(idx)).abs() < 0.02);
        }
    }

    /// The weighted-Z observable is linear in its weights.
    #[test]
    fn observable_linearity(w1 in -2.0..2.0f64, w2 in -2.0..2.0f64, theta in -3.0..3.0f64) {
        let mut s = StateVec::zero_state(2);
        let ry = |t: f64| match GateKind::RY.matrix(&[t]) {
            qns_circuit::GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        s.apply_1q(&ry(theta), 0);
        s.apply_1q(&Mat2::hadamard(), 1);
        let e1 = DiagObservable::new(vec![w1, 0.0]).expect(&s);
        let e2 = DiagObservable::new(vec![0.0, w2]).expect(&s);
        let both = DiagObservable::new(vec![w1, w2]).expect(&s);
        prop_assert!((both - (e1 + e2)).abs() < 1e-10);
    }
}
