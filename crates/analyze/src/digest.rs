//! Item-level parsing (structs and `encode` impls) and the QA006
//! digest-coverage rule.
//!
//! Registration is structural, not annotation-based: any non-test struct
//! whose type has a `fn encode(&self, w: &mut ByteWriter)` — either as an
//! inherent method or inside an `impl Checkpointable for …` block — is
//! wire-format state, because `ByteWriter` is the checkpoint serializer.
//! QA006 then demands every field of such a struct appear in the encode
//! body (as an identifier — direct writes, helper calls, and destructuring
//! all qualify) or carry a `// digest:exempt(<field>: reason)` comment
//! inside the struct body. A field that is silently dropped from the
//! encode is exactly the bug class that corrupts resumed searches without
//! crashing them.

use crate::diag::{Finding, QaRule};
use crate::lexer::{FileModel, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One named field of a parsed struct.
#[derive(Clone, Debug)]
pub struct FieldDef {
    pub name: String,
    /// Normalized type text (token texts concatenated).
    pub ty: String,
    pub line: usize,
}

/// A parsed `struct` with named fields.
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub path: String,
    pub line: usize,
    pub fields: Vec<FieldDef>,
    /// `digest:exempt(field: reason)` escapes found inside the struct
    /// body, mapped field → reason (reason may be empty = unjustified).
    pub exempts: BTreeMap<String, String>,
    /// Line of each exempt comment, for reporting bad escapes.
    pub exempt_lines: BTreeMap<String, usize>,
}

/// A `fn encode(&self, w: &mut ByteWriter)` found in an impl block.
#[derive(Clone, Debug)]
pub struct EncodeFn {
    /// The self type of the surrounding impl.
    pub target: String,
    pub path: String,
    pub line: usize,
    /// Every identifier appearing in the function body.
    pub idents: BTreeSet<String>,
}

/// Parses all non-test structs and encode functions in a file.
pub fn parse_items(model: &FileModel) -> (Vec<StructDef>, Vec<EncodeFn>) {
    let toks: Vec<&Tok> = model
        .tokens
        .iter()
        .filter(|t| !t.is_comment() && !t.in_test)
        .collect();
    let mut structs = Vec::new();
    let mut encodes = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("struct") {
            if let Some((def, next)) = parse_struct(model, &toks, i) {
                structs.push(def);
                i = next;
                continue;
            }
        }
        if toks[i].is_ident("impl") {
            if let Some((mut fns, next)) = parse_impl(model, &toks, i) {
                encodes.append(&mut fns);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    (structs, encodes)
}

/// Skips a balanced `<…>` generics group starting at `i` (which must point
/// at `<`); returns the index after the matching `>`.
fn skip_generics(toks: &[&Tok], i: usize) -> usize {
    let mut nest = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            nest += 1;
        } else if toks[j].is_punct('>') {
            nest = nest.saturating_sub(1);
            if nest == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

fn parse_struct(model: &FileModel, toks: &[&Tok], kw: usize) -> Option<(StructDef, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        j = skip_generics(toks, j);
    }
    // Only brace-bodied structs have named fields; tuple/unit structs are
    // not wire-format state in this codebase.
    if !toks.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
        return None;
    }
    let body_depth = toks[j].depth;
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct('}') && t.depth == body_depth {
            break;
        }
        // Skip attributes and visibility modifiers.
        if t.is_punct('#') && toks.get(k + 1).map(|u| u.is_punct('[')).unwrap_or(false) {
            let mut nest = 0usize;
            let mut m = k + 1;
            while m < toks.len() {
                if toks[m].is_punct('[') {
                    nest += 1;
                } else if toks[m].is_punct(']') {
                    nest -= 1;
                    if nest == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        if t.is_ident("pub") {
            k += 1;
            if toks.get(k).map(|u| u.is_punct('(')).unwrap_or(false) {
                // pub(crate) etc.
                let mut nest = 0usize;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        nest += 1;
                    } else if toks[k].is_punct(')') {
                        nest -= 1;
                        if nest == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            continue;
        }
        if t.kind == TokKind::Ident
            && toks.get(k + 1).map(|u| u.is_punct(':')).unwrap_or(false)
            && !toks.get(k + 2).map(|u| u.is_punct(':')).unwrap_or(false)
        {
            // field: Type, — the type runs to the next `,` outside any
            // `<…>`/`(…)` nesting, or to the struct's closing brace
            // (which is recorded at the body's *open* depth).
            let mut ty = String::new();
            let mut m = k + 2;
            let mut angle = 0usize;
            let mut paren = 0usize;
            while m < toks.len() {
                let u = toks[m];
                if u.is_punct('}') && u.depth < t.depth {
                    break;
                }
                if u.is_punct('<') {
                    angle += 1;
                } else if u.is_punct('>') {
                    angle = angle.saturating_sub(1);
                } else if u.is_punct('(') || u.is_punct('[') {
                    paren += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    paren = paren.saturating_sub(1);
                }
                if angle == 0 && paren == 0 && u.is_punct(',') {
                    break;
                }
                ty.push_str(&u.text);
                m += 1;
            }
            fields.push(FieldDef {
                name: t.text.clone(),
                ty,
                line: t.line,
            });
            // Leave a terminating `}` for the outer loop to see.
            k = if toks.get(m).map(|u| u.is_punct('}')).unwrap_or(true) {
                m
            } else {
                m + 1
            };
            continue;
        }
        k += 1;
    }
    let end = k.min(toks.len().saturating_sub(1));
    let (exempts, exempt_lines) = collect_exempts(
        model,
        name_tok.line,
        toks.get(end).map(|t| t.line).unwrap_or(name_tok.line),
    );
    Some((
        StructDef {
            name: name_tok.text.clone(),
            path: model.path.clone(),
            line: name_tok.line,
            fields,
            exempts,
            exempt_lines,
        },
        end + 1,
    ))
}

/// Collects `digest:exempt(field: reason)` comments between two lines.
fn collect_exempts(
    model: &FileModel,
    from_line: usize,
    to_line: usize,
) -> (BTreeMap<String, String>, BTreeMap<String, usize>) {
    let mut exempts = BTreeMap::new();
    let mut lines = BTreeMap::new();
    for t in &model.tokens {
        if !t.is_comment() || t.line < from_line || t.line > to_line {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("digest:exempt(") {
            rest = &rest[pos + "digest:exempt(".len()..];
            let Some(close) = rest.find(')') else { break };
            let inner = &rest[..close];
            rest = &rest[close + 1..];
            let (field, reason) = match inner.split_once(':') {
                Some((f, r)) => (f.trim().to_string(), r.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            };
            if !field.is_empty() {
                lines.insert(field.clone(), t.line);
                exempts.insert(field, reason);
            }
        }
    }
    (exempts, lines)
}

fn parse_impl(model: &FileModel, toks: &[&Tok], kw: usize) -> Option<(Vec<EncodeFn>, usize)> {
    let mut j = kw + 1;
    if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        j = skip_generics(toks, j);
    }
    // Collect the self-type path: idents at angle-depth 0 until `for`,
    // `{`, or `where`. If `for` appears, the path after it is the target.
    let mut target = String::new();
    let mut angle = 0usize;
    while j < toks.len() {
        let t = toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if angle == 0 {
            if t.is_punct('{') {
                break;
            }
            if t.is_ident("for") {
                target.clear();
                j += 1;
                continue;
            }
            if t.is_ident("where") {
                // Skip where-clause to the opening brace.
                while j < toks.len() && !toks[j].is_punct('{') {
                    j += 1;
                }
                break;
            }
            if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
                target = t.text.clone();
            }
        }
        j += 1;
    }
    if target.is_empty() || !toks.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
        return None;
    }
    let impl_depth = toks[j].depth;
    let mut fns = Vec::new();
    let mut k = j + 1;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct('}') && t.depth == impl_depth {
            break;
        }
        if t.is_ident("fn")
            && toks
                .get(k + 1)
                .map(|u| u.is_ident("encode"))
                .unwrap_or(false)
        {
            if let Some((enc, next)) = parse_encode(model, toks, k, &target) {
                fns.push(enc);
                k = next;
                continue;
            }
        }
        k += 1;
    }
    Some((fns, k + 1))
}

fn parse_encode(
    model: &FileModel,
    toks: &[&Tok],
    kw: usize,
    target: &str,
) -> Option<(EncodeFn, usize)> {
    // Parameter list: must mention ByteWriter, otherwise this is some
    // unrelated encode (e.g. a classical-shadow encoder).
    let mut j = kw + 2;
    while j < toks.len() && !toks[j].is_punct('(') {
        if toks[j].is_punct('{') || toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let mut nest = 0usize;
    let mut has_writer = false;
    while j < toks.len() {
        let t = toks[j];
        if t.is_punct('(') {
            nest += 1;
        } else if t.is_punct(')') {
            nest -= 1;
            if nest == 0 {
                j += 1;
                break;
            }
        } else if t.is_ident("ByteWriter") {
            has_writer = true;
        }
        j += 1;
    }
    if !has_writer {
        return None;
    }
    // Body: the next `{` (skip a possible return type) to its match.
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct(';') {
            return None; // trait method declaration, no body
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let body_depth = toks[j].depth;
    let mut idents = BTreeSet::new();
    let mut k = j + 1;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct('}') && t.depth == body_depth {
            break;
        }
        if t.kind == TokKind::Ident {
            idents.insert(t.text.clone());
        }
        k += 1;
    }
    Some((
        EncodeFn {
            target: target.to_string(),
            path: model.path.clone(),
            line: toks[kw].line,
            idents,
        },
        k + 1,
    ))
}

/// QA006: every field of every registered wire struct must appear in its
/// encode body or carry a justified `digest:exempt`.
pub fn check_digest_coverage(structs: &[StructDef], encodes: &[EncodeFn]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let by_name: BTreeMap<&str, &StructDef> =
        structs.iter().map(|s| (s.name.as_str(), s)).collect();
    let mut covered: BTreeSet<&str> = BTreeSet::new();
    for enc in encodes {
        let Some(def) = by_name.get(enc.target.as_str()) else {
            continue; // struct defined outside the scanned crates
        };
        if !covered.insert(def.name.as_str()) {
            continue; // inherent + trait impls: one coverage check is enough
        }
        for field in &def.fields {
            if enc.idents.contains(&field.name) {
                continue;
            }
            match def.exempts.get(&field.name) {
                Some(reason) if !reason.is_empty() => {}
                Some(_) => {
                    let line = def
                        .exempt_lines
                        .get(&field.name)
                        .copied()
                        .unwrap_or(field.line);
                    findings.push(Finding::new(
                        QaRule::DigestCoverage,
                        def.path.clone(),
                        line,
                        format!(
                            "digest:exempt for `{}.{}` has no reason — escapes must be justified: `// digest:exempt({}: why it is safe to skip)`",
                            def.name, field.name, field.name
                        ),
                    ));
                }
                None => {
                    findings.push(Finding::new(
                        QaRule::DigestCoverage,
                        def.path.clone(),
                        field.line,
                        format!(
                            "field `{}.{}` is not referenced by `{}::encode` ({}:{}) — encode it or add `// digest:exempt({}: reason)`",
                            def.name, field.name, enc.target, enc.path, enc.line, field.name
                        ),
                    ));
                }
            }
        }
        // A typo'd exemption silently never fires; flag names that match
        // no field.
        for name in def.exempts.keys() {
            if !def.fields.iter().any(|f| &f.name == name) {
                let line = def.exempt_lines.get(name).copied().unwrap_or(def.line);
                findings.push(Finding::new(
                    QaRule::DigestCoverage,
                    def.path.clone(),
                    line,
                    format!(
                        "digest:exempt names `{}` but struct `{}` has no such field",
                        name, def.name
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::new("crates/x/src/lib.rs".into(), "x".into(), src)
    }

    #[test]
    fn parses_struct_fields_with_generics_and_attrs() {
        let m = model(
            "pub struct Snap<T> {\n    #[allow(dead_code)]\n    pub a: u64,\n    b: Vec<(u32, f64)>,\n    pub(crate) c: HashMap<K, V>,\n}\n",
        );
        let (structs, _) = parse_items(&m);
        assert_eq!(structs.len(), 1);
        let s = &structs[0];
        assert_eq!(s.name, "Snap");
        let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(s.fields[1].ty, "Vec<(u32,f64)>");
    }

    #[test]
    fn finds_encode_in_inherent_and_trait_impls() {
        let m = model(
            "struct A { x: u64 }\nimpl A {\n    pub fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.x); }\n}\nstruct B { y: u64 }\nimpl Checkpointable for B {\n    fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.y); }\n}\n",
        );
        let (_, encodes) = parse_items(&m);
        let targets: Vec<_> = encodes.iter().map(|e| e.target.as_str()).collect();
        assert_eq!(targets, ["A", "B"]);
        assert!(encodes[0].idents.contains("x"));
        assert!(encodes[1].idents.contains("y"));
    }

    #[test]
    fn encode_without_bytewriter_is_not_registered() {
        let m = model(
            "struct C { z: u64 }\nimpl C {\n    fn encode(&self, out: &mut Vec<u8>) { out.push(self.z as u8); }\n}\n",
        );
        let (_, encodes) = parse_items(&m);
        assert!(encodes.is_empty());
    }

    #[test]
    fn trait_declaration_without_body_is_skipped() {
        let m = model("trait T {\n    fn encode(&self, w: &mut ByteWriter);\n}\n");
        let (_, encodes) = parse_items(&m);
        assert!(encodes.is_empty());
    }

    #[test]
    fn missing_field_is_flagged() {
        let m = model(
            "struct S { a: u64, forgotten: f64 }\nimpl S {\n    fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.a); }\n}\n",
        );
        let (structs, encodes) = parse_items(&m);
        let findings = check_digest_coverage(&structs, &encodes);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("S.forgotten"));
        assert_eq!(findings[0].rule, QaRule::DigestCoverage);
    }

    #[test]
    fn justified_exempt_suppresses_but_bare_exempt_does_not() {
        let m = model(
            "struct S {\n    a: u64,\n    // digest:exempt(skip_ok: derived from `a` on decode)\n    skip_ok: f64,\n    // digest:exempt(skip_bad:)\n    skip_bad: f64,\n}\nimpl S {\n    fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.a); }\n}\n",
        );
        let (structs, encodes) = parse_items(&m);
        let findings = check_digest_coverage(&structs, &encodes);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("skip_bad"));
        assert!(findings[0].message.contains("no reason"));
    }

    #[test]
    fn exempt_for_unknown_field_is_flagged() {
        let m = model(
            "struct S {\n    // digest:exempt(tpyo: never checked)\n    a: u64,\n}\nimpl S {\n    fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.a); }\n}\n",
        );
        let (structs, encodes) = parse_items(&m);
        let findings = check_digest_coverage(&structs, &encodes);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("tpyo"));
    }

    #[test]
    fn test_gated_structs_are_ignored() {
        let m = model(
            "#[cfg(test)]\nmod tests {\n    struct Demo { a: u64, b: u64 }\n    impl Demo {\n        fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.a); }\n    }\n}\n",
        );
        let (structs, encodes) = parse_items(&m);
        assert!(structs.is_empty());
        assert!(encodes.is_empty());
    }
}
