//! A self-contained token-level Rust lexer.
//!
//! The workspace is offline, so no `syn`/`proc-macro2`: this lexer covers
//! exactly what the analyzer rules need and nothing more — comments (line,
//! block, nested block), string/char/byte/raw-string literals, identifiers,
//! lifetimes, numbers, and single-character punctuation, each tagged with
//! its 1-based start line and the brace depth it opens at. A second pass
//! marks every token inside a `#[cfg(test)]` item so rules skip test-only
//! code without bailing out of the rest of the file (the per-line scanner
//! this replaces stopped at the first `#[cfg(test)]` it saw and treated
//! block comments and raw strings as code).
//!
//! The lexer is total: any byte sequence produces a token stream without
//! panicking. Malformed input (unterminated literals, stray quotes)
//! degrades to best-effort tokens rather than errors — a lint must never
//! crash on the code it is linting.

/// Token classification. Literals keep their delimiters in `text`;
/// comments keep their `//` / `/*` markers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Number,
    /// `"…"` and `b"…"` literals.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` literals.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` literals.
    Char,
    LineComment,
    BlockComment,
    /// A single non-alphanumeric character.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Brace depth at the token: `{` carries the depth *before* it opens,
    /// and its matching `}` carries that same depth.
    pub depth: usize,
    /// True when the token sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream and marks `#[cfg(test)]` ranges.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<Tok> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut depth = 0usize;

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                let mut j = i;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                push(&mut out, TokKind::LineComment, &b[i..j], start_line, depth);
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut j = i + 2;
                let mut nest = 1usize;
                while j < b.len() && nest > 0 {
                    if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        nest += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        nest -= 1;
                        j += 2;
                    } else {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                push(&mut out, TokKind::BlockComment, &b[i..j], start_line, depth);
                i = j;
            }
            '"' => {
                let j = scan_string(&b, i + 1, &mut line);
                push(&mut out, TokKind::Str, &b[i..j], start_line, depth);
                i = j;
            }
            '\'' => {
                i = scan_quote(&b, i, &mut out, start_line, depth, &mut line);
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                let mut seen_dot = false;
                while j < b.len() {
                    let d = b[j];
                    if is_ident_continue(d) {
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && b.get(j + 1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                    {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out, TokKind::Number, &b[i..j], start_line, depth);
                i = j;
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                let word: String = b[i..j].iter().collect();
                i = lex_after_word(&b, i, j, &word, &mut out, start_line, depth, &mut line);
            }
            _ => {
                match c {
                    '{' => {
                        push(&mut out, TokKind::Punct, &b[i..i + 1], start_line, depth);
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        push(&mut out, TokKind::Punct, &b[i..i + 1], start_line, depth);
                    }
                    _ => push(&mut out, TokKind::Punct, &b[i..i + 1], start_line, depth),
                }
                i += 1;
            }
        }
    }

    mark_cfg_test(&mut out);
    out
}

fn push(out: &mut Vec<Tok>, kind: TokKind, text: &[char], line: usize, depth: usize) {
    out.push(Tok {
        kind,
        text: text.iter().collect(),
        line,
        depth,
        in_test: false,
    });
}

/// Scans a `"…"` body starting just past the opening quote; returns the
/// index one past the closing quote (or EOF). Counts embedded newlines.
fn scan_string(b: &[char], mut j: usize, line: &mut usize) -> usize {
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    b.len()
}

/// Scans a raw-string body `r##"…"##` starting at the first `#` or quote;
/// returns the index one past the closing delimiter.
fn scan_raw_string(b: &[char], mut j: usize, line: &mut usize) -> Option<usize> {
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
            j += 1;
        } else {
            if b[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
    }
    Some(b.len())
}

/// Disambiguates `'` between char literals and lifetimes. `i` points at
/// the quote; returns the index after the consumed token.
fn scan_quote(
    b: &[char],
    i: usize,
    out: &mut Vec<Tok>,
    start_line: usize,
    depth: usize,
    line: &mut usize,
) -> usize {
    match b.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        *line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(b.len());
            push(out, TokKind::Char, &b[i..j], start_line, depth);
            j
        }
        Some(&c) if is_ident_start(c) => {
            let mut j = i + 2;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&'\'') {
                // 'a' — a char literal whose payload looks like an ident.
                push(out, TokKind::Char, &b[i..j + 1], start_line, depth);
                j + 1
            } else {
                push(out, TokKind::Lifetime, &b[i..j], start_line, depth);
                j
            }
        }
        Some(_) if b.get(i + 2) == Some(&'\'') => {
            // '(' etc: a one-character char literal.
            push(out, TokKind::Char, &b[i..i + 3], start_line, depth);
            i + 3
        }
        _ => {
            push(out, TokKind::Punct, &b[i..i + 1], start_line, depth);
            i + 1
        }
    }
}

/// After lexing an identifier-shaped word, checks for literal prefixes
/// (`r"…"`, `b"…"`, `br"…"`, `b'…'`, `r#ident`). Returns the index after
/// whatever token was pushed.
#[allow(clippy::too_many_arguments)]
fn lex_after_word(
    b: &[char],
    i: usize,
    j: usize,
    word: &str,
    out: &mut Vec<Tok>,
    start_line: usize,
    depth: usize,
    line: &mut usize,
) -> usize {
    if (word == "r" || word == "br" || word == "rb") && matches!(b.get(j), Some('"') | Some('#')) {
        if let Some(end) = scan_raw_string(b, j, line) {
            push(out, TokKind::RawStr, &b[i..end], start_line, depth);
            return end;
        }
        if word == "r" && b.get(j) == Some(&'#') {
            // r#ident raw identifier.
            let mut k = j + 1;
            while k < b.len() && is_ident_continue(b[k]) {
                k += 1;
            }
            push(out, TokKind::Ident, &b[i..k], start_line, depth);
            return k;
        }
    }
    if word == "b" && b.get(j) == Some(&'"') {
        let end = scan_string(b, j + 1, line);
        push(out, TokKind::Str, &b[i..end], start_line, depth);
        return end;
    }
    if word == "b" && b.get(j) == Some(&'\'') {
        return scan_quote(b, j, out, start_line, depth, line);
    }
    push(out, TokKind::Ident, &b[i..j], start_line, depth);
    j
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
///
/// An attribute's item runs through any stacked attributes, then either to
/// the first `;` at the attribute's depth (e.g. a gated `use`) or to the
/// `}` matching the first `{` opened at or below it. `cfg(not(test))` and
/// `cfg_attr(test, …)` are *not* matched — only the exact `cfg(test)`.
fn mark_cfg_test(toks: &mut [Tok]) {
    let sig: Vec<usize> = (0..toks.len()).filter(|&k| !toks[k].is_comment()).collect();
    let mut s = 0usize;
    while s < sig.len() {
        if let Some((attr_end, is_test)) = parse_attr(toks, &sig, s) {
            if is_test {
                // Skip any further stacked attributes.
                let mut p = attr_end + 1;
                while let Some((next_end, _)) = parse_attr(toks, &sig, p) {
                    p = next_end + 1;
                }
                if let Some(item_end) = item_end(toks, &sig, p, toks[sig[s]].depth) {
                    let lo = sig[s];
                    let hi = sig[item_end];
                    for t in toks.iter_mut().take(hi + 1).skip(lo) {
                        t.in_test = true;
                    }
                    s = item_end + 1;
                    continue;
                }
            }
            s = attr_end + 1;
        } else {
            s += 1;
        }
    }
}

/// If `sig[s]` starts an outer attribute `#[…]`, returns the sig-index of
/// its closing `]` and whether the attribute text is exactly `cfg(test)`.
fn parse_attr(toks: &[Tok], sig: &[usize], s: usize) -> Option<(usize, bool)> {
    let first = toks.get(*sig.get(s)?)?;
    if !first.is_punct('#') {
        return None;
    }
    let second = toks.get(*sig.get(s + 1)?)?;
    if !second.is_punct('[') {
        return None;
    }
    let mut nest = 1usize;
    let mut m = s + 2;
    let mut text = String::new();
    while m < sig.len() {
        let t = &toks[sig[m]];
        if t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(']') {
            nest -= 1;
            if nest == 0 {
                return Some((m, text == "cfg(test)"));
            }
        }
        text.push_str(&t.text);
        m += 1;
    }
    None
}

/// Finds the sig-index where the item starting at `sig[p]` ends: the first
/// `;` at `attr_depth`, or the `}` matching the first `{` encountered.
fn item_end(toks: &[Tok], sig: &[usize], p: usize, attr_depth: usize) -> Option<usize> {
    let mut m = p;
    while m < sig.len() {
        let t = &toks[sig[m]];
        if t.is_punct(';') && t.depth == attr_depth {
            return Some(m);
        }
        if t.is_punct('{') {
            let open_depth = t.depth;
            let mut k = m + 1;
            while k < sig.len() {
                let u = &toks[sig[k]];
                if u.is_punct('}') && u.depth == open_depth {
                    return Some(k);
                }
                k += 1;
            }
            return Some(sig.len() - 1);
        }
        m += 1;
    }
    None
}

/// A lexed file plus the per-line derived views the rules consume.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Crate directory name under `crates/` (e.g. `"runtime"`).
    pub crate_name: String,
    pub tokens: Vec<Tok>,
    /// Non-test, non-comment code per line, with literals blanked to
    /// `""`/`''` so rule patterns never match inside them. 0-indexed.
    pub code_lines: Vec<String>,
    /// Comment text per line (comments keep their markers). 0-indexed.
    pub comments: Vec<Vec<String>>,
    /// True when a line holds comment tokens and nothing else.
    pub comment_only: Vec<bool>,
}

impl FileModel {
    pub fn new(path: String, crate_name: String, src: &str) -> Self {
        let tokens = lex(src);
        let n_lines = src.lines().count().max(1);
        let mut code_lines = vec![String::new(); n_lines];
        let mut comments = vec![Vec::new(); n_lines];
        let mut has_code = vec![false; n_lines];
        let mut has_comment = vec![false; n_lines];

        for t in &tokens {
            let idx = (t.line - 1).min(n_lines - 1);
            if t.is_comment() {
                comments[idx].push(t.text.clone());
                has_comment[idx] = true;
                continue;
            }
            has_code[idx] = true;
            if t.in_test {
                continue;
            }
            let line = &mut code_lines[idx];
            match t.kind {
                TokKind::Str | TokKind::RawStr => line.push_str("\"\""),
                TokKind::Char => line.push_str("''"),
                TokKind::Ident | TokKind::Number => {
                    if line
                        .chars()
                        .next_back()
                        .map(is_ident_continue)
                        .unwrap_or(false)
                    {
                        line.push(' ');
                    }
                    line.push_str(&t.text);
                }
                _ => line.push_str(&t.text),
            }
        }

        let comment_only = (0..n_lines)
            .map(|i| has_comment[i] && !has_code[i])
            .collect();
        FileModel {
            path,
            crate_name,
            tokens,
            code_lines,
            comments,
            comment_only,
        }
    }

    /// Comment texts attached to `line` (1-based), plus the contiguous
    /// block of comment-only lines directly above it — the placements a
    /// `lint:allow`/`digest:exempt` escape may use, so justifications can
    /// wrap across lines.
    pub fn escape_comments(&self, line: usize) -> Vec<&str> {
        let mut out = Vec::new();
        if line == 0 {
            return out;
        }
        if let Some(cs) = self.comments.get(line - 1) {
            out.extend(cs.iter().map(|s| s.as_str()));
        }
        let mut above = line - 1; // 1-based line above
        while above >= 1 && self.comment_only.get(above - 1).copied().unwrap_or(false) {
            if let Some(cs) = self.comments.get(above - 1) {
                out.extend(cs.iter().map(|s| s.as_str()));
            }
            above -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_chars_and_lifetimes_disambiguate() {
        let toks = kinds(r#"let s = "a\"b"; let c = 'x'; fn f<'a>(v: &'a str) {} let e = '\n';"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
        let lifes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifes.len(), 2, "{toks:?}");
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
    }

    #[test]
    fn raw_strings_swallow_backslashes_and_quotes() {
        let toks = kinds("let p = r\"c:\\dir\\\"; let q = r#\"say \"hi\"\"#; x.unwrap();");
        let raws: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::RawStr).collect();
        assert_eq!(raws.len(), 2, "{toks:?}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn byte_literals_lex_as_literals() {
        let toks = kinds("let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#;");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::RawStr).count(),
            1
        );
    }

    #[test]
    fn brace_depth_matches_open_and_close() {
        let toks = lex("mod m { fn f() { g(); } }");
        let opens: Vec<_> = toks.iter().filter(|t| t.is_punct('{')).collect();
        let closes: Vec<_> = toks.iter().filter(|t| t.is_punct('}')).collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[0].depth, 0);
        assert_eq!(opens[1].depth, 1);
        assert_eq!(closes[0].depth, 1);
        assert_eq!(closes[1].depth, 0);
    }

    #[test]
    fn cfg_test_scopes_per_item_not_to_eof() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        let toks = lex(src);
        let unwraps: Vec<_> = toks.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(unwraps[0].in_test);
        assert!(!unwraps[1].in_test, "code after the test module is live");
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let toks = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }");
        assert!(toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .all(|t| !t.in_test));
    }

    #[test]
    fn stacked_attributes_stay_gated() {
        let toks = lex("#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u8 }\nstruct Live { y: u8 }");
        let t_x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert!(t_x.in_test);
        let t_y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert!(!t_y.in_test);
    }

    #[test]
    fn cfg_test_on_semicolon_item() {
        let toks = lex("#[cfg(test)]\nuse foo::bar;\nfn live() {}");
        let bar = toks.iter().find(|t| t.is_ident("bar")).unwrap();
        assert!(bar.in_test);
        let live = toks.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn code_lines_blank_literals_and_drop_comments() {
        let m = FileModel::new(
            "f.rs".into(),
            "core".into(),
            "let a = \"Instant::now\"; // Instant::now in comment\nInstant::now();\n",
        );
        assert!(!m.code_lines[0].contains("Instant::now"));
        assert!(m.code_lines[1].contains("Instant::now"));
        assert_eq!(m.comments[0].len(), 1);
    }

    #[test]
    fn multiline_block_comment_lines_are_not_code() {
        let m = FileModel::new(
            "f.rs".into(),
            "core".into(),
            "/* spanning\n   Instant::now()\n   panic!(\"x\") */\nreal();\n",
        );
        assert!(
            m.code_lines[..3].iter().all(|l| l.is_empty()),
            "{:?}",
            m.code_lines
        );
        assert_eq!(m.code_lines[3], "real();");
    }

    #[test]
    fn escape_comments_cover_same_line_and_line_above() {
        let src = "// lint:allow(wallclock) — justification here\nInstant::now(); // lint:allow(entropy) — other\n";
        let m = FileModel::new("f.rs".into(), "core".into(), src);
        let cs = m.escape_comments(2);
        assert!(cs.iter().any(|c| c.contains("wallclock")));
        assert!(cs.iter().any(|c| c.contains("entropy")));
    }

    #[test]
    fn lexer_is_total_on_malformed_input() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated",
            "'",
            "'a",
            "b'",
            "r#",
            "0x",
            "#[",
            "#[cfg(test)]",
        ] {
            let _ = lex(src);
        }
    }
}
