//! Stable diagnostic codes and structured findings, in the same style as
//! qns-verify's QV/QC codes: every rule has a fixed `QAxxx` code, a short
//! escape name (the token used in `lint:allow(...)`), a severity, and a
//! one-line description. Findings render as `severity[code] path:line:
//! message` for humans and as JSON objects for CI artifacts.

use std::fmt;

/// Every analyzer rule, with a stable code. Codes are append-only: new
/// rules take the next number, existing numbers never change meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QaRule {
    /// QA001 — wall-clock reads (`Instant::now`, `SystemTime`) in
    /// search-path crates make scores time-dependent.
    Wallclock,
    /// QA002 — ambient entropy (`thread_rng`, `from_entropy`, `OsRng`)
    /// breaks seed-determinism.
    Entropy,
    /// QA003 — raw `thread::spawn` outside the runtime crate bypasses the
    /// deterministic reduction engine.
    Spawn,
    /// QA004 — `.unwrap()` / `panic!` in library crates that promise
    /// error returns.
    NoPanic,
    /// QA005 — iteration over `HashMap`/`HashSet` observes randomized
    /// order; sort first or justify.
    NondetIter,
    /// QA006 — a checkpointed/digested struct has a field its encode body
    /// never touches.
    DigestCoverage,
    /// QA007 — the checkpoint wire shape drifted from `analyze/schema.lock`
    /// without a `FORMAT_VERSION` bump.
    SchemaLock,
}

impl QaRule {
    pub fn code(&self) -> &'static str {
        match self {
            QaRule::Wallclock => "QA001",
            QaRule::Entropy => "QA002",
            QaRule::Spawn => "QA003",
            QaRule::NoPanic => "QA004",
            QaRule::NondetIter => "QA005",
            QaRule::DigestCoverage => "QA006",
            QaRule::SchemaLock => "QA007",
        }
    }

    /// The escape name accepted by `// lint:allow(<name>)`.
    pub fn name(&self) -> &'static str {
        match self {
            QaRule::Wallclock => "wallclock",
            QaRule::Entropy => "entropy",
            QaRule::Spawn => "spawn",
            QaRule::NoPanic => "no-panic",
            QaRule::NondetIter => "nondet-iter",
            QaRule::DigestCoverage => "digest-coverage",
            QaRule::SchemaLock => "schema-lock",
        }
    }

    pub fn description(&self) -> &'static str {
        match self {
            QaRule::Wallclock => "wall-clock time reads in search-path code",
            QaRule::Entropy => "ambient OS entropy in search-path code",
            QaRule::Spawn => "raw thread spawning outside the runtime crate",
            QaRule::NoPanic => "panicking calls in no-panic library crates",
            QaRule::NondetIter => "iteration over HashMap/HashSet in randomized order",
            QaRule::DigestCoverage => "snapshot struct field missing from its encode body",
            QaRule::SchemaLock => "checkpoint wire shape drifted without a FORMAT_VERSION bump",
        }
    }

    pub fn severity(&self) -> Severity {
        Severity::Error
    }

    pub fn all() -> &'static [QaRule] {
        &[
            QaRule::Wallclock,
            QaRule::Entropy,
            QaRule::Spawn,
            QaRule::NoPanic,
            QaRule::NondetIter,
            QaRule::DigestCoverage,
            QaRule::SchemaLock,
        ]
    }
}

/// Diagnostic severity. Every current rule is an error (CI-failing);
/// the warning tier exists so future advisory rules fit the same report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a rule violation anchored to a file:line span.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    pub rule: QaRule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line, or 0 when the finding is file-level (e.g. a missing
    /// schema lock).
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(rule: QaRule, path: impl Into<String>, line: usize, message: String) -> Self {
        Finding {
            rule,
            path: path.into(),
            line,
            message,
        }
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule.code(),
            self.rule.name(),
            self.rule.severity(),
            escape_json(&self.path),
            self.line,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.rule.severity(),
            self.rule.code(),
            self.path,
            self.line,
            self.message
        )
    }
}

/// Renders findings as a JSON array (one object per finding).
pub fn report_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&f.to_json());
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<_> = QaRule::all().iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            ["QA001", "QA002", "QA003", "QA004", "QA005", "QA006", "QA007"]
        );
        let names: Vec<_> = QaRule::all().iter().map(|r| r.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn display_and_json_round_out() {
        let f = Finding::new(
            QaRule::NondetIter,
            "crates/x/src/lib.rs",
            12,
            "iteration over `map` — \"quoted\"".into(),
        );
        assert_eq!(
            f.to_string(),
            "error[QA005] crates/x/src/lib.rs:12: iteration over `map` — \"quoted\""
        );
        let json = f.to_json();
        assert!(json.contains("\"code\":\"QA005\""));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn report_json_is_valid_shape() {
        assert_eq!(report_json(&[]), "[]");
        let f = Finding::new(QaRule::Wallclock, "a.rs", 1, "m".into());
        let j = report_json(&[f.clone(), f]);
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert_eq!(j.matches("QA001").count(), 2);
    }
}
