//! QA007: the snapshot-schema lock.
//!
//! Every wire-format struct (anything QA006 registers) has its field list
//! fingerprinted — name plus ordered `field:type` pairs, FNV-1a over the
//! normalized text — and the set of fingerprints, together with the
//! checkpoint `FORMAT_VERSION`, is committed to `analyze/schema.lock`.
//! The rule then enforces the one workflow that keeps old checkpoints
//! loadable: change the wire shape → bump `FORMAT_VERSION` in
//! `crates/runtime/src/checkpoint.rs` → regenerate the lock with
//! `cargo xtask analyze --update-schema` → commit both. A shape change
//! without a version bump fails CI before it can corrupt a resume.

use crate::diag::{Finding, QaRule};
use crate::digest::StructDef;
use crate::lexer::FileModel;
use std::collections::BTreeMap;

/// Workspace-relative path of the committed lock file.
pub const LOCK_PATH: &str = "analyze/schema.lock";

/// The file that declares the checkpoint `FORMAT_VERSION`.
pub const FORMAT_VERSION_PATH: &str = "crates/runtime/src/checkpoint.rs";

/// A schema snapshot: the wire version plus one fingerprint per struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    pub format_version: u32,
    /// Struct name → (fingerprint hex, defining path, line).
    pub structs: BTreeMap<String, StructEntry>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructEntry {
    pub fingerprint: String,
    pub path: String,
    pub line: usize,
}

/// FNV-1a, the same construction the verifier uses for stable textual
/// fingerprints; collisions across a handful of struct shapes are not a
/// realistic concern.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprints one struct: the name and every `field:type` pair in
/// declaration order. Renaming, reordering, retyping, adding, or removing
/// a field all change the fingerprint.
pub fn fingerprint(def: &StructDef) -> String {
    let mut text = def.name.clone();
    for f in &def.fields {
        text.push('|');
        text.push_str(&f.name);
        text.push(':');
        text.push_str(&f.ty);
    }
    format!("{:016x}", fnv1a(text.as_bytes()))
}

/// Extracts `pub const FORMAT_VERSION: u32 = N;` from the checkpoint
/// module's token stream.
pub fn parse_format_version(model: &FileModel) -> Option<u32> {
    let toks: Vec<_> = model.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("FORMAT_VERSION") {
            for u in toks.iter().skip(i + 1).take(6) {
                if u.kind == crate::lexer::TokKind::Number {
                    let digits: String =
                        u.text.chars().take_while(|c| c.is_ascii_digit()).collect();
                    return digits.parse().ok();
                }
            }
        }
    }
    None
}

/// Builds the current schema from the wire structs QA006 registered.
pub fn current_schema(format_version: u32, wire_structs: &[&StructDef]) -> Schema {
    let mut structs = BTreeMap::new();
    for def in wire_structs {
        structs.insert(
            def.name.clone(),
            StructEntry {
                fingerprint: fingerprint(def),
                path: def.path.clone(),
                line: def.line,
            },
        );
    }
    Schema {
        format_version,
        structs,
    }
}

/// Renders a schema as the committed lock text.
pub fn render_lock(schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("# qns-analyze snapshot-schema lock. Do not edit by hand:\n");
    out.push_str("# regenerate with `cargo xtask analyze --update-schema` after bumping\n");
    out.push_str("# FORMAT_VERSION in crates/runtime/src/checkpoint.rs.\n");
    out.push_str(&format!("format_version {}\n", schema.format_version));
    for (name, entry) in &schema.structs {
        out.push_str(&format!("struct {} {}\n", name, entry.fingerprint));
    }
    out
}

/// Parses a lock file. Returns `None` on any malformed line so a corrupt
/// lock reads as "missing" (and QA007 says to regenerate it).
pub fn parse_lock(text: &str) -> Option<Schema> {
    let mut format_version: Option<u32> = None;
    let mut structs = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next()? {
            "format_version" => {
                format_version = Some(parts.next()?.parse().ok()?);
            }
            "struct" => {
                let name = parts.next()?.to_string();
                let fp = parts.next()?.to_string();
                structs.insert(
                    name,
                    StructEntry {
                        fingerprint: fp,
                        path: String::new(),
                        line: 0,
                    },
                );
            }
            _ => return None,
        }
    }
    Some(Schema {
        format_version: format_version?,
        structs,
    })
}

/// QA007: compares the current schema against the committed lock.
pub fn check(current: &Schema, lock: Option<&Schema>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(lock) = lock else {
        findings.push(Finding::new(
            QaRule::SchemaLock,
            LOCK_PATH,
            0,
            format!(
                "schema lock missing or unreadable — run `cargo xtask analyze --update-schema` and commit {LOCK_PATH}"
            ),
        ));
        return findings;
    };
    if lock.format_version != current.format_version {
        findings.push(Finding::new(
            QaRule::SchemaLock,
            LOCK_PATH,
            1,
            format!(
                "FORMAT_VERSION is {} but the schema lock was written at {} — regenerate with `cargo xtask analyze --update-schema`",
                current.format_version, lock.format_version
            ),
        ));
        // The per-struct diff below would double-report the same change.
        return findings;
    }
    for (name, entry) in &current.structs {
        match lock.structs.get(name) {
            None => findings.push(Finding::new(
                QaRule::SchemaLock,
                entry.path.clone(),
                entry.line,
                format!(
                    "wire struct `{name}` is not in {LOCK_PATH} — bump FORMAT_VERSION and run `cargo xtask analyze --update-schema`"
                ),
            )),
            Some(locked) if locked.fingerprint != entry.fingerprint => {
                findings.push(Finding::new(
                    QaRule::SchemaLock,
                    entry.path.clone(),
                    entry.line,
                    format!(
                        "wire shape of `{name}` changed but FORMAT_VERSION is still {} — old checkpoints would decode incorrectly; bump FORMAT_VERSION in {FORMAT_VERSION_PATH} and run `cargo xtask analyze --update-schema`",
                        current.format_version
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for name in lock.structs.keys() {
        if !current.structs.contains_key(name) {
            findings.push(Finding::new(
                QaRule::SchemaLock,
                LOCK_PATH,
                0,
                format!(
                    "struct `{name}` in the schema lock no longer exists — bump FORMAT_VERSION and run `cargo xtask analyze --update-schema`"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::parse_items;

    fn defs(src: &str) -> Vec<StructDef> {
        let m = FileModel::new("crates/core/src/checkpoint.rs".into(), "core".into(), src);
        parse_items(&m).0
    }

    const BASE: &str = "pub struct Snap {\n    pub step: u64,\n    pub params: Vec<f64>,\n}\nimpl Snap {\n    pub fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.step); put_all(w, &self.params); }\n}\n";

    #[test]
    fn fingerprint_is_sensitive_to_shape_not_whitespace() {
        let a = defs(BASE);
        let b = defs("pub struct Snap { pub step: u64, pub params: Vec<f64> }\nimpl Snap { pub fn encode(&self, w: &mut ByteWriter) {} }\n");
        assert_eq!(fingerprint(&a[0]), fingerprint(&b[0]));

        // Adding a field changes it…
        let c = defs("pub struct Snap { pub step: u64, pub params: Vec<f64>, pub extra: u32 }\n");
        assert_ne!(fingerprint(&a[0]), fingerprint(&c[0]));
        // …and so do renames, retypes, and reorders.
        let d = defs("pub struct Snap { pub step2: u64, pub params: Vec<f64> }\n");
        assert_ne!(fingerprint(&a[0]), fingerprint(&d[0]));
        let e = defs("pub struct Snap { pub step: u32, pub params: Vec<f64> }\n");
        assert_ne!(fingerprint(&a[0]), fingerprint(&e[0]));
        let f = defs("pub struct Snap { pub params: Vec<f64>, pub step: u64 }\n");
        assert_ne!(fingerprint(&a[0]), fingerprint(&f[0]));
    }

    #[test]
    fn lock_round_trips_through_text() {
        let d = defs(BASE);
        let refs: Vec<&StructDef> = d.iter().collect();
        let schema = current_schema(3, &refs);
        let text = render_lock(&schema);
        let back = parse_lock(&text).expect("parse");
        assert_eq!(back.format_version, 3);
        assert_eq!(
            back.structs["Snap"].fingerprint,
            schema.structs["Snap"].fingerprint
        );
    }

    #[test]
    fn missing_and_corrupt_locks_ask_for_regeneration() {
        let d = defs(BASE);
        let refs: Vec<&StructDef> = d.iter().collect();
        let schema = current_schema(1, &refs);
        let f = check(&schema, None);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("--update-schema"));
        assert!(parse_lock("format_version not-a-number\n").is_none());
        assert!(parse_lock("garbage line\n").is_none());
    }

    #[test]
    fn field_added_without_version_bump_is_caught() {
        let before = defs(BASE);
        let refs: Vec<&StructDef> = before.iter().collect();
        let lock = current_schema(1, &refs);

        // Same FORMAT_VERSION, one new field — the exact drift QA007 exists
        // to catch.
        let after = defs(
            "pub struct Snap {\n    pub step: u64,\n    pub params: Vec<f64>,\n    pub sneaky: u32,\n}\nimpl Snap {\n    pub fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.step); put_all(w, &self.params); w.put_u32(self.sneaky); }\n}\n",
        );
        let refs: Vec<&StructDef> = after.iter().collect();
        let drifted = current_schema(1, &refs);
        let f = check(&drifted, Some(&lock));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("FORMAT_VERSION is still 1"));

        // Bumping the version and regenerating clears it.
        let bumped = current_schema(2, &refs);
        let new_lock = parse_lock(&render_lock(&bumped)).unwrap();
        assert!(check(&bumped, Some(&new_lock)).is_empty());
    }

    #[test]
    fn version_drift_and_struct_removal_are_caught() {
        let d = defs(BASE);
        let refs: Vec<&StructDef> = d.iter().collect();
        let lock = current_schema(1, &refs);
        let cur = current_schema(2, &refs);
        let f = check(&cur, Some(&lock));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("written at 1"));

        let empty = current_schema(1, &[]);
        let f = check(&empty, Some(&lock));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no longer exists"));
    }

    #[test]
    fn format_version_parses_from_source() {
        let m = FileModel::new(
            "crates/runtime/src/checkpoint.rs".into(),
            "runtime".into(),
            "/// Wire version.\npub const FORMAT_VERSION: u32 = 7;\n",
        );
        assert_eq!(parse_format_version(&m), Some(7));
    }
}
