//! qns-analyze: token-level static analysis for the determinism,
//! digest-coverage, and snapshot-schema invariants the search stack
//! depends on.
//!
//! The whole pipeline — content-addressed score memoization, bitwise
//! checkpoint/resume, digest-derived candidate seeds — fails *silently*
//! when a wall-clock read, an ambient RNG, a HashMap-ordered loop, or an
//! unencoded snapshot field slips in: searches complete and look healthy
//! while scores stop being reproducible. This crate is the review-time
//! gate for that bug class. A self-contained lexer ([`lexer`]) feeds rule
//! passes ([`rules`], [`digest`], [`schema`]) that emit stable `QAxxx`
//! diagnostics ([`diag`]), surfaced through `cargo xtask analyze`.
//!
//! | Code  | Name            | Checks |
//! |-------|-----------------|--------|
//! | QA001 | wallclock       | no `Instant::now`/`SystemTime` in search-path crates |
//! | QA002 | entropy         | no `thread_rng`/`from_entropy`/`OsRng` |
//! | QA003 | spawn           | no `thread::spawn` outside qns-runtime |
//! | QA004 | no-panic        | no `.unwrap()`/`panic!` in no-panic crates |
//! | QA005 | nondet-iter     | no order-observing HashMap/HashSet iteration |
//! | QA006 | digest-coverage | every wire-struct field encoded or exempted |
//! | QA007 | schema-lock     | wire shape changes require a FORMAT_VERSION bump |
//!
//! Escapes are comments and must carry a justification: `// lint:allow(
//! <name>) — reason` for QA001–QA005, `// digest:exempt(<field>: reason)`
//! for QA006. QA007 has no escape; its workflow is bump-and-regenerate.

pub mod diag;
pub mod digest;
pub mod lexer;
pub mod rules;
pub mod schema;

pub use diag::{report_json, Finding, QaRule, Severity};
pub use lexer::FileModel;

use digest::{EncodeFn, StructDef};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Loads every `.rs` file under `crates/<c>/src` for the search-path
/// crates, in sorted order so findings are stable.
fn load_models(root: &Path) -> io::Result<Vec<FileModel>> {
    let mut models = Vec::new();
    for crate_name in rules::SEARCH_PATH_CRATES {
        let src_dir = root.join("crates").join(crate_name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            models.push(FileModel::new(rel, crate_name.to_string(), &text));
        }
    }
    Ok(models)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Parsed items plus the wire structs (those with an encode) they imply.
struct Parsed {
    structs: Vec<StructDef>,
    encodes: Vec<EncodeFn>,
}

fn parse_all(models: &[FileModel]) -> Parsed {
    let mut structs = Vec::new();
    let mut encodes = Vec::new();
    for m in models {
        let (mut s, mut e) = digest::parse_items(m);
        structs.append(&mut s);
        encodes.append(&mut e);
    }
    Parsed { structs, encodes }
}

fn wire_structs(parsed: &Parsed) -> Vec<&StructDef> {
    let mut out: Vec<&StructDef> = parsed
        .structs
        .iter()
        .filter(|s| parsed.encodes.iter().any(|e| e.target == s.name))
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out.dedup_by(|a, b| a.name == b.name);
    out
}

fn build_current_schema(models: &[FileModel], parsed: &Parsed) -> Option<schema::Schema> {
    let version_model = models
        .iter()
        .find(|m| m.path.ends_with(schema::FORMAT_VERSION_PATH))?;
    let version = schema::parse_format_version(version_model)?;
    Some(schema::current_schema(version, &wire_structs(parsed)))
}

/// Runs every rule over the tree rooted at `root` (the workspace root).
pub fn analyze(root: &Path) -> io::Result<Vec<Finding>> {
    let models = load_models(root)?;
    let parsed = parse_all(&models);

    let mut findings = Vec::new();
    for m in &models {
        findings.extend(rules::scan_patterns(m));
        // QA005 resolves `self.field` accesses through the fields of every
        // struct defined in the same file.
        let fields: Vec<(String, String)> = parsed
            .structs
            .iter()
            .filter(|s| s.path == m.path)
            .flat_map(|s| s.fields.iter().map(|f| (f.name.clone(), f.ty.clone())))
            .collect();
        findings.extend(rules::scan_nondet_iter(m, &fields));
    }
    findings.extend(digest::check_digest_coverage(
        &parsed.structs,
        &parsed.encodes,
    ));

    match build_current_schema(&models, &parsed) {
        Some(current) => {
            let lock = fs::read_to_string(root.join(schema::LOCK_PATH))
                .ok()
                .and_then(|text| schema::parse_lock(&text));
            findings.extend(schema::check(&current, lock.as_ref()));
        }
        None => findings.push(Finding::new(
            QaRule::SchemaLock,
            schema::FORMAT_VERSION_PATH,
            0,
            "could not locate FORMAT_VERSION — the schema-lock rule has lost its anchor".into(),
        )),
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Regenerates `analyze/schema.lock` from the current tree. Returns the
/// lock path and the number of wire structs recorded.
pub fn update_schema_lock(root: &Path) -> io::Result<(PathBuf, usize)> {
    let models = load_models(root)?;
    let parsed = parse_all(&models);
    let current = build_current_schema(&models, &parsed).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "could not locate FORMAT_VERSION in crates/runtime/src/checkpoint.rs",
        )
    })?;
    let lock_path = root.join(schema::LOCK_PATH);
    if let Some(dir) = lock_path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(&lock_path, schema::render_lock(&current))?;
    Ok((lock_path, current.structs.len()))
}
