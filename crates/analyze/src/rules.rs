//! The analyzer rules.
//!
//! QA001–QA004 are token-stream ports of the original per-line lint:
//! pattern matching against a per-line "code view" rebuilt from non-test,
//! non-comment tokens with literals blanked out, so block comments, raw
//! strings, and post-`#[cfg(test)]` code are all handled correctly.
//!
//! QA005 tracks which names in a file are `HashMap`/`HashSet` values —
//! via type annotations, struct fields, constructor calls, and a small
//! propagation step through lock/borrow guards and for-loop bindings —
//! and flags order-observing iteration (`iter`, `keys`, `values`, `drain`,
//! `for … in map`). Sorting afterwards is invisible to a lexical pass, so
//! deterministic sites carry a justified `// lint:allow(nondet-iter)`
//! escape; the escape text documents *why* the order cannot leak.

use crate::diag::{Finding, QaRule};
use crate::lexer::{FileModel, Tok, TokKind};
use std::collections::BTreeMap;

/// Crates on the search path: everything that can influence a candidate
/// score, a digest, or a checkpoint byte.
pub const SEARCH_PATH_CRATES: &[&str] = &[
    "tensor",
    "circuit",
    "sim",
    "noise",
    "transpile",
    "verify",
    "ml",
    "data",
    "chem",
    "core",
    "runtime",
    "proxy",
];

/// Crates that must not spawn threads directly (the runtime crate owns
/// the worker pool and its deterministic reduction order).
pub const NO_SPAWN_CRATES: &[&str] = &[
    "tensor",
    "circuit",
    "sim",
    "noise",
    "transpile",
    "verify",
    "ml",
    "data",
    "chem",
    "core",
    "proxy",
];

/// Library crates that promise `Result` returns instead of panics.
pub const NO_PANIC_CRATES: &[&str] = &["circuit", "transpile", "sim", "noise"];

/// A substring-pattern rule over the per-line code view.
pub struct PatternRule {
    pub rule: QaRule,
    pub patterns: &'static [&'static str],
    pub crates: &'static [&'static str],
    /// Files (workspace-relative suffixes) exempt from this rule.
    pub allow_files: &'static [&'static str],
    /// When non-empty, justified escapes are honored **only** inside these
    /// files (workspace-relative suffixes): the rule's pattern is audited
    /// to a sanctioned module, and a `lint:allow` anywhere else — however
    /// well justified — is still a finding. Unlike `allow_files`, the
    /// sanctioned files themselves are still scanned (a bare escape there
    /// is rejected as usual).
    pub sanctioned_files: &'static [&'static str],
}

pub fn pattern_rules() -> Vec<PatternRule> {
    vec![
        PatternRule {
            rule: QaRule::Wallclock,
            patterns: &["Instant::now", "SystemTime"],
            crates: SEARCH_PATH_CRATES,
            allow_files: &["runtime/src/telemetry.rs"],
            sanctioned_files: &[],
        },
        PatternRule {
            rule: QaRule::Entropy,
            patterns: &["thread_rng", "from_entropy", "OsRng"],
            crates: SEARCH_PATH_CRATES,
            allow_files: &[],
            sanctioned_files: &[],
        },
        PatternRule {
            rule: QaRule::Spawn,
            patterns: &["thread::spawn"],
            crates: NO_SPAWN_CRATES,
            allow_files: &[],
            // The simulator's persistent worker pool is the one audited
            // spawn site outside the runtime crate; every other spawn in
            // these crates must route through it or the runtime engine.
            sanctioned_files: &["sim/src/pool.rs"],
        },
        PatternRule {
            rule: QaRule::NoPanic,
            patterns: &[".unwrap()", "panic!"],
            crates: NO_PANIC_CRATES,
            allow_files: &[],
            sanctioned_files: &[],
        },
    ]
}

/// How a line is escaped for a rule: not at all, with a bare (rejected)
/// tag, or with a justified tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Escape {
    None,
    Bare,
    Justified,
}

/// Looks for `lint:allow(<name>)` in the comments attached to `line`
/// (same line, or a comment-only line directly above). The escape only
/// counts as justified when explanatory text follows the tag.
pub fn escape_for(model: &FileModel, name: &str, line: usize) -> Escape {
    let tag = format!("lint:allow({name})");
    let mut best = Escape::None;
    for comment in model.escape_comments(line) {
        if let Some(pos) = comment.find(&tag) {
            let rest = &comment[pos + tag.len()..];
            if rest.chars().any(|c| c.is_alphanumeric()) {
                return Escape::Justified;
            }
            best = Escape::Bare;
        }
    }
    best
}

fn bare_escape_finding(rule: QaRule, model: &FileModel, line: usize) -> Finding {
    Finding::new(
        rule,
        model.path.clone(),
        line,
        format!(
            "`lint:allow({})` escape has no justification — explain why the site is safe after the tag",
            rule.name()
        ),
    )
}

/// Runs the QA001–QA004 pattern rules over one file.
pub fn scan_patterns(model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in pattern_rules() {
        if !rule.crates.iter().any(|c| *c == model.crate_name) {
            continue;
        }
        if rule.allow_files.iter().any(|f| model.path.ends_with(f)) {
            continue;
        }
        for (idx, code) in model.code_lines.iter().enumerate() {
            let Some(pattern) = rule.patterns.iter().find(|p| code.contains(*p)) else {
                continue;
            };
            let line = idx + 1;
            let sanctioned_here = rule.sanctioned_files.is_empty()
                || rule
                    .sanctioned_files
                    .iter()
                    .any(|f| model.path.ends_with(f));
            match escape_for(model, rule.rule.name(), line) {
                Escape::Justified if sanctioned_here => {}
                Escape::Justified => findings.push(Finding::new(
                    rule.rule,
                    model.path.clone(),
                    line,
                    format!(
                        "`{}` is sanctioned only in {} — a justified `lint:allow({})` elsewhere is not accepted; route through the sanctioned module",
                        pattern,
                        rule.sanctioned_files.join(", "),
                        rule.rule.name()
                    ),
                )),
                Escape::Bare => findings.push(bare_escape_finding(rule.rule, model, line)),
                Escape::None => findings.push(Finding::new(
                    rule.rule,
                    model.path.clone(),
                    line,
                    format!(
                        "`{}` — {}; justify with `// lint:allow({}) — reason` if intentional",
                        pattern,
                        rule.rule.description(),
                        rule.rule.name()
                    ),
                )),
            }
        }
    }
    findings
}

/// How a name relates to hash-ordered collections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HashClass {
    /// The value *is* a `HashMap`/`HashSet` (possibly behind references
    /// and transparent wrappers) — iterating it observes random order.
    Outermost,
    /// The value contains one deeper inside (e.g. `Vec<Mutex<HashMap>>`)
    /// — iterating it is fine, but guards extracted from it are not.
    Contains,
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
/// Wrappers that are transparent for ordering purposes: a guard or
/// smart pointer around a hash collection is still hash-ordered.
const PEEL_WRAPPERS: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "Option",
    "Mutex",
    "RwLock",
    "RefCell",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Ref",
    "RefMut",
];
/// Methods that hand back the same collection (or a guard over it).
const ACCESSOR_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "expect",
    "unwrap",
    "as_ref",
    "as_mut",
];
/// Guard-producing accessors: applying one to a *container of* hash
/// collections yields the hash collection itself.
const GUARD_METHODS: &[&str] = &["lock", "read", "write", "borrow", "borrow_mut"];
/// Order-observing iteration methods.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Classifies a type from its token texts.
fn classify_type(toks: &[String]) -> Option<HashClass> {
    // Peel leading references, lifetimes, mutability, and path prefixes.
    let mut i = 0usize;
    loop {
        match toks.get(i).map(|s| s.as_str()) {
            Some("&") | Some("mut") | Some("dyn") => i += 1,
            Some(s) if s.starts_with('\'') => i += 1,
            // `std :: collections :: HashMap` — drop `seg ::` prefixes.
            Some(_)
                if toks.get(i + 1).map(|s| s == ":").unwrap_or(false)
                    && toks.get(i + 2).map(|s| s == ":").unwrap_or(false) =>
            {
                i += 3
            }
            _ => break,
        }
    }
    let head = toks.get(i).map(|s| s.as_str())?;
    if HASH_TYPES.contains(&head) {
        return Some(HashClass::Outermost);
    }
    if PEEL_WRAPPERS.contains(&head) {
        // Recurse into the generic arguments, skipping lifetimes/commas
        // until a type head appears.
        if toks.get(i + 1).map(|s| s == "<").unwrap_or(false) {
            let inner: Vec<String> = toks[i + 2..]
                .iter()
                .take_while(|s| *s != ">")
                .filter(|s| *s != "," && !s.starts_with('\'') && *s != "_")
                .cloned()
                .collect();
            if let Some(c) = classify_type(&inner) {
                return Some(c);
            }
        }
    }
    if toks.iter().any(|s| HASH_TYPES.contains(&s.as_str())) {
        return Some(HashClass::Contains);
    }
    None
}

/// State for the QA005 walk: a flat per-file map from names to classes.
/// Flat scoping trades precision for simplicity; collisions are rare in
/// practice and resolvable with an escape.
struct HashNames {
    classes: BTreeMap<String, HashClass>,
}

impl HashNames {
    fn mark(&mut self, name: &str, class: HashClass) {
        let entry = self.classes.entry(name.to_string());
        // Outermost wins over Contains: never downgrade.
        let slot = entry.or_insert(class);
        if class == HashClass::Outermost {
            *slot = class;
        }
    }

    fn get(&self, name: &str) -> Option<HashClass> {
        self.classes.get(name).copied()
    }
}

/// QA005 over one file. `struct_fields` supplies field types parsed by
/// the digest module so `self.err_2q`-style accesses resolve.
pub fn scan_nondet_iter(model: &FileModel, struct_fields: &[(String, String)]) -> Vec<Finding> {
    if !SEARCH_PATH_CRATES.iter().any(|c| *c == model.crate_name) {
        return Vec::new();
    }
    let toks: Vec<&Tok> = model
        .tokens
        .iter()
        .filter(|t| !t.is_comment() && !t.in_test)
        .collect();

    let mut names = HashNames {
        classes: BTreeMap::new(),
    };
    for (fname, fty) in struct_fields {
        let ty_toks: Vec<String> = tokenize_type(fty);
        if let Some(c) = classify_type(&ty_toks) {
            names.mark(fname, c);
        }
    }

    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        // `let [mut] NAME : TYPE = …` and `let [mut] NAME = RHS ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).map(|u| u.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j).filter(|u| u.kind == TokKind::Ident) {
                let name = name_tok.text.clone();
                if toks.get(j + 1).map(|u| u.is_punct(':')).unwrap_or(false) {
                    let ty: Vec<String> = collect_until(&toks, j + 2, &["=", ";"])
                        .iter()
                        .map(|u| u.text.clone())
                        .collect();
                    if let Some(c) = classify_type(&ty) {
                        names.mark(&name, c);
                    }
                } else if toks.get(j + 1).map(|u| u.is_punct('=')).unwrap_or(false) {
                    classify_rhs(&toks, j + 2, &name, &mut names);
                }
            }
            i += 1;
            continue;
        }
        // `for PAT in EXPR {`
        if t.is_ident("for") {
            if let Some(f) = scan_for_loop(model, &toks, i, &mut names) {
                findings.push(f);
            }
            i += 1;
            continue;
        }
        // `X . method (` where method observes iteration order.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|u| u.is_punct('(')).unwrap_or(false)
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
        {
            let recv = &toks[i - 2].text;
            if names.get(recv) == Some(HashClass::Outermost) {
                push_iter_finding(model, &mut findings, t.line, recv, &t.text);
            }
        }
        i += 1;
    }
    findings
}

/// Splits a normalized type string (as produced by the struct parser,
/// e.g. `Vec<(usize,usize)>`) back into coarse tokens.
fn tokenize_type(ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ty.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn collect_until<'a>(toks: &[&'a Tok], from: usize, stops: &[&str]) -> Vec<&'a Tok> {
    let mut out = Vec::new();
    let mut j = from;
    let mut angle = 0i32;
    while j < toks.len() {
        let u = toks[j];
        if u.is_punct('<') {
            angle += 1;
        } else if u.is_punct('>') {
            angle -= 1;
        }
        if angle <= 0 && stops.iter().any(|s| u.text == *s) {
            break;
        }
        out.push(u);
        j += 1;
    }
    out
}

/// Classifies `let NAME = RHS`. Handles constructor calls
/// (`HashMap::new()`, `HashSet::with_capacity(…)`) and accessor chains
/// over known names (`known.lock().expect("…")`).
fn classify_rhs(toks: &[&Tok], mut j: usize, name: &str, names: &mut HashNames) {
    // Skip leading `&`/`mut`.
    while toks
        .get(j)
        .map(|u| u.is_punct('&') || u.is_ident("mut"))
        .unwrap_or(false)
    {
        j += 1;
    }
    let Some(first) = toks.get(j).filter(|u| u.kind == TokKind::Ident) else {
        return;
    };
    if HASH_TYPES.contains(&first.text.as_str()) {
        names.mark(name, HashClass::Outermost);
        return;
    }
    // `self . X …` or `X …`
    let (base, mut k) =
        if first.is_ident("self") && toks.get(j + 1).map(|u| u.is_punct('.')).unwrap_or(false) {
            match toks.get(j + 2).filter(|u| u.kind == TokKind::Ident) {
                Some(b) => (b.text.clone(), j + 3),
                None => return,
            }
        } else {
            (first.text.clone(), j + 1)
        };
    let Some(base_class) = names.get(&base) else {
        return;
    };
    // Walk an accessor chain: (.method(args))* up to `;`.
    let mut class = base_class;
    loop {
        if !toks.get(k).map(|u| u.is_punct('.')).unwrap_or(false) {
            break;
        }
        let Some(m) = toks.get(k + 1).filter(|u| u.kind == TokKind::Ident) else {
            return;
        };
        if !ACCESSOR_METHODS.contains(&m.text.as_str()) {
            return; // unknown method — assume the hash type does not flow
        }
        if GUARD_METHODS.contains(&m.text.as_str()) {
            class = HashClass::Outermost;
        }
        // Skip the argument list.
        if !toks.get(k + 2).map(|u| u.is_punct('(')).unwrap_or(false) {
            return;
        }
        let mut nest = 0usize;
        let mut p = k + 2;
        while p < toks.len() {
            if toks[p].is_punct('(') {
                nest += 1;
            } else if toks[p].is_punct(')') {
                nest -= 1;
                if nest == 0 {
                    break;
                }
            }
            p += 1;
        }
        k = p + 1;
    }
    if toks.get(k).map(|u| u.is_punct(';')).unwrap_or(false) {
        names.mark(name, class);
    }
}

/// Handles `for PAT in EXPR {`: flags iteration over an outermost hash
/// collection and propagates `Contains` into the loop binding.
fn scan_for_loop(
    model: &FileModel,
    toks: &[&Tok],
    kw: usize,
    names: &mut HashNames,
) -> Option<Finding> {
    // Find `in` before any `{`/`;` (also bails on `impl Trait for X`).
    let mut j = kw + 1;
    let mut pat_idents: Vec<String> = Vec::new();
    while j < toks.len() {
        let t = toks[j];
        if t.is_ident("in") {
            break;
        }
        if t.is_punct('{') || t.is_punct(';') || j > kw + 16 {
            return None;
        }
        if t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
            pat_idents.push(t.text.clone());
        }
        j += 1;
    }
    if !toks.get(j).map(|u| u.is_ident("in")).unwrap_or(false) {
        return None;
    }
    // Expression runs to the `{` at the loop's depth.
    let expr = collect_until(toks, j + 1, &["{"]);
    // The iterated name: the last identifier of a trailing path, unless
    // the expression ends in a call (then the method walk already saw it).
    let last = expr.last()?;
    if last.kind != TokKind::Ident {
        return None;
    }
    let name = &last.text;
    match names.get(name) {
        Some(HashClass::Outermost) => {
            let line = toks[kw].line;
            match escape_for(model, QaRule::NondetIter.name(), line) {
                Escape::Justified => None,
                Escape::Bare => Some(bare_escape_finding(QaRule::NondetIter, model, line)),
                Escape::None => Some(Finding::new(
                    QaRule::NondetIter,
                    model.path.clone(),
                    line,
                    format!(
                        "`for … in {name}` iterates a HashMap/HashSet in randomized order — collect and sort first, or justify with `// lint:allow(nondet-iter) — reason`"
                    ),
                )),
            }
        }
        Some(HashClass::Contains) => {
            for p in pat_idents {
                names.mark(&p, HashClass::Contains);
            }
            None
        }
        None => None,
    }
}

fn push_iter_finding(
    model: &FileModel,
    findings: &mut Vec<Finding>,
    line: usize,
    recv: &str,
    method: &str,
) {
    match escape_for(model, QaRule::NondetIter.name(), line) {
        Escape::Justified => {}
        Escape::Bare => findings.push(bare_escape_finding(QaRule::NondetIter, model, line)),
        Escape::None => findings.push(Finding::new(
            QaRule::NondetIter,
            model.path.clone(),
            line,
            format!(
                "`{recv}.{method}()` observes HashMap/HashSet order, which is randomized per process — sort the result before it can influence scores or snapshots, or justify with `// lint:allow(nondet-iter) — reason`"
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_in(crate_name: &str, src: &str) -> FileModel {
        FileModel::new(
            format!("crates/{crate_name}/src/lib.rs"),
            crate_name.into(),
            src,
        )
    }

    fn nondet(src: &str) -> Vec<Finding> {
        let m = model_in("core", src);
        let (structs, _) = crate::digest::parse_items(&m);
        let fields: Vec<(String, String)> = structs
            .iter()
            .flat_map(|s| s.fields.iter().map(|f| (f.name.clone(), f.ty.clone())))
            .collect();
        scan_nondet_iter(&m, &fields)
    }

    #[test]
    fn local_hashmap_iteration_is_flagged() {
        let f = nondet("fn f() {\n    let mut map: HashMap<u32, f64> = HashMap::new();\n    for (k, v) in map.iter() { use_it(k, v); }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("map.iter()"));
    }

    #[test]
    fn constructor_inference_without_annotation() {
        let f = nondet("fn f() {\n    let seen = HashSet::new();\n    let total: f64 = seen.values().sum();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let f = nondet("fn f(map: u8) {\n    let m: HashMap<u32, u32> = make();\n    for kv in &m { go(kv); }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("for … in m"));
    }

    #[test]
    fn field_access_through_self_is_flagged() {
        let f = nondet("struct D { err: HashMap<u32, f64> }\nimpl D {\n    fn mean(&self) -> f64 { self.err.values().sum::<f64>() }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("err.values()"));
    }

    #[test]
    fn lock_guard_over_sharded_maps_is_flagged() {
        let f = nondet(
            "struct C { shards: Vec<Mutex<HashMap<u64, u64>>> }\nimpl C {\n    fn all(&self) {\n        for shard in &self.shards {\n            let shard = shard.lock().expect(\"poisoned\");\n            for kv in shard.iter() { go(kv); }\n        }\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("shard.iter()"));
    }

    #[test]
    fn vec_of_maps_iteration_itself_is_fine() {
        let f = nondet("struct C { shards: Vec<Mutex<HashMap<u64, u64>>> }\nimpl C {\n    fn n(&self) -> usize { self.shards.iter().map(|s| 1).sum() }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn membership_and_insertion_are_fine() {
        let f = nondet("fn f() {\n    let mut seen: HashSet<u64> = HashSet::new();\n    seen.insert(3);\n    if seen.contains(&3) { hit(); }\n    let m: HashMap<u8, u8> = make();\n    let v = m.get(&1);\n    let n = m.len();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let f = nondet("fn f() {\n    let m: BTreeMap<u32, u32> = make();\n    for kv in &m { go(kv); }\n    let s: Vec<u32> = m.keys().copied().collect();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn justified_escape_suppresses_bare_escape_fails() {
        let ok = nondet("fn f() {\n    let m: HashMap<u32, u32> = make();\n    // lint:allow(nondet-iter) — sorted immediately below\n    let mut v: Vec<_> = m.iter().collect();\n}\n");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = nondet("fn f() {\n    let m: HashMap<u32, u32> = make();\n    let mut v: Vec<_> = m.iter().collect(); // lint:allow(nondet-iter)\n}\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("no justification"));
    }

    #[test]
    fn non_search_path_crates_are_skipped() {
        let m = model_in(
            "bench",
            "fn f() {\n    let m: HashMap<u32, u32> = make();\n    for kv in &m { go(kv); }\n}\n",
        );
        assert!(scan_nondet_iter(&m, &[]).is_empty());
    }

    #[test]
    fn patterns_flag_and_escape() {
        let m = model_in("core", "fn f() {\n    let t = Instant::now();\n}\n");
        let f = scan_patterns(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, QaRule::Wallclock);

        let m = model_in(
            "core",
            "fn f() {\n    // lint:allow(wallclock) — coarse telemetry only, never a score input\n    let t = Instant::now();\n}\n",
        );
        assert!(scan_patterns(&m).is_empty());
    }

    #[test]
    fn patterns_ignore_comments_strings_and_tests() {
        let m = model_in(
            "sim",
            "/* Instant::now() in a block comment\n   spanning lines with panic!(\"x\") */\nfn f() { let s = \"thread_rng\"; }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(scan_patterns(&m).is_empty(), "{:?}", scan_patterns(&m));
    }

    /// Like [`model_in`] but with an explicit in-crate file path, for
    /// rules whose behavior depends on the file (sanctioned modules).
    fn model_at(crate_name: &str, file: &str, src: &str) -> FileModel {
        FileModel::new(
            format!("crates/{crate_name}/src/{file}"),
            crate_name.into(),
            src,
        )
    }

    #[test]
    fn sanctioned_module_honors_justified_spawn_escape() {
        let m = model_at(
            "sim",
            "pool.rs",
            "fn grow() {\n    // lint:allow(spawn) — sanctioned pool worker\n    std::thread::spawn(work);\n}\n",
        );
        assert!(scan_patterns(&m).is_empty(), "{:?}", scan_patterns(&m));
    }

    #[test]
    fn sanctioned_module_still_rejects_bare_escape() {
        let m = model_at(
            "sim",
            "pool.rs",
            "fn grow() {\n    std::thread::spawn(work); // lint:allow(spawn)\n}\n",
        );
        let f = scan_patterns(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no justification"), "{f:?}");
    }

    #[test]
    fn justified_spawn_outside_sanctioned_module_is_flagged() {
        let m = model_at(
            "sim",
            "batch.rs",
            "fn fan_out() {\n    // lint:allow(spawn) — justified text, wrong file\n    std::thread::spawn(work);\n}\n",
        );
        let f = scan_patterns(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, QaRule::Spawn);
        assert!(
            f[0].message.contains("sanctioned only in sim/src/pool.rs"),
            "{f:?}"
        );
    }

    #[test]
    fn no_panic_only_in_no_panic_crates() {
        let m = model_in("core", "fn f() { x.unwrap(); }\n");
        assert!(scan_patterns(&m).is_empty());
        let m = model_in("sim", "fn f() { x.unwrap(); }\n");
        assert_eq!(scan_patterns(&m).len(), 1);
    }

    #[test]
    fn telemetry_file_is_wallclock_exempt() {
        let m = FileModel::new(
            "crates/runtime/src/telemetry.rs".into(),
            "runtime".into(),
            "fn f() { let t = Instant::now(); }\n",
        );
        assert!(scan_patterns(&m).is_empty());
    }

    #[test]
    fn classify_type_peels_wrappers() {
        let c = |s: &str| classify_type(&tokenize_type(s));
        assert_eq!(c("HashMap<u32,f64>"), Some(HashClass::Outermost));
        assert_eq!(c("&mut HashSet<u64>"), Some(HashClass::Outermost));
        assert_eq!(
            c("std::collections::HashMap<K,V>"),
            Some(HashClass::Outermost)
        );
        assert_eq!(c("Mutex<HashMap<K,V>>"), Some(HashClass::Outermost));
        assert_eq!(c("MutexGuard<'_,HashMap<K,V>>"), Some(HashClass::Outermost));
        assert_eq!(c("Vec<Mutex<HashMap<K,V>>>"), Some(HashClass::Contains));
        assert_eq!(c("Vec<(usize,usize)>"), None);
        assert_eq!(c("BTreeMap<K,V>"), None);
    }
}
