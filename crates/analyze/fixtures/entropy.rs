// Seeded violations for the `entropy` rule (never compiled).

fn draw() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

fn seed_from_os() -> StdRng {
    StdRng::from_entropy()
}

fn os_rng() {
    let _ = OsRng;
}
