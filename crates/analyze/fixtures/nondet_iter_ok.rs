// QA005 negatives (never compiled): hash-collection uses that are
// order-safe, ordered containers, and a justified escape. Expected
// findings: ZERO.

use std::collections::{BTreeMap, HashMap, HashSet};

fn membership_only() -> bool {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(7);
    seen.contains(&7)
}

fn point_lookups(m: &HashMap<u32, f64>) -> Option<f64> {
    let n = m.len();
    let _ = n;
    m.get(&3).copied()
}

fn ordered_containers() -> Vec<u32> {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let mut out: Vec<u32> = m.keys().copied().collect();
    for (k, _) in &m {
        out.push(*k);
    }
    out
}

fn justified() -> Vec<(u32, f64)> {
    let m: HashMap<u32, f64> = make();
    // lint:allow(nondet-iter) — collected then sorted by key before use
    let mut out: Vec<(u32, f64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

fn vec_of_maps(shards: &[Mutex<HashMap<u64, u64>>]) -> usize {
    // Iterating the Vec itself is deterministic; only guard contents are
    // hash-ordered.
    shards.len()
}
