// Seeded violations for the `wallclock` rule (never compiled).

fn elapsed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

fn epoch() -> u64 {
    let t = std::time::SystemTime::UNIX_EPOCH;
    let _ = t;
    0
}
