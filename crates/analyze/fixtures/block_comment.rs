// The old per-line scanner had no block-comment state: every line of a
// multi-line `/* … */` was treated as code, so the body below would
// false-positive three times. The lexer must report exactly ONE finding
// in this file — the live Instant::now after the comment closes.

/*
   Commented-out prototype, kept for reference:
   let start = std::time::Instant::now();
   let mut rng = rand::thread_rng();
   panic!("dead code");
*/

/* nested /* block */ comments stay comments: Instant::now() */

fn live() -> std::time::Instant {
    std::time::Instant::now()
}
