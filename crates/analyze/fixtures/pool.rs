// The sanctioned spawn module: scanned as crates/sim/src/pool.rs, where a
// justified spawn escape IS honored (and a bare one still is not).

fn grow_pool() {
    // lint:allow(spawn) — sanctioned persistent pool worker, spawned once
    std::thread::spawn(|| {});
}
