// A justified spawn escape OUTSIDE the sanctioned pool module: the
// justification text is fine, but the site is not sim/src/pool.rs, so
// QA003 must still flag it.

fn rogue_helper() {
    std::thread::spawn(|| {}); // lint:allow(spawn) — looks justified, wrong module
}
