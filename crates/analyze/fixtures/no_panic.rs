// Seeded violations for the `no-panic` rule (never compiled).

fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn boom() {
    panic!("library code must not panic");
}
