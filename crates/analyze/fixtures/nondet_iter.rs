// Seeded QA005 violations (never compiled): order-observing iteration
// over hash collections. Expected findings: exactly FOUR —
//   1. map.iter() on an annotated local
//   2. for … in set (constructor-inferred local)
//   3. self.err.values() through a struct field
//   4. shard.iter() through a Vec<Mutex<HashMap>> lock guard
// The bare (unjustified) escape at the bottom is the FIFTH finding.

use std::collections::{HashMap, HashSet};

fn annotated() -> f64 {
    let map: HashMap<u32, f64> = make();
    map.iter().map(|(_, v)| v).sum()
}

fn inferred() {
    let mut set = HashSet::new();
    set.insert(1u64);
    for x in set {
        consume(x);
    }
}

struct Device {
    err: HashMap<(usize, usize), f64>,
}

impl Device {
    fn mean(&self) -> f64 {
        let sum: f64 = self.err.values().sum();
        sum / self.err.len() as f64
    }
}

struct Sharded {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
}

impl Sharded {
    fn all(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("poisoned");
            out.extend(shard.iter().map(|(k, v)| (*k, *v)));
        }
        out
    }
}

fn bare_escape() {
    let m: HashMap<u8, u8> = make();
    let _ = m.keys().count(); // lint:allow(nondet-iter)
}
