// The old scanner stopped at the FIRST `#[cfg(test)]` and ignored the
// rest of the file, so the live violation at the bottom was invisible.
// The lexer scopes the gate to the test module: exactly ONE wallclock
// finding (the last line), nothing from inside the tests.

fn live_before() {}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
        let _ = rand::thread_rng();
        x.unwrap();
    }
}

fn live_after() -> std::time::Instant {
    std::time::Instant::now()
}
