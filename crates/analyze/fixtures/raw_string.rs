// Raw strings defeat per-line escape tracking: the old scanner treated
// the `\"` in `r"c:\dir\"` as an escaped quote, swallowed the rest of the
// line as string content, and MISSED the real `.unwrap()` after it.
// The lexer must report exactly ONE finding here (that unwrap), and none
// for the patterns inside raw-string bodies.

fn windows_path(x: Option<u32>) -> u32 {
    let _p = r"c:\dir\"; x.unwrap()
}

fn multiline() -> &'static str {
    r#"
    thread_rng and Instant::now and panic!("inside a raw string")
    "#
}
