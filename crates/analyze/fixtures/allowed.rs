// Escapes and non-code contexts that must NOT fire any rule.

// A mention of Instant::now or thread_rng in a comment is fine.
/// Doc comments quoting `x.unwrap()` or `panic!` are fine too.
fn documented() {}

fn justified_timer() {
    // lint:allow(wallclock) — sanctioned coarse timing for a local demo
    let _ = std::time::Instant::now();
    let _ = std::time::SystemTime::UNIX_EPOCH; // lint:allow(wallclock) — same demo
}

fn justified_entropy() {
    // lint:allow(entropy) — demo only, never feeds cache keys
    let _ = rand::thread_rng();
    let _ = StdRng::from_entropy(); // lint:allow(entropy) — demo only
    // lint:allow(entropy) — demo only
    let _ = OsRng;
}

// NOTE: no spawn escape here — `thread::spawn` is sanctioned only inside
// `sim/src/pool.rs`; see the pool.rs / spawn_justified.rs fixtures.

fn justified_panics(x: Option<u32>) -> u32 {
    let s = "panic! and .unwrap() in a string are fine";
    let _ = s;
    // lint:allow(no-panic) — documented API-misuse panic
    let v = x.unwrap();
    if v > 10 {
        panic!("impossible by construction"); // lint:allow(no-panic) — invariant
    }
    v
}
