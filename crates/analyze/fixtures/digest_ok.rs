// QA006 negative (never compiled): every field is either encoded —
// directly, via helper calls, or by destructuring — or carries a
// justified exemption. Expected findings: ZERO.

pub struct CleanSnapshot {
    pub step: u64,
    pub params: Vec<f64>,
    pub rng_state: [u64; 2],
    // digest:exempt(scratch: rebuilt empty on decode, never observable)
    pub scratch: Vec<f64>,
}

impl Checkpointable for CleanSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.step);
        w.put_usize(self.params.len());
        for &p in &self.params {
            w.put_f64(p);
        }
        let [a, b] = self.rng_state;
        w.put_u64(a);
        w.put_u64(b);
    }
}
