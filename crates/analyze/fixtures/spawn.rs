// Seeded violation for the `spawn` rule (never compiled).

fn fire_and_forget() {
    std::thread::spawn(|| {});
}
