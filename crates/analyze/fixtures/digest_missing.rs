// Seeded QA006 violations (never compiled): a checkpointed struct with a
// deliberately unhashed field, plus an exemption without a reason.
// Expected findings: exactly TWO (`forgotten`, and the bare exempt on
// `bare`). The `covered` and `derived` fields are fine.

pub struct DriftingSnapshot {
    pub covered: u64,
    /// This field silently changes resumed-search trajectories: nothing
    /// writes it into the checkpoint bytes.
    pub forgotten: f64,
    // digest:exempt(derived: recomputed from `covered` during decode)
    pub derived: f64,
    // digest:exempt(bare:)
    pub bare: u32,
}

impl DriftingSnapshot {
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.covered);
    }
}
