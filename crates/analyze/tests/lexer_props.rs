//! Property tests for the lexer: totality on arbitrary byte soup, and
//! preservation of non-literal tokens under comment/string stripping.

use proptest::prelude::*;
use qns_analyze::lexer::{lex, FileModel, TokKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: any byte sequence lexes without panicking and
    /// every token's line number is within the input.
    #[test]
    fn lexer_never_panics_on_byte_soup(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lines = src.lines().count().max(1);
        for tok in lex(&src) {
            prop_assert!(tok.line >= 1 && tok.line <= lines + 1);
        }
    }

    /// Structured soup biased toward lexer edge cases: quotes, hashes,
    /// comment markers, and braces in random interleavings.
    #[test]
    fn lexer_never_panics_on_delimiter_soup(parts in prop::collection::vec(0usize..12, 0..64)) {
        let atoms = [
            "\"", "'", "r#\"", "#", "/*", "*/", "//", "\n", "{", "}", "\\", "ident ",
        ];
        let src: String = parts.iter().map(|&i| atoms[i]).collect();
        let _ = lex(&src);
    }

    /// Comment/string stripping preserves every identifier and number
    /// written outside comments and literals: lexing a program assembled
    /// from known code words plus arbitrary comments and string literals
    /// yields exactly the code words back.
    #[test]
    fn stripping_preserves_non_literal_tokens(
        words in prop::collection::vec(0usize..8, 1..24),
        noise in prop::collection::vec(0usize..4, 1..24),
    ) {
        let vocab = ["alpha", "beta2", "gamma", "delta", "eps", "zeta", "eta7", "theta"];
        let comments = [
            "/* block alpha */",
            "// line beta2\n",
            "/* multi\nline\ngamma */",
            "\"string delta\"",
        ];
        let mut src = String::new();
        let mut expected = Vec::new();
        for (i, &w) in words.iter().enumerate() {
            src.push_str(vocab[w]);
            expected.push(vocab[w]);
            src.push(' ');
            src.push(';');
            let n = noise[i % noise.len()];
            src.push_str(comments[n]);
            src.push(' ');
        }
        let toks = lex(&src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, expected);
        // And none of the comment/string payload leaks into the code view.
        let model = FileModel::new("f.rs".into(), "core".into(), &src);
        let code = model.code_lines.join("\n");
        prop_assert!(!code.contains("delta\""));
        prop_assert!(!code.contains("block"));
    }
}
