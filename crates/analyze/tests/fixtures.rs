//! Per-rule fixture self-tests: every QA rule has at least one positive
//! fixture (seeded violations with exact expected counts) and one
//! negative (escapes and safe patterns that must stay silent), including
//! the inputs the old per-line scanner demonstrably got wrong.

use qns_analyze::digest::{check_digest_coverage, parse_items};
use qns_analyze::lexer::FileModel;
use qns_analyze::rules::{scan_nondet_iter, scan_patterns};
use qns_analyze::{Finding, QaRule};
use std::path::Path;

fn fixture(name: &str, crate_name: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    FileModel::new(
        format!("crates/{crate_name}/src/{name}"),
        crate_name.into(),
        &src,
    )
}

fn count(findings: &[Finding], rule: QaRule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

fn nondet(model: &FileModel) -> Vec<Finding> {
    let (structs, _) = parse_items(model);
    let fields: Vec<(String, String)> = structs
        .iter()
        .flat_map(|s| s.fields.iter().map(|f| (f.name.clone(), f.ty.clone())))
        .collect();
    scan_nondet_iter(model, &fields)
}

#[test]
fn wallclock_fixture_flags_both_reads() {
    let f = scan_patterns(&fixture("wallclock.rs", "core"));
    assert_eq!(count(&f, QaRule::Wallclock), 2, "{f:?}");
}

#[test]
fn entropy_fixture_flags_all_three_sources() {
    let f = scan_patterns(&fixture("entropy.rs", "core"));
    assert_eq!(count(&f, QaRule::Entropy), 3, "{f:?}");
}

#[test]
fn spawn_fixture_flags_the_spawn() {
    let f = scan_patterns(&fixture("spawn.rs", "core"));
    assert_eq!(count(&f, QaRule::Spawn), 1, "{f:?}");
}

#[test]
fn spawn_in_sanctioned_pool_module_is_accepted_when_justified() {
    // fixture() maps this to crates/sim/src/pool.rs — the one sanctioned
    // spawn site. The justified escape there must be honored.
    let f = scan_patterns(&fixture("pool.rs", "sim"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn justified_spawn_outside_sanctioned_module_is_still_flagged() {
    let f = scan_patterns(&fixture("spawn_justified.rs", "core"));
    assert_eq!(count(&f, QaRule::Spawn), 1, "{f:?}");
    assert!(
        f[0].message.contains("sanctioned only in sim/src/pool.rs"),
        "{f:?}"
    );
}

#[test]
fn no_panic_fixture_flags_unwrap_and_panic() {
    let f = scan_patterns(&fixture("no_panic.rs", "sim"));
    assert_eq!(count(&f, QaRule::NoPanic), 2, "{f:?}");
}

#[test]
fn allowed_fixture_is_fully_escaped() {
    // Justified escapes for every rule, in both same-line and
    // line-above placements, plus patterns inside comments and strings.
    let model = fixture("allowed.rs", "sim");
    let f = scan_patterns(&model);
    assert!(f.is_empty(), "{f:?}");
    assert!(nondet(&model).is_empty());
}

#[test]
fn block_comment_fixture_old_scanner_false_positives_are_gone() {
    // Old scanner: 4 findings (3 inside the block comment + the live one).
    // Lexer: exactly the live one.
    let f = scan_patterns(&fixture("block_comment.rs", "core"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, QaRule::Wallclock);
    assert!(f[0].line >= 16, "must flag the live call, got {f:?}");
}

#[test]
fn raw_string_fixture_old_scanner_false_negative_is_caught() {
    // Old scanner: the `\"` inside the raw string swallowed the rest of
    // the line, hiding the real unwrap. Lexer: exactly that unwrap, and
    // nothing from the raw-string bodies.
    let f = scan_patterns(&fixture("raw_string.rs", "sim"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, QaRule::NoPanic);
    assert_eq!(count(&f, QaRule::Entropy), 0);
    assert_eq!(count(&f, QaRule::Wallclock), 0);
}

#[test]
fn cfg_scoped_fixture_scans_past_the_test_module() {
    // Old scanner stopped at the first #[cfg(test)]; the live violation
    // after the module was invisible.
    let f = scan_patterns(&fixture("cfg_scoped.rs", "core"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, QaRule::Wallclock);
    assert!(f[0].line >= 19, "must flag live_after, got {f:?}");
}

#[test]
fn nondet_iter_fixture_flags_all_seeded_sites() {
    let f = nondet(&fixture("nondet_iter.rs", "core"));
    assert_eq!(count(&f, QaRule::NondetIter), 5, "{f:?}");
    assert!(
        f.iter().any(|x| x.message.contains("no justification")),
        "the bare escape must be rejected: {f:?}"
    );
    for needle in ["map.iter()", "for … in set", "err.values()", "shard.iter()"] {
        assert!(
            f.iter().any(|x| x.message.contains(needle)),
            "missing finding for {needle}: {f:?}"
        );
    }
}

#[test]
fn nondet_iter_ok_fixture_is_silent() {
    let f = nondet(&fixture("nondet_iter_ok.rs", "core"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn digest_missing_fixture_catches_unhashed_field_and_bare_exempt() {
    let model = fixture("digest_missing.rs", "core");
    let (structs, encodes) = parse_items(&model);
    let f = check_digest_coverage(&structs, &encodes);
    assert_eq!(count(&f, QaRule::DigestCoverage), 2, "{f:?}");
    assert!(f
        .iter()
        .any(|x| x.message.contains("DriftingSnapshot.forgotten")));
    assert!(f.iter().any(|x| x.message.contains("no reason")));
}

#[test]
fn digest_ok_fixture_is_silent() {
    let model = fixture("digest_ok.rs", "core");
    let (structs, encodes) = parse_items(&model);
    assert_eq!(structs.len(), 1);
    assert_eq!(encodes.len(), 1);
    let f = check_digest_coverage(&structs, &encodes);
    assert!(f.is_empty(), "{f:?}");
}
