//! The workspace gate: the analyzer must run clean on this tree, and the
//! committed schema lock must match the current wire shapes. This is the
//! same check CI runs via `cargo xtask analyze`.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_clean() {
    let findings = qns_analyze::analyze(&workspace_root()).expect("analysis runs");
    assert!(
        findings.is_empty(),
        "the workspace must pass its own analyzer; findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn schema_lock_is_committed_and_fresh() {
    let root = workspace_root();
    let lock_path = root.join(qns_analyze::schema::LOCK_PATH);
    let text = std::fs::read_to_string(&lock_path).expect(
        "analyze/schema.lock must be committed — run `cargo xtask analyze --update-schema`",
    );
    let lock = qns_analyze::schema::parse_lock(&text).expect("lock parses");
    // The wire structs this tree is known to checkpoint; growing this set
    // intentionally requires regenerating the lock, which updates here.
    for name in [
        "SearchCheckpoint",
        "TrainCheckpoint",
        "PruneCheckpoint",
        "PrescreenerState",
        "FusionModel",
    ] {
        assert!(
            lock.structs.contains_key(name),
            "expected `{name}` in the schema lock; got {:?}",
            lock.structs.keys().collect::<Vec<_>>()
        );
    }
}
