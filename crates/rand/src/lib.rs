//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. This shim implements the same surface
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`, `seq::SliceRandom::{shuffle, choose}`) on top of a
//! xoshiro256++ generator seeded through SplitMix64. Streams differ from
//! upstream `rand`, but every consumer in this repository only relies on
//! *deterministic, seeded* randomness — never on upstream's exact values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors upstream
/// `rand`'s `SampleUniform`: a single blanket `SampleRange` impl over this
/// trait keeps unsuffixed literals (`0..10`, `-1.0..1.0`) inferable.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_uniform_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f64, f32);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream but is stable across
    /// runs and platforms).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state — the generator's exact stream
        /// position, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured with
        /// [`StdRng::state`]; the restored generator produces the same
        /// sequence the original would have from that point.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.gen_range(-5i32..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: Vec<usize> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
