//! QML classification: QuantumNAS against the paper's baselines.
//!
//! Compares, on one task and device, the measured accuracy of
//! (1) a human-designed circuit, (2) the best of three random circuits,
//! (3) a human design with noise-adaptive mapping, and (4) the QuantumNAS
//! co-searched circuit + mapping — the paper's Figure 13 setup in
//! miniature.
//!
//! ```text
//! cargo run --release --example qml_classification
//! ```

use qns_noise::{Device, TrajectoryConfig};
use qns_transpile::Layout;
use quantumnas::{
    evolutionary_search, human_design, random_design, train_supercircuit, train_task, DesignSpace,
    Estimator, EstimatorKind, EvoConfig, SpaceKind, SuperCircuit, SuperTrainConfig, Task,
    TrainConfig,
};

fn main() {
    let device = Device::yorktown();
    let task = Task::qml_fashion(&[3, 6], 120, 4, 11);
    let space = DesignSpace::new(SpaceKind::U3Cu3);
    let sc = SuperCircuit::new(space, 4, 3);
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!("QML task"),
    };
    let train_cfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        ..Default::default()
    };
    let measure = TrajectoryConfig {
        trajectories: 12,
        seed: 3,
        readout: true,
    };
    let estimator = Estimator::new(device.clone(), EstimatorKind::SuccessRate, 2);
    let n_test = 60;

    println!(
        "task {} | device {} | space {}",
        task.name(),
        device.name(),
        sc.space().kind()
    );

    // QuantumNAS: SuperCircuit → evolutionary co-search → train.
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 120,
            batch_size: 12,
            warmup_steps: 12,
            ..Default::default()
        },
    );
    let search = evolutionary_search(&sc, &shared, &task, &estimator, &EvoConfig::fast(5));
    let nas_circuit = sc.build(&search.best.config, Some(&encoder));
    let (nas_params, _) = train_task(&nas_circuit, &task, &train_cfg, None);
    let n_params = nas_circuit.referenced_train_indices().len();
    let nas_layout = search.best.layout();

    // Baselines at the same parameter budget.
    let human_cfg = human_design(&sc, n_params);
    let human_circuit = sc.build(&human_cfg, Some(&encoder));
    let (human_params, _) = train_task(&human_circuit, &task, &train_cfg, None);

    let mut best_random_acc = 0.0_f64;
    for seed in 0..3 {
        let cfg = random_design(&sc, n_params, seed);
        let circuit = sc.build(&cfg, Some(&encoder));
        let (params, _) = train_task(&circuit, &task, &train_cfg, None);
        let acc = estimator.test_accuracy(
            &circuit,
            &params,
            &task,
            &Layout::trivial(4),
            n_test,
            measure,
        );
        best_random_acc = best_random_acc.max(acc);
    }

    let trivial = Layout::trivial(4);
    let noise_adaptive = Layout::noise_adaptive(4, &device);
    let rows = [
        (
            "human + trivial mapping",
            estimator.test_accuracy(
                &human_circuit,
                &human_params,
                &task,
                &trivial,
                n_test,
                measure,
            ),
        ),
        ("random (best of 3)", best_random_acc),
        (
            "human + noise-adaptive mapping",
            estimator.test_accuracy(
                &human_circuit,
                &human_params,
                &task,
                &noise_adaptive,
                n_test,
                measure,
            ),
        ),
        (
            "QuantumNAS (co-searched)",
            estimator.test_accuracy(
                &nas_circuit,
                &nas_params,
                &task,
                &nas_layout,
                n_test,
                measure,
            ),
        ),
    ];

    println!(
        "\n{:<34}  measured accuracy ({} params each)",
        "method", n_params
    );
    for (name, acc) in rows {
        println!("{:<34}  {:.3}", name, acc);
    }
}
