//! The paper's outlook, implemented: barren-plateau analysis and quantum
//! feature-map search.
//!
//! Outlook #1 asks how to deploy noise-adaptive search on the data
//! encoder; outlook #2 asks whether searched ansatzes alleviate the
//! barren plateau. This example runs both extensions.
//!
//! ```text
//! cargo run --release --example outlook_extensions
//! ```

use qns_noise::Device;
use quantumnas::{
    barren_plateau_scan, plateau_relief, search_feature_map, DesignSpace, Estimator, EstimatorKind,
    EvoConfig, SpaceKind, SubConfig, SuperCircuit, SuperTrainConfig, Task,
};

fn main() {
    // --- Outlook #2: the barren plateau, measured ---
    println!("barren plateau: Var[dE/dθ0] over random inits (RXYZ space, 3 blocks)");
    println!("{:>8} {:>14}", "qubits", "grad variance");
    for point in barren_plateau_scan(SpaceKind::Rxyz, &[2, 4, 6, 8], 3, 48, 7) {
        println!("{:>8} {:>14.6}", point.n_qubits, point.variance);
    }
    println!("(exponential decay in qubit count = the plateau)\n");

    // Does a shallow searched architecture relieve it?
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::Rxyz), 6, 6);
    let shallow = SubConfig {
        n_blocks: 2,
        ..sc.max_config()
    };
    let (searched_var, full_var) = plateau_relief(&sc, &shallow, 48, 11);
    println!(
        "plateau relief at 6 qubits: searched (2 blocks) variance {searched_var:.6} vs \
         full (6 blocks) {full_var:.6} — factor {:.1}x",
        searched_var / full_var
    );

    // --- Outlook #1: feature-map search ---
    println!("\nfeature-map search (MNIST-2 on the Yorktown model):");
    let task = Task::qml_digits(&[3, 6], 80, 4, 17);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let estimator =
        Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 2).with_valid_cap(12);
    let result = search_feature_map(
        &task,
        &sc,
        &estimator,
        &SuperTrainConfig {
            steps: 80,
            batch_size: 8,
            warmup_steps: 8,
            ..Default::default()
        },
        &EvoConfig::fast(3),
    );
    println!("{:>8} {:>14}", "encoder", "search score");
    for (name, score) in &result.all_scores {
        let marker = if *name == result.encoder_name {
            " <- winner"
        } else {
            ""
        };
        println!("{:>8} {:>14.4}{}", name, score, marker);
    }
    println!(
        "\nwinning feature map: {} (score {:.4}, {} blocks searched)",
        result.encoder_name, result.score, result.gene.config.n_blocks
    );
}
