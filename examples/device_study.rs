//! Device study: how topology and error rates shape the searched circuit.
//!
//! Searches the same task on several 5-qubit device models ('+', 'T', and
//! line topologies at different error rates) and shows that the searched
//! mapping tracks each device's best qubits — the paper's Figure 14/20
//! setup in miniature.
//!
//! ```text
//! cargo run --release --example device_study
//! ```

use qns_noise::{Device, TrajectoryConfig};
use quantumnas::{
    evolutionary_search, train_supercircuit, train_task, DesignSpace, Estimator, EstimatorKind,
    EvoConfig, SpaceKind, SuperCircuit, SuperTrainConfig, Task, TrainConfig,
};

fn main() {
    let task = Task::qml_digits(&[3, 6], 100, 4, 13);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!("QML task"),
    };

    // The SuperCircuit is trained ONCE and reused for every device — the
    // paper's Table I cost argument in action.
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 120,
            batch_size: 12,
            warmup_steps: 12,
            ..Default::default()
        },
    );

    let measure = TrajectoryConfig {
        trajectories: 10,
        seed: 1,
        readout: true,
    };
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>16}",
        "device", "topology", "mean e2q", "mapping", "measured acc"
    );
    for device in Device::all_5q() {
        let estimator = Estimator::new(device.clone(), EstimatorKind::SuccessRate, 2);
        let search = evolutionary_search(&sc, &shared, &task, &estimator, &EvoConfig::fast(4));
        let circuit = sc.build(&search.best.config, Some(&encoder));
        let (params, _) = train_task(
            &circuit,
            &task,
            &TrainConfig {
                epochs: 8,
                batch_size: 16,
                ..Default::default()
            },
            None,
        );
        let acc =
            estimator.test_accuracy(&circuit, &params, &task, &search.best.layout(), 50, measure);
        println!(
            "{:<10} {:>9} {:>10.4} {:>12} {:>16.3}",
            device.name(),
            format!("{:?}", device.topology()),
            device.mean_err_2q(),
            format!("{:?}", search.best.layout),
            acc
        );
    }
}
