//! On-device training: the paper's scalability path.
//!
//! For circuits too large to simulate classically, the paper proposes
//! running the whole QuantumNAS pipeline on quantum hardware, with
//! parameter-shift gradients estimated from measured expectations. This
//! example trains a small VQE ansatz and a small classifier *entirely
//! against the noisy device model* — no noise-free gradients anywhere —
//! and compares against classical (noise-free) training of the same
//! circuits.
//!
//! ```text
//! cargo run --release --example on_device_training
//! ```

use qns_chem::Molecule;
use qns_noise::{Device, TrajectoryConfig};
use qns_transpile::Layout;
use quantumnas::{
    eval_task, train_qml_on_device, train_task, train_vqe_on_device, DesignSpace, Estimator,
    EstimatorKind, OnDeviceTrainConfig, SpaceKind, Split, SuperCircuit, Task, TrainConfig,
};

fn main() {
    let device = Device::belem();
    println!("on-device training against the {} model\n", device.name());

    // --- VQE: H2 ansatz trained from measured energies only ---
    let mol = Molecule::h2();
    let task = Task::vqe(&mol);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
    let ansatz = sc.build(&sc.max_config(), None);
    let exact = mol.fci_energy();

    let (_, on_device_hist) = train_vqe_on_device(
        &ansatz,
        &task,
        &device,
        &Layout::trivial(2),
        &OnDeviceTrainConfig {
            steps: 40,
            lr: 0.1,
            trajectories: 16,
            batch: 1,
            seed: 1,
        },
    );
    let (classical_params, _) = train_task(
        &ansatz,
        &task,
        &TrainConfig {
            epochs: 200,
            lr: 0.05,
            ..Default::default()
        },
        None,
    );
    let est = Estimator::new(device.clone(), EstimatorKind::Noiseless, 2);
    let classical_measured = est.vqe_energy_measured(
        &ansatz,
        &classical_params,
        mol.hamiltonian(),
        &Layout::trivial(2),
        TrajectoryConfig {
            trajectories: 16,
            seed: 2,
            readout: true,
        },
    );
    println!("H2 VQE (exact ground energy {exact:.4}):");
    println!(
        "  on-device training:   measured energy {:.4} -> {:.4} over {} steps",
        on_device_hist[0],
        on_device_hist.last().expect("non-empty"),
        on_device_hist.len()
    );
    println!("  classical training:   measured energy {classical_measured:.4} (after deploy)\n");

    // --- QML: 2-class task trained from measured expectations only ---
    let task = Task::qml_digits(&[3, 6], 60, 4, 9);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 2);
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!("QML task"),
    };
    let circuit = sc.build(&sc.max_config(), Some(&encoder));
    let (params, history) = train_qml_on_device(
        &circuit,
        &task,
        &device,
        &Layout::trivial(4),
        &OnDeviceTrainConfig {
            steps: 50,
            lr: 0.05,
            trajectories: 8,
            batch: 3,
            seed: 4,
        },
    );
    let (_, ideal_acc) = eval_task(&circuit, &params, &task, Split::Test);
    println!("MNIST-2 on-device training:");
    println!(
        "  measured per-sample loss {:.3} -> {:.3} over {} steps",
        history[0],
        history.last().expect("non-empty"),
        history.len()
    );
    println!("  noise-free test accuracy of the hardware-trained parameters: {ideal_acc:.3}");
    println!("\n(each on-device step costs 2P+1 measured evaluations — the hardware price)");
}
