//! VQE on H₂: searched ansatz versus the UCCSD baseline under noise.
//!
//! Reproduces the core of the paper's Figure 16 on one design space:
//! the searched hardware-adapted ansatz reaches a lower *measured* energy
//! than the deep, noise-fragile UCCSD ansatz, even though both train to
//! near the exact ground energy noise-free.
//!
//! ```text
//! cargo run --release --example vqe_h2
//! ```

use qns_chem::{uccsd_ansatz, Molecule};
use qns_noise::{Device, TrajectoryConfig};
use qns_transpile::Layout;
use quantumnas::{
    evolutionary_search, train_supercircuit, train_task, DesignSpace, Estimator, EstimatorKind,
    EvoConfig, SpaceKind, SuperCircuit, SuperTrainConfig, Task, TrainConfig,
};

fn main() {
    let mol = Molecule::h2();
    let device = Device::yorktown();
    let task = Task::vqe(&mol);
    let exact = mol.fci_energy();
    println!(
        "H2 VQE on {} | exact ground energy: {:.4} (paper's theoretical optimal ~= -1.85)",
        device.name(),
        exact
    );

    let train_cfg = TrainConfig {
        epochs: 200,
        lr: 0.05,
        ..Default::default()
    };
    let measure = TrajectoryConfig {
        trajectories: 24,
        seed: 7,
        readout: true,
    };
    let estimator = Estimator::new(device.clone(), EstimatorKind::SuccessRate, 2);

    // UCCSD baseline: problem ansatz, hardware-unaware.
    let (uccsd, _) = uccsd_ansatz(2, 1);
    let (uccsd_params, _) = train_task(&uccsd, &task, &train_cfg, None);
    let uccsd_ideal =
        quantumnas::eval_task(&uccsd, &uccsd_params, &task, quantumnas::Split::Valid).0;
    let uccsd_measured = estimator.vqe_energy_measured(
        &uccsd,
        &uccsd_params,
        mol.hamiltonian(),
        &Layout::trivial(2),
        measure,
    );

    // QuantumNAS ansatz search.
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 3);
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 150,
            warmup_steps: 15,
            lr: 0.05,
            ..Default::default()
        },
    );
    let search = evolutionary_search(&sc, &shared, &task, &estimator, &EvoConfig::fast(2));
    let ansatz = sc.build(&search.best.config, None);
    let (params, _) = train_task(&ansatz, &task, &train_cfg, None);
    let nas_ideal = quantumnas::eval_task(&ansatz, &params, &task, quantumnas::Split::Valid).0;
    let nas_measured = estimator.vqe_energy_measured(
        &ansatz,
        &params,
        mol.hamiltonian(),
        &search.best.layout(),
        measure,
    );

    println!(
        "\n{:<22} {:>12} {:>12} {:>8}",
        "ansatz", "noise-free", "measured", "#CX"
    );
    println!(
        "{:<22} {:>12.4} {:>12.4} {:>8}",
        "UCCSD",
        uccsd_ideal,
        uccsd_measured,
        uccsd.count_kind(qns_circuit::GateKind::CX)
    );
    println!(
        "{:<22} {:>12.4} {:>12.4} {:>8}",
        "QuantumNAS (searched)",
        nas_ideal,
        nas_measured,
        ansatz.count_2q()
    );
    println!("\nexact ground energy: {exact:.4}");
}
