//! Quickstart: the full QuantumNAS pipeline on a 2-class image task.
//!
//! Runs all five stages — SuperCircuit training, noise-adaptive
//! evolutionary co-search, from-scratch training, iterative pruning, and
//! noisy "deployment" — on a synthetic Fashion-like 2-class task
//! targeting the IBMQ-Yorktown device model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qns_noise::Device;
use quantumnas::{QuantumNas, QuantumNasConfig, SpaceKind, Task};

fn main() {
    let device = Device::yorktown();
    let task = Task::qml_fashion(&[3, 6], 150, 4, 7);
    println!(
        "QuantumNAS quickstart: task {} on device {} ({} qubits, '{:?}' topology)",
        task.name(),
        device.name(),
        device.num_qubits(),
        device.topology(),
    );

    let mut config = QuantumNasConfig::fast();
    config.blocks = Some(3);
    config.train.epochs = 35;
    let nas = QuantumNas::new(SpaceKind::U3Cu3, device, task, config);
    let sc = nas.supercircuit();
    println!(
        "design space: {} | SuperCircuit: {} blocks, {} shared parameters, ~10^{:.1} SubCircuits",
        sc.space().kind(),
        sc.num_blocks(),
        sc.num_params(),
        sc.space().log10_size(sc.num_qubits(), sc.num_blocks()),
    );

    let report = nas.run(42);

    println!("\n=== searched architecture ===");
    println!(
        "blocks: {} | trainable params: {} | qubit mapping: {:?}",
        report.gene.config.n_blocks, report.n_params, report.gene.layout
    );
    println!(
        "search score (augmented validation loss): {:.4}",
        report.search_score
    );
    println!(
        "noise-free validation loss after training: {:.4}",
        report.trained_loss
    );
    println!("\n=== measured on the noisy device model ===");
    println!(
        "accuracy before pruning: {:.3}",
        report.accuracy_before_prune
    );
    println!(
        "accuracy after pruning {:.0}% of parameters: {:.3}",
        100.0 * report.pruned_ratio,
        report.final_accuracy
    );
}
