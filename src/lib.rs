//! Workspace umbrella crate for the QuantumNAS reproduction.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual library surface lives in
//! [`quantumnas`] and the substrate crates it builds on.

pub use quantumnas;
